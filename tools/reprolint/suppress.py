"""Per-rule suppression comments.

Two forms are recognised, both scanned with :mod:`tokenize` so that
string literals containing the magic words are never misread:

* line-level, trailing the offending statement's *reported* line::

      rng = random.Random()  # reprolint: disable=R001
      thing = run(a, b)      # reprolint: disable=R003,R005

* file-level, on a comment-only line anywhere in the file::

      # reprolint: disable-file=R002

``disable=all`` (or ``disable-file=all``) suppresses every rule.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

_PRAGMA = re.compile(
    r"#\s*reprolint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")

_ALL = "all"


@dataclass
class SuppressionIndex:
    """Which rules are muted on which physical lines of one file."""

    line_rules: Dict[int, Set[str]] = field(default_factory=dict)
    file_rules: Set[str] = field(default_factory=set)

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        index = cls()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                match = _PRAGMA.search(tok.string)
                if not match:
                    continue
                rules = {r.strip() for r in match.group("rules").split(",")}
                if match.group("scope") == "disable-file":
                    index.file_rules |= rules
                else:
                    index.line_rules.setdefault(
                        tok.start[0], set()).update(rules)
        except (tokenize.TokenError, IndentationError, SyntaxError):
            # Unparseable files are reported as R000 by the runner; no
            # suppressions can apply to them anyway.
            pass
        return index

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if _ALL in self.file_rules or rule_id in self.file_rules:
            return True
        on_line = self.line_rules.get(line)
        if not on_line:
            return False
        return _ALL in on_line or rule_id in on_line

    def all_rule_ids(self) -> FrozenSet[str]:
        """Every rule id mentioned by any pragma (for diagnostics)."""
        mentioned: Set[str] = set(self.file_rules)
        for rules in self.line_rules.values():
            mentioned |= rules
        return frozenset(mentioned)
