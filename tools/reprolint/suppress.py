"""Per-rule suppression comments.

Two forms are recognised, both scanned with :mod:`tokenize` so that
string literals containing the magic words are never misread:

* line-level, trailing the offending statement's *reported* line::

      rng = random.Random()  # reprolint: disable=R001
      thing = run(a, b)      # reprolint: disable=R003,R005

* file-level, on a comment-only line anywhere in the file::

      # reprolint: disable-file=R002

``disable=all`` (or ``disable-file=all``) suppresses every rule.

Multi-line statements are handled by *span anchoring*: once the
runner attaches statement spans (via :meth:`SuppressionIndex.
attach_statement_spans`), a pragma on any physical line of a
statement suppresses violations reported on any other line of the
same statement.  Without this, a call spanning three lines could only
be silenced by guessing which line the rule happens to report::

    result = run(   # reprolint: disable=R003
        repos,
        budget,
    )

Compound statements (``if``/``for``/``def``/...) anchor their
*header* only — a pragma on the ``def`` line does not mute the whole
body.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

_PRAGMA = re.compile(
    r"#\s*reprolint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")

_ALL = "all"


@dataclass
class SuppressionIndex:
    """Which rules are muted on which physical lines of one file."""

    line_rules: Dict[int, Set[str]] = field(default_factory=dict)
    file_rules: Set[str] = field(default_factory=set)
    #: (first_line, last_line) of every statement, header-only for
    #: compound statements; attached by the runner after parsing.
    statement_spans: List[Tuple[int, int]] = field(default_factory=list)

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        index = cls()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                match = _PRAGMA.search(tok.string)
                if not match:
                    continue
                rules = {r.strip() for r in match.group("rules").split(",")}
                if match.group("scope") == "disable-file":
                    index.file_rules |= rules
                else:
                    index.line_rules.setdefault(
                        tok.start[0], set()).update(rules)
        except (tokenize.TokenError, IndentationError, SyntaxError):
            # Unparseable files are reported as R000 by the runner; no
            # suppressions can apply to them anyway.
            pass
        return index

    def attach_statement_spans(self, tree: ast.Module) -> None:
        """Record the physical line span of every statement.

        Simple statements span first through last line (decorators
        included for def/class); compound statements span only their
        header — the lines before the first body statement — so that
        a trailing pragma on a multi-line ``if`` condition works
        without muting the entire suite.
        """
        spans: List[Tuple[int, int]] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.stmt):
                continue
            start = node.lineno
            decorators = getattr(node, "decorator_list", [])
            if decorators:
                start = min(start, decorators[0].lineno)
            body = getattr(node, "body", None)
            if isinstance(body, list) and body \
                    and isinstance(body[0], ast.stmt):
                end = max(start, body[0].lineno - 1)
            else:
                end = getattr(node, "end_lineno", None) or start
            if end > start:
                spans.append((start, end))
        self.statement_spans = sorted(set(spans))

    def _line_has(self, rule_id: str, line: int) -> bool:
        on_line = self.line_rules.get(line)
        if not on_line:
            return False
        return _ALL in on_line or rule_id in on_line

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if _ALL in self.file_rules or rule_id in self.file_rules:
            return True
        if self._line_has(rule_id, line):
            return True
        # multi-line statements: the innermost span containing the
        # reported line; a pragma anywhere inside it counts
        best: Tuple[int, int] = (0, 0)
        found = False
        for start, end in self.statement_spans:
            if start <= line <= end and (
                    not found or end - start < best[1] - best[0]):
                best = (start, end)
                found = True
        if not found:
            return False
        return any(self._line_has(rule_id, pragma_line)
                   for pragma_line in range(best[0], best[1] + 1))

    def all_rule_ids(self) -> FrozenSet[str]:
        """Every rule id mentioned by any pragma (for diagnostics)."""
        mentioned: Set[str] = set(self.file_rules)
        for rules in self.line_rules.values():
            mentioned |= rules
        return frozenset(mentioned)
