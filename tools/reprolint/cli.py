"""Command-line entry point: ``python -m reprolint [paths...]``.

Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

``--project`` enables whole-tree conveniences on top of the ordinary
run: the content-hash AST cache (warm runs skip re-parsing unchanged
files), the checked-in ``lint-baseline.json`` waiver file (probed
automatically, or named via ``--baseline``), and baseline
bookkeeping on stderr.  ``--stats`` prints per-pass and per-rule
wall-clock to stderr; timings never enter the report itself, so
JSON/SARIF output stays byte-identical run to run.
"""

from __future__ import annotations

import argparse
import datetime
import os
import sys
from typing import List, Optional

from reprolint.analysis.project import AstCache
from reprolint.baseline import Baseline, DEFAULT_BASELINE
from reprolint.config import LintConfig
from reprolint.registry import all_rules
from reprolint.reporters import REPORTERS
from reprolint.runner import LintResult, lint_paths

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_ERROR = 2


def _parse_rule_list(raw: Optional[str]) -> frozenset:
    if not raw:
        return frozenset()
    return frozenset(part.strip() for part in raw.split(",") if part.strip())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=("AST-based invariant checker for the repro library: "
                     "determinism, dependency hygiene, and "
                     "complexity-cap contracts."))
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=sorted(REPORTERS),
                        default="text", help="report format")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--disable", metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--config", metavar="FILE",
                        help="JSON file overriding the default contract "
                             "tables")
    parser.add_argument("--list-rules", action="store_true",
                        help="print registered rules and exit")
    parser.add_argument("--project", action="store_true",
                        help="whole-project mode: AST cache plus "
                             "automatic lint-baseline.json filtering")
    parser.add_argument("--baseline", metavar="FILE",
                        help="violation waiver file (implies baseline "
                             "filtering even without --project)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="AST cache directory for --project "
                             "(default: .reprolint-cache, or "
                             "$REPROLINT_CACHE_DIR)")
    parser.add_argument("--stats", action="store_true",
                        help="print per-pass/per-rule timings to "
                             "stderr (never part of the report)")
    return parser


def _list_rules() -> str:
    lines = []
    for cls in all_rules():
        lines.append(f"{cls.id}  {cls.name}")
        lines.append(f"      {cls.description}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return EXIT_CLEAN

    try:
        config = (LintConfig.from_file(args.config) if args.config
                  else LintConfig())
    except (OSError, ValueError) as exc:
        print(f"reprolint: bad config: {exc}", file=sys.stderr)
        return EXIT_ERROR

    select = _parse_rule_list(args.select) or config.select
    disable = _parse_rule_list(args.disable) | config.disable
    known = {cls.id for cls in all_rules()}
    unknown = (select | disable) - known
    if unknown:
        print(f"reprolint: unknown rule id(s): "
              f"{', '.join(sorted(unknown))} "
              f"(known: {', '.join(sorted(known))})", file=sys.stderr)
        return EXIT_ERROR
    config = config.with_rule_filter(select, disable)

    missing = [path for path in args.paths if not os.path.exists(path)]
    if missing:
        for path in missing:
            print(f"reprolint: no such path: {path}", file=sys.stderr)
        return EXIT_ERROR

    ast_cache = AstCache(args.cache_dir) if args.project else None

    baseline = None
    baseline_path = args.baseline
    if baseline_path is None and args.project \
            and os.path.isfile(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE
    if baseline_path is not None:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"reprolint: bad baseline: {exc}", file=sys.stderr)
            return EXIT_ERROR

    result = lint_paths(args.paths, config, ast_cache=ast_cache)

    if baseline is not None:
        today = datetime.date.today().isoformat()
        report = baseline.apply(result.violations, today)
        result = LintResult(violations=report.kept,
                            files_checked=result.files_checked,
                            rules_run=result.rules_run,
                            timings=result.timings)
        for entry in report.expired:
            print(f"reprolint: baseline entry expired: "
                  f"{entry.describe()}", file=sys.stderr)
        for entry in report.stale:
            print(f"reprolint: baseline entry matches nothing: "
                  f"{entry.describe()}", file=sys.stderr)
        if report.waived:
            print(f"reprolint: {len(report.waived)} violation(s) "
                  f"waived by {baseline_path}", file=sys.stderr)

    if args.stats:
        for key in sorted(result.timings):
            print(f"reprolint: stats {key}: "
                  f"{result.timings[key] * 1000:.1f}ms",
                  file=sys.stderr)
        if ast_cache is not None:
            print(f"reprolint: stats cache: {ast_cache.hits} hit(s), "
                  f"{ast_cache.misses} miss(es)", file=sys.stderr)

    sys.stdout.write(REPORTERS[args.format](result))
    if args.format == "text":
        sys.stdout.write("\n")
    return EXIT_CLEAN if result.ok else EXIT_VIOLATIONS


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
