"""Command-line entry point: ``python -m reprolint [paths...]``.

Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from reprolint.config import LintConfig
from reprolint.registry import all_rules
from reprolint.reporters import REPORTERS
from reprolint.runner import lint_paths

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_ERROR = 2


def _parse_rule_list(raw: Optional[str]) -> frozenset:
    if not raw:
        return frozenset()
    return frozenset(part.strip() for part in raw.split(",") if part.strip())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=("AST-based invariant checker for the repro library: "
                     "determinism, dependency hygiene, and "
                     "complexity-cap contracts."))
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=sorted(REPORTERS),
                        default="text", help="report format")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--disable", metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--config", metavar="FILE",
                        help="JSON file overriding the default contract "
                             "tables")
    parser.add_argument("--list-rules", action="store_true",
                        help="print registered rules and exit")
    return parser


def _list_rules() -> str:
    lines = []
    for cls in all_rules():
        lines.append(f"{cls.id}  {cls.name}")
        lines.append(f"      {cls.description}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return EXIT_CLEAN

    try:
        config = (LintConfig.from_file(args.config) if args.config
                  else LintConfig())
    except (OSError, ValueError) as exc:
        print(f"reprolint: bad config: {exc}", file=sys.stderr)
        return EXIT_ERROR

    select = _parse_rule_list(args.select) or config.select
    disable = _parse_rule_list(args.disable) | config.disable
    known = {cls.id for cls in all_rules()}
    unknown = (select | disable) - known
    if unknown:
        print(f"reprolint: unknown rule id(s): "
              f"{', '.join(sorted(unknown))} "
              f"(known: {', '.join(sorted(known))})", file=sys.stderr)
        return EXIT_ERROR
    config = config.with_rule_filter(select, disable)

    missing = [path for path in args.paths if not os.path.exists(path)]
    if missing:
        for path in missing:
            print(f"reprolint: no such path: {path}", file=sys.stderr)
        return EXIT_ERROR

    result = lint_paths(args.paths, config)
    sys.stdout.write(REPORTERS[args.format](result))
    if args.format == "text":
        sys.stdout.write("\n")
    return EXIT_CLEAN if result.ok else EXIT_VIOLATIONS


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
