"""Lint configuration: the signature tables that ground each rule.

Everything here mirrors a concrete contract of this repository rather
than a generic style preference; the defaults are the contract, and a
JSON config file can widen or narrow them per invocation (e.g. when the
checker is pointed at ``benchmarks/`` instead of ``src/``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Mapping, Tuple


#: Methods of the ``random`` module that read or mutate the shared
#: process-global RNG.  Any call to these (directly or via
#: ``from random import choice``) breaks run-to-run determinism.
MODULE_RNG_FUNCTIONS: FrozenSet[str] = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "setstate", "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
})


@dataclass(frozen=True)
class EnumerationSignature:
    """How a capped-enumeration API accepts its cap.

    A call site satisfies the contract if it passes one of
    ``cap_keywords`` as a keyword argument, or supplies at least
    ``min_positional`` positional arguments (the cap position is then
    necessarily filled).  ``**kwargs`` forwarding is given the benefit
    of the doubt.
    """

    cap_keywords: Tuple[str, ...]
    min_positional: int


#: Enumeration entry points whose call sites must carry an explicit
#: cap.  Keyed by terminal callable name (``matcher.iter_embeddings``
#: and ``iter_embeddings`` both match ``iter_embeddings``).
DEFAULT_ENUMERATION_SIGNATURES: Dict[str, EnumerationSignature] = {
    # SubgraphMatcher.iter_embeddings(self, max_results=None)
    "iter_embeddings": EnumerationSignature(("max_results",), 1),
    # count_embeddings(pattern, target, induced=False, cap=None)
    "count_embeddings": EnumerationSignature(("cap",), 4),
    # covered_edges(pattern, target, max_embeddings=200)
    "covered_edges": EnumerationSignature(("max_embeddings",), 3),
    # set_covered_edges(patterns, graph, max_embeddings=200)
    "set_covered_edges": EnumerationSignature(("max_embeddings",), 3),
    # VisualQueryInterface.execute(self, max_embeddings=10)
    "execute": EnumerationSignature(("max_embeddings",), 1),
}


@dataclass(frozen=True)
class LintConfig:
    """Tunable knobs for a lint run.  Immutable; derive with `replace`."""

    #: Top-level third-party modules banned from the library proper.
    #: numpy is deliberately absent: it is the one permitted dependency.
    forbidden_imports: FrozenSet[str] = frozenset({"networkx", "scipy"})

    #: Parameter names that count as "this function exposes seeding".
    rng_param_names: Tuple[str, ...] = ("rng", "seed", "random_state")

    #: ``random`` module attributes that touch the global RNG (R001).
    module_rng_functions: FrozenSet[str] = MODULE_RNG_FUNCTIONS

    #: Capped-enumeration signature table (R003).
    enumeration_signatures: Mapping[str, EnumerationSignature] = field(
        default_factory=lambda: dict(DEFAULT_ENUMERATION_SIGNATURES))

    #: Exception names for which ``except X: pass`` is an accepted
    #: gating idiom (optional-dependency probing) rather than a bug.
    except_pass_allowlist: FrozenSet[str] = frozenset({
        "ImportError", "ModuleNotFoundError", "StopIteration",
    })

    # ------------------------------------------------------------------
    # whole-program rules (R011-R015)
    # ------------------------------------------------------------------

    #: The monotonic cache-invalidation counter (R011).  Any class
    #: that writes ``self.<version_attr>`` is treated as
    #: version-guarded.
    version_attr: str = "_version"

    #: Attributes whose mutation must be followed by a version bump on
    #: every non-raising path (R011).  ``_node_attrs`` is deliberately
    #: absent: node attributes take no part in matching, so the view
    #: caches need not be invalidated for them.
    version_guarded_attrs: FrozenSet[str] = frozenset({
        "_adj", "_node_labels", "_edge_labels", "_edge_attrs", "_views",
    })

    #: Zero-copy cached-view accessors whose returns are shared state;
    #: callers outside the defining module must not mutate them (R011).
    cached_view_methods: FrozenSet[str] = frozenset({
        "adjacency_sets", "label_index", "neighbor_label_counts",
    })

    #: Dotted origins of the parallel map (R012 payload checks).
    pmap_origins: FrozenSet[str] = frozenset({
        "repro.perf.pmap", "repro.perf.executor.pmap",
    })

    #: Constructors whose results must never ride into a pmap payload
    #: (unpicklable or process-local, R012).
    unpicklable_factories: FrozenSet[str] = frozenset({
        "threading.Lock", "threading.RLock", "threading.Condition",
        "threading.Semaphore", "threading.BoundedSemaphore",
        "threading.Event", "open", "io.open",
        "repro.obs.tracing.span", "repro.obs.span",
    })

    #: Deadline methods that count as a poll (R013).
    deadline_poll_methods: FrozenSet[str] = frozenset({
        "check", "require",
    })

    #: Work a loop may not run unbounded between polls (R013): exact
    #: dotted names, ``pkg.prefix.`` subtrees (trailing dot), and —
    #: matched by terminal callable name — the capped-enumeration and
    #: kernel entry points.
    deadline_expensive_calls: FrozenSet[str] = frozenset({
        "repro.matching.", "repro.truss.", "repro.clustering.",
        "repro.perf.executor.pmap",
    })
    deadline_expensive_names: FrozenSet[str] = frozenset({
        "iter_embeddings", "count_embeddings", "covered_edges",
        "set_covered_edges", "greedy_select", "k_truss",
        "build_summary", "pmap",
    })

    #: Wall-clock reads banned outside the allowed subtrees (R014).
    #: Monotonic duration timers (``perf_counter``/``monotonic``) are
    #: deliberately absent — measuring how long a stage took is fine
    #: anywhere; knowing *what time it is* is not.
    wallclock_functions: FrozenSet[str] = frozenset({
        "time.time", "time.time_ns", "time.ctime", "time.localtime",
        "time.gmtime", "time.strftime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.date.today",
    })

    #: Path components under which wall-clock reads are legitimate
    #: (tracing spans, deadline arithmetic, retry backoff).
    wallclock_allowed_dirs: FrozenSet[str] = frozenset({
        "obs", "resilience", "perf",
    })

    #: Functions producing pipeline results; set-iteration feeding
    #: their returned ordering is checked by R014.
    result_root_functions: FrozenSet[str] = frozenset({
        "run_catapult", "run_tattoo", "run_midas", "run_selection",
    })

    #: Names anchoring the shared pipeline-config contract (R015).
    shared_fields_constant: str = "SHARED_PIPELINE_FIELDS"
    pipeline_config_class: str = "PipelineConfig"

    #: Rule ids to run (empty = all registered rules).
    select: FrozenSet[str] = frozenset()

    #: Rule ids to skip.
    disable: FrozenSet[str] = frozenset()

    def with_rule_filter(self, select: FrozenSet[str],
                         disable: FrozenSet[str]) -> "LintConfig":
        return replace(self, select=select, disable=disable)

    def rule_enabled(self, rule_id: str) -> bool:
        if self.select and rule_id not in self.select:
            return False
        return rule_id not in self.disable

    @classmethod
    def from_file(cls, path: str) -> "LintConfig":
        """Load overrides from a JSON file.

        Recognised keys: ``forbidden_imports`` (list of module names),
        ``rng_param_names`` (list), ``except_pass_allowlist`` (list),
        ``select``/``disable`` (lists of rule ids), and
        ``enumeration_signatures`` — a mapping of callable name to
        ``{"cap_keywords": [...], "min_positional": int}``.
        """
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
        if not isinstance(raw, dict):
            raise ValueError(f"{path}: config root must be a JSON object")
        kwargs: Dict[str, object] = {}
        if "forbidden_imports" in raw:
            kwargs["forbidden_imports"] = frozenset(raw["forbidden_imports"])
        if "rng_param_names" in raw:
            kwargs["rng_param_names"] = tuple(raw["rng_param_names"])
        if "except_pass_allowlist" in raw:
            kwargs["except_pass_allowlist"] = frozenset(
                raw["except_pass_allowlist"])
        if "select" in raw:
            kwargs["select"] = frozenset(raw["select"])
        if "disable" in raw:
            kwargs["disable"] = frozenset(raw["disable"])
        if "enumeration_signatures" in raw:
            table: Dict[str, EnumerationSignature] = {}
            for name, spec in raw["enumeration_signatures"].items():
                table[name] = EnumerationSignature(
                    tuple(spec.get("cap_keywords", ())),
                    int(spec.get("min_positional", 0)))
            kwargs["enumeration_signatures"] = table
        for key in ("version_guarded_attrs", "cached_view_methods",
                    "pmap_origins", "unpicklable_factories",
                    "deadline_poll_methods", "deadline_expensive_calls",
                    "deadline_expensive_names", "wallclock_functions",
                    "wallclock_allowed_dirs", "result_root_functions"):
            if key in raw:
                kwargs[key] = frozenset(raw[key])
        for key in ("version_attr", "shared_fields_constant",
                    "pipeline_config_class"):
            if key in raw:
                kwargs[key] = str(raw[key])
        return cls(**kwargs)  # type: ignore[arg-type]
