"""Text, JSON, and SARIF reporters over a :class:`LintResult`.

All machine formats are *byte-deterministic*: no timestamps, no
timings, no absolute paths beyond what the caller passed in.  Two
runs over the same tree must produce identical bytes — the
determinism test diff-checks exactly that, and CI artifact caching
relies on it.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Dict

from reprolint.registry import all_rules
from reprolint.runner import LintResult


def text_report(result: LintResult) -> str:
    """Human-oriented report: one line per violation plus a summary."""
    lines = [violation.format() for violation in result.violations]
    if result.violations:
        per_rule = Counter(v.rule for v in result.violations)
        breakdown = ", ".join(f"{rule}: {count}"
                              for rule, count in sorted(per_rule.items()))
        lines.append("")
        lines.append(f"{len(result.violations)} violation(s) in "
                     f"{result.files_checked} file(s) ({breakdown})")
    else:
        lines.append(f"{result.files_checked} file(s) checked, "
                     "no violations")
    return "\n".join(lines)


def json_report(result: LintResult) -> str:
    """Machine-oriented report (stable key order, newline-terminated)."""
    per_rule: Dict[str, int] = dict(
        sorted(Counter(v.rule for v in result.violations).items()))
    payload = {
        "files_checked": result.files_checked,
        "rules_run": list(result.rules_run),
        "violation_count": len(result.violations),
        "violations_per_rule": per_rule,
        "violations": [v.to_dict() for v in result.violations],
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def sarif_report(result: LintResult) -> str:
    """SARIF 2.1.0 report (one run, one driver, stable ordering).

    Minimal but valid: editors and code-scanning UIs need
    ``tool.driver`` (with per-rule metadata for the rules that ran)
    and ``results`` carrying rule id, message, and a physical
    location.  Columns are converted to SARIF's 1-based convention.
    """
    by_id = {cls.id: cls for cls in all_rules()}
    rules = []
    for rule_id in result.rules_run:
        cls = by_id.get(rule_id)
        if cls is None:
            continue
        rules.append({
            "id": cls.id,
            "name": cls.name,
            "shortDescription": {"text": cls.description},
        })
    results = []
    for violation in result.violations:
        uri = os.path.normpath(violation.path).replace(os.sep, "/")
        results.append({
            "ruleId": violation.rule,
            "level": "warning",
            "message": {"text": violation.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": {
                        "startLine": violation.line,
                        "startColumn": violation.col + 1,
                    },
                },
            }],
        })
    payload = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "reprolint",
                    "rules": rules,
                },
            },
            "columnKind": "unicodeCodePoints",
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


REPORTERS = {
    "text": text_report,
    "json": json_report,
    "sarif": sarif_report,
}
