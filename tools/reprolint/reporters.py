"""Text and JSON reporters over a :class:`LintResult`."""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict

from reprolint.runner import LintResult


def text_report(result: LintResult) -> str:
    """Human-oriented report: one line per violation plus a summary."""
    lines = [violation.format() for violation in result.violations]
    if result.violations:
        per_rule = Counter(v.rule for v in result.violations)
        breakdown = ", ".join(f"{rule}: {count}"
                              for rule, count in sorted(per_rule.items()))
        lines.append("")
        lines.append(f"{len(result.violations)} violation(s) in "
                     f"{result.files_checked} file(s) ({breakdown})")
    else:
        lines.append(f"{result.files_checked} file(s) checked, "
                     "no violations")
    return "\n".join(lines)


def json_report(result: LintResult) -> str:
    """Machine-oriented report (stable key order, newline-terminated)."""
    per_rule: Dict[str, int] = dict(
        sorted(Counter(v.rule for v in result.violations).items()))
    payload = {
        "files_checked": result.files_checked,
        "rules_run": list(result.rules_run),
        "violation_count": len(result.violations),
        "violations_per_rule": per_rule,
        "violations": [v.to_dict() for v in result.violations],
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


REPORTERS = {
    "text": text_report,
    "json": json_report,
}
