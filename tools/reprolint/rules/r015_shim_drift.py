"""R015 deprecated-shim drift.

The unified pipeline API centralises its cross-pipeline knobs in
``PipelineConfig`` and the ``SHARED_PIPELINE_FIELDS`` tuple; each
pipeline keeps a per-stage config class whose ``from_pipeline``
constructor forwards every shared field, and the pre-unification
entry points survive as ``DeprecationWarning`` shims that accept
either the old argument or a ``PipelineConfig``.  Three kinds of
drift silently break that compatibility story and none of them is
visible inside a single file, which is why this is a whole-program
rule:

* **Incomplete forwarding.**  A ``from_pipeline`` that stops
  forwarding a shared field (say ``max_retries``) builds configs
  that silently ignore a knob the caller set on ``PipelineConfig``.
  Every shared field must be covered — by a literal
  ``setdefault("field", ...)``, by a literal tuple iterated with
  ``setdefault``, or by iterating ``SHARED_PIPELINE_FIELDS`` itself.
* **Phantom fields.**  A ``from_pipeline`` (or its literal tuple)
  that reads a field ``PipelineConfig`` no longer defines raises
  ``AttributeError`` at runtime for every caller — the rule checks
  each forwarded/``getattr``-ed name against the dataclass fields of
  the real ``PipelineConfig``.
* **Lost config branch.**  A deprecated shim in a pipeline module
  (one that imports ``PipelineConfig``) must still *mention* the
  class — the ``isinstance(arg, PipelineConfig)`` branch is what
  keeps old call sites and new configs working through the same
  name.  A shim that drops it has regressed to old-only.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from reprolint.analysis.dataflow import shallow_walk
from reprolint.analysis.modules import dotted_expression
from reprolint.registry import Rule, register
from reprolint.runner import FileContext, ProjectIndex
from reprolint.violations import Violation

_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _str_constants(expr: ast.expr) -> Optional[List[str]]:
    """The strings of a tuple/list of string literals, else None."""
    if isinstance(expr, (ast.Tuple, ast.List)):
        strings: List[str] = []
        for element in expr.elts:
            if isinstance(element, ast.Constant) \
                    and isinstance(element.value, str):
                strings.append(element.value)
            else:
                return None
        return strings
    return None


def _warns_deprecation(func) -> Optional[ast.Call]:
    """The ``warnings.warn(..., DeprecationWarning)`` call, if any."""
    for node in shallow_walk(func):
        if not (isinstance(node, ast.Call)
                and dotted_expression(node.func)
                .rsplit(".", 1)[-1] == "warn"):
            continue
        mentions = list(node.args) \
            + [kw.value for kw in node.keywords]
        for arg in mentions:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Name) \
                        and sub.id == "DeprecationWarning":
                    return node
    return None


@register
class ShimDriftRule(Rule):
    id = "R015"
    name = "deprecated-shim-drift"
    description = ("from_pipeline constructors must forward every "
                   "SHARED_PIPELINE_FIELDS entry and only real "
                   "PipelineConfig fields; deprecated shims must keep "
                   "their PipelineConfig branch")
    requires = ("symbols",)

    # ------------------------------------------------------------------
    # contract anchors (resolved once per run via the symbol table)
    # ------------------------------------------------------------------
    def _shared_fields(self, ctx: FileContext,
                       project: ProjectIndex) -> Optional[List[str]]:
        analysis = project.analysis
        if analysis is None:
            return None
        constant = ctx.config.shared_fields_constant
        for name in sorted(analysis.symbols.modules):
            info = analysis.symbols.modules[name]
            if constant not in info.definitions:
                continue
            for node in info.tree.body:
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name) \
                                and target.id == constant:
                            return _str_constants(node.value)
        return None

    def _pipeline_fields(self, ctx: FileContext,
                         project: ProjectIndex) -> Optional[Set[str]]:
        analysis = project.analysis
        if analysis is None:
            return None
        wanted = ctx.config.pipeline_config_class
        for dotted in sorted(analysis.symbols.classes):
            cls = analysis.symbols.classes[dotted]
            if cls.qualname.rsplit(".", 1)[-1] != wanted:
                continue
            fields: Set[str] = set()
            for item in cls.node.body:
                if isinstance(item, ast.AnnAssign) \
                        and isinstance(item.target, ast.Name):
                    fields.add(item.target.id)
                elif isinstance(item, ast.Assign):
                    for target in item.targets:
                        if isinstance(target, ast.Name):
                            fields.add(target.id)
            return fields
        return None

    # ------------------------------------------------------------------
    # from_pipeline coverage
    # ------------------------------------------------------------------
    def _forwarded_fields(self, func, constant: str
                          ) -> Tuple[Set[str], bool]:
        """(literal field names forwarded, iterates-shared-constant)."""
        covered: Set[str] = set()
        uses_constant = False
        for node in shallow_walk(func):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "setdefault" and node.args:
                key = node.args[0]
                if isinstance(key, ast.Constant) \
                        and isinstance(key.value, str):
                    covered.add(key.value)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) \
                            and isinstance(target.slice, ast.Constant) \
                            and isinstance(target.slice.value, str):
                        covered.add(target.slice.value)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                literals = _str_constants(node.iter)
                if literals is not None:
                    covered.update(literals)
                elif dotted_expression(node.iter) \
                        .rsplit(".", 1)[-1] == constant:
                    uses_constant = True
        return covered, uses_constant

    def _check_from_pipeline(self, ctx: FileContext,
                             project: ProjectIndex
                             ) -> Iterator[Violation]:
        shared = self._shared_fields(ctx, project)
        pipeline_fields = self._pipeline_fields(ctx, project)
        constant = ctx.config.shared_fields_constant
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if not (isinstance(item, _FUNCTIONS)
                        and item.name == "from_pipeline"):
                    continue
                covered, uses_constant = self._forwarded_fields(
                    item, constant)
                if shared and not uses_constant:
                    missing = sorted(set(shared) - covered)
                    if missing:
                        yield Violation(
                            path=ctx.path, line=item.lineno,
                            col=item.col_offset, rule=self.id,
                            message=(f"{node.name}.from_pipeline does "
                                     f"not forward shared pipeline "
                                     f"field(s) {', '.join(missing)}; "
                                     f"configs built from "
                                     f"PipelineConfig silently drop "
                                     f"them"))
                if pipeline_fields is not None:
                    phantom = sorted(covered - pipeline_fields)
                    if phantom:
                        yield Violation(
                            path=ctx.path, line=item.lineno,
                            col=item.col_offset, rule=self.id,
                            message=(f"{node.name}.from_pipeline reads "
                                     f"field(s) {', '.join(phantom)} "
                                     f"that PipelineConfig does not "
                                     f"define; getattr will raise at "
                                     f"runtime"))

    # ------------------------------------------------------------------
    # shim branch
    # ------------------------------------------------------------------
    def _references_pipeline_config(self, ctx: FileContext) -> bool:
        wanted = ctx.config.pipeline_config_class
        if any(dotted.rsplit(".", 1)[-1] == wanted
               for dotted in ctx.imports.values()):
            return True
        return any(isinstance(node, ast.ClassDef) and node.name == wanted
                   for node in ctx.tree.body)

    def _check_shims(self, ctx: FileContext) -> Iterator[Violation]:
        if not self._references_pipeline_config(ctx):
            return
        wanted = ctx.config.pipeline_config_class
        for node in ast.walk(ctx.tree):
            if not isinstance(node, _FUNCTIONS):
                continue
            warn = _warns_deprecation(node)
            if warn is None:
                continue
            mentions_config = any(
                isinstance(sub, ast.Name) and sub.id == wanted
                for sub in shallow_walk(node))
            if not mentions_config:
                yield Violation(
                    path=ctx.path, line=node.lineno,
                    col=node.col_offset, rule=self.id,
                    message=(f"deprecated shim {node.name} no longer "
                             f"references {wanted}; the "
                             f"isinstance-branch that keeps old call "
                             f"sites compatible with the unified "
                             f"config API has drifted away"))

    def check(self, ctx: FileContext,
              project: ProjectIndex) -> Iterator[Violation]:
        yield from self._check_from_pipeline(ctx, project)
        yield from self._check_shims(ctx)
