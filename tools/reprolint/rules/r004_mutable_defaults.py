"""R004 mutable-default-args.

A ``def f(acc=[])`` default is evaluated once and shared across calls —
in a library whose pipelines are re-run and merged (MIDAS maintenance,
distributed TATTOO), state leaking between invocations masquerades as
nondeterminism and is miserable to bisect.  Flags list/dict/set
displays and comprehensions, and calls to the obvious mutable
constructors, used as parameter defaults.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from reprolint.registry import Rule, register
from reprolint.runner import FileContext, ProjectIndex
from reprolint.violations import Violation

_MUTABLE_DISPLAYS = (ast.List, ast.Dict, ast.Set,
                     ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "bytearray", "deque",
    "defaultdict", "OrderedDict", "Counter",
})

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_DISPLAYS):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else "")
        return name in _MUTABLE_CONSTRUCTORS
    return False


@register
class MutableDefaultsRule(Rule):
    id = "R004"
    name = "mutable-default-args"
    description = "mutable default argument values shared across calls"

    def check(self, ctx: FileContext,
              project: ProjectIndex) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            yield from self._check_function(ctx, node)

    def _check_function(self, ctx: FileContext,
                        node: _FunctionNode) -> Iterator[Violation]:
        args = node.args
        positional = args.posonlyargs + args.args
        for arg, default in zip(positional[len(positional)
                                           - len(args.defaults):],
                                args.defaults):
            if _is_mutable_default(default):
                yield self._violation(ctx, default, arg.arg, node)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None and _is_mutable_default(default):
                yield self._violation(ctx, default, arg.arg, node)

    def _violation(self, ctx: FileContext, default: ast.expr,
                   param: str, func: _FunctionNode) -> Violation:
        func_name = getattr(func, "name", "<lambda>")
        return Violation(
            path=ctx.path, line=default.lineno, col=default.col_offset,
            rule=self.id,
            message=(f"parameter '{param}' of '{func_name}' has a mutable "
                     "default evaluated once at def time; default to None "
                     "and construct inside the function"))
