"""R007 centralized-parallelism.

All process-level parallelism lives behind ``repro.perf.pmap``, whose
contract (input-order results, per-item split seeds, serial fallback)
is what keeps parallel runs bit-for-bit identical to serial ones.  A
``multiprocessing`` or ``concurrent.futures`` import anywhere else
under ``src/repro`` would open a second, unaudited door to worker
pools — exactly how ordering- and seed-dependence bugs sneak in.
Files inside a ``perf`` package directory are exempt; everything else
must call :func:`repro.perf.pmap` instead.

Detected spellings mirror R002: ``import multiprocessing``, ``from
concurrent.futures import ProcessPoolExecutor``,
``importlib.import_module("multiprocessing")`` and
``__import__("concurrent.futures")`` with a literal module string.
"""

from __future__ import annotations

import ast
import os
from typing import Iterator, Optional

from reprolint.registry import Rule, register
from reprolint.runner import FileContext, ProjectIndex
from reprolint.violations import Violation

#: Top-level modules that create or manage worker processes/pools.
PARALLELISM_MODULES = frozenset({"multiprocessing", "concurrent"})


def _top_module(dotted: str) -> str:
    return dotted.lstrip(".").split(".")[0]


def _in_perf_package(path: str) -> bool:
    """True when the file lives in a ``perf`` package directory."""
    normalized = os.path.normpath(path).replace(os.sep, "/")
    return "perf" in normalized.split("/")[:-1]


def _literal_import_target(node: ast.Call,
                           ctx: FileContext) -> Optional[str]:
    """Module name for import_module/__import__ calls, if literal."""
    is_dunder = (isinstance(node.func, ast.Name)
                 and node.func.id == "__import__")
    origin = ctx.resolve(node.func)
    if not is_dunder and origin != "importlib.import_module":
        return None
    if node.args and isinstance(node.args[0], ast.Constant) \
            and isinstance(node.args[0].value, str):
        return node.args[0].value
    return None


@register
class CentralizedParallelismRule(Rule):
    id = "R007"
    name = "centralized-parallelism"
    description = ("multiprocessing/concurrent.futures imports are "
                   "allowed only inside repro/perf (use repro.perf.pmap)")

    def check(self, ctx: FileContext,
              project: ProjectIndex) -> Iterator[Violation]:
        if _in_perf_package(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = _top_module(alias.name)
                    if top in PARALLELISM_MODULES:
                        yield self._violation(ctx, node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import — always in-package
                    continue
                module = node.module or ""
                if _top_module(module) in PARALLELISM_MODULES:
                    yield self._violation(ctx, node, module)
            elif isinstance(node, ast.Call):
                target = _literal_import_target(node, ctx)
                if target and _top_module(target) in PARALLELISM_MODULES:
                    yield self._violation(ctx, node, target)

    def _violation(self, ctx: FileContext, node: ast.AST,
                   module: str) -> Violation:
        return Violation(
            path=ctx.path, line=node.lineno, col=node.col_offset,
            rule=self.id,
            message=(f"'{module}' import outside repro/perf; "
                     "parallelism must go through repro.perf.pmap so "
                     "the determinism contract stays auditable"))
