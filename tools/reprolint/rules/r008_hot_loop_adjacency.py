"""R008 hot-loop-adjacency.

The matching and truss kernels are the innermost loops of every
pipeline in the library; PR "matching kernel v2" made them fast by
routing adjacency access through the version-cached set views on
:class:`repro.graph.graph.Graph` (``adjacency_sets()``,
``label_index()``, ``neighbor_label_counts()``).  Materialising the
``neighbors()`` iterator with ``list(...)``/``set(...)`` or running a
membership test against it (``x in g.neighbors(u)`` is a linear scan
that rebuilds the iterator every probe) silently reintroduces the
allocation churn those views removed — but only in kernel code does
that matter, so the rule is scoped to files under a ``matching`` or
``truss`` package directory.  Plain ``for w in g.neighbors(u)``
iteration and comprehensions stay allowed everywhere: a single pass
over the iterator allocates nothing.
"""

from __future__ import annotations

import ast
import os
from typing import Iterator

from reprolint.registry import Rule, register
from reprolint.runner import FileContext, ProjectIndex
from reprolint.violations import Violation

#: Package directories whose files are considered kernel hot loops.
HOT_PACKAGES = frozenset({"matching", "truss"})

#: Builtins that materialise an iterator into a container.
MATERIALIZERS = frozenset({"list", "set"})


def _in_hot_package(path: str) -> bool:
    """True when the file lives in a matching/truss package directory."""
    normalized = os.path.normpath(path).replace(os.sep, "/")
    return bool(HOT_PACKAGES & set(normalized.split("/")[:-1]))


def _is_neighbors_call(node: ast.AST) -> bool:
    """True for any ``<expr>.neighbors(...)`` call expression."""
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "neighbors")


@register
class HotLoopAdjacencyRule(Rule):
    id = "R008"
    name = "hot-loop-adjacency"
    description = ("list()/set() materialisation of, or membership "
                   "tests against, neighbors() iterators inside "
                   "matching/truss kernels (use the cached "
                   "adjacency-set views)")

    def check(self, ctx: FileContext,
              project: ProjectIndex) -> Iterator[Violation]:
        if not _in_hot_package(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in MATERIALIZERS
                    and len(node.args) == 1
                    and _is_neighbors_call(node.args[0])):
                yield self._violation(
                    ctx, node,
                    f"{node.func.id}(...neighbors(...)) materialises "
                    "the neighbor iterator in kernel code; use "
                    "Graph.adjacency_sets()")
            elif isinstance(node, ast.Compare):
                for op, comparator in zip(node.ops, node.comparators):
                    if (isinstance(op, (ast.In, ast.NotIn))
                            and _is_neighbors_call(comparator)):
                        yield self._violation(
                            ctx, node,
                            "membership test against a neighbors() "
                            "iterator is a linear scan per probe; use "
                            "Graph.adjacency_sets() for O(1) lookups")

    def _violation(self, ctx: FileContext, node: ast.AST,
                   message: str) -> Violation:
        return Violation(path=ctx.path, line=node.lineno,
                         col=node.col_offset, rule=self.id,
                         message=message)
