"""R009 stage-span.

The observability layer (:mod:`repro.obs`) only tells the truth if
every pipeline stage actually runs under a span: a stage that skips
instrumentation silently disappears from trace breakdowns, and the
"per-stage wall times sum to ~total" invariant the benchmarks check
quietly erodes.  This rule pins the contract in the selection
pipelines themselves — files under a ``catapult``, ``tattoo``, or
``midas`` package directory.

A function in scope counts as a *pipeline stage* when either

* its name is one of the known stage entry points
  (:data:`STAGE_FUNCTIONS`), or
* its body (shallow — nested ``def``/``lambda`` excluded) calls
  ``repro.perf.pmap``, i.e. it fans work out to workers.

Every stage must contain, at any shallow depth of its body, a
``with`` statement whose context expression resolves to
``repro.obs.span`` or ``repro.obs.capture`` (directly or via the
``repro.obs.tracing`` module).  The check is intentionally shallow on
both sides: a span opened inside a nested function does not cover the
stage that defines it, and a stage that delegates to a nested helper
still needs its own span.
"""

from __future__ import annotations

import ast
import os
from typing import Iterator, Union

from reprolint.registry import Rule, register
from reprolint.runner import FileContext, ProjectIndex
from reprolint.violations import Violation

#: Package directories whose files host pipeline stages.
PIPELINE_PACKAGES = frozenset({"catapult", "tattoo", "midas"})

#: Known stage entry points (by function name).
STAGE_FUNCTIONS = frozenset({
    "cluster_repository",
    "summarize_clusters",
    "generate_all_candidates",
    "extract_candidates",
    "select_patterns_distributed",
    "apply_batch",
    "multi_scan_swap",
})

#: Dotted origins that fan work out to worker processes.
PMAP_ORIGINS = frozenset({
    "repro.perf.pmap",
    "repro.perf.executor.pmap",
})

#: Dotted origins that open a trace span over a stage.
SPAN_ORIGINS = frozenset({
    "repro.obs.span",
    "repro.obs.capture",
    "repro.obs.tracing.span",
    "repro.obs.tracing.capture",
})

_FunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _in_pipeline_package(path: str) -> bool:
    """True when the file lives in a pipeline package directory."""
    normalized = os.path.normpath(path).replace(os.sep, "/")
    return bool(PIPELINE_PACKAGES & set(normalized.split("/")[:-1]))


def _shallow_walk(func: _FunctionDef) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested scopes."""
    pending = list(func.body)
    while pending:
        node = pending.pop()
        yield node
        if isinstance(node, _NESTED_SCOPES):
            continue
        pending.extend(ast.iter_child_nodes(node))


def _calls_pmap(func: _FunctionDef, ctx: FileContext) -> bool:
    """True when the shallow body calls repro.perf.pmap."""
    for node in _shallow_walk(func):
        if isinstance(node, ast.Call) \
                and ctx.resolve(node.func) in PMAP_ORIGINS:
            return True
    return False


def _has_stage_span(func: _FunctionDef, ctx: FileContext) -> bool:
    """True when the shallow body opens a repro.obs span/capture."""
    for node in _shallow_walk(func):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call) \
                    and ctx.resolve(expr.func) in SPAN_ORIGINS:
                return True
    return False


@register
class StageSpanRule(Rule):
    id = "R009"
    name = "stage-span"
    description = ("pipeline-stage functions in catapult/tattoo/midas "
                   "must run under a repro.obs span or capture")

    def check(self, ctx: FileContext,
              project: ProjectIndex) -> Iterator[Violation]:
        if not _in_pipeline_package(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            is_stage = (node.name in STAGE_FUNCTIONS
                        or _calls_pmap(node, ctx))
            if is_stage and not _has_stage_span(node, ctx):
                yield Violation(
                    path=ctx.path, line=node.lineno,
                    col=node.col_offset, rule=self.id,
                    message=(f"pipeline stage '{node.name}' runs "
                             "without a repro.obs span; wrap its body "
                             "in `with span(...)` or `with "
                             "capture(...)` so traces stay complete"))
