"""R014 determinism hygiene (whole-program).

Two ways wall-clock and hash randomisation leak into results that
DESIGN.md promises are bit-reproducible:

* **Wall-clock reads outside the clock-owning layers.**  ``time.
  time()``/``perf_counter()``/``datetime.now()`` and friends are the
  business of the observability spans, the resilience deadlines, and
  the perf retry backoff — the ``obs``/``resilience``/``perf``
  subtrees.  Anywhere else, a clock read is either dead code or a
  nondeterminism bug waiting to be interpolated into an output.
  This check is unconditional per file (no reachability needed): the
  allowed list is by directory, mirroring the architecture.
* **Set-iteration feeding result ordering.**  Python randomises
  ``str`` hashes per process, so iterating a ``set`` yields a
  different order every run.  In functions reachable from the
  pipeline-result producers (``run_catapult`` etc.), a loop over a
  set-typed value whose body appends to a returned collection — or a
  comprehension over one inside a ``return`` — makes the
  ``PipelineResult`` ordering flip run to run.  The fix is always the
  same: ``sorted(...)`` at the iteration site, which is why the rule
  only fires where the iterable is *provably* a set (a literal, a
  ``set()``/``frozenset()`` call, a set comprehension, or a local
  bound only to those); dict iteration is insertion-ordered and
  stays legal.
"""

from __future__ import annotations

import ast
import os
from typing import Iterator, List, Optional, Set

from reprolint.analysis.dataflow import FunctionDataflow, shallow_walk
from reprolint.registry import Rule, register
from reprolint.runner import FileContext, ProjectIndex
from reprolint.violations import Violation

_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_set_expr(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in ("set", "frozenset"))


def _set_bound_names(flow: FunctionDataflow) -> Set[str]:
    """Locals every one of whose bindings is a set expression."""
    names: Set[str] = set()
    for name, nameflow in flow.names.items():
        bindings = [b for b in nameflow.bindings if b is not None]
        if bindings and all(_is_set_expr(b) for b in bindings):
            names.add(name)
    return names


def _set_iterable(expr: ast.expr, set_names: Set[str]) -> bool:
    if _is_set_expr(expr):
        return True
    return isinstance(expr, ast.Name) and expr.id in set_names


def _returned_names(func) -> Set[str]:
    """Every local name appearing inside a return expression."""
    names: Set[str] = set()
    for node in shallow_walk(func):
        if isinstance(node, ast.Return) and node.value is not None:
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names


@register
class DeterminismHygieneRule(Rule):
    id = "R014"
    name = "determinism-hygiene"
    description = ("wall-clock reads outside obs/resilience/perf, and "
                   "set-iteration feeding result ordering in "
                   "pipeline-result paths")
    requires = ("symbols", "callgraph")

    # ------------------------------------------------------------------
    # wall-clock confinement
    # ------------------------------------------------------------------
    def _check_wallclock(self, ctx: FileContext
                         ) -> Iterator[Violation]:
        config = ctx.config
        parts = set(os.path.normpath(ctx.path)
                    .replace(os.sep, "/").split("/")[:-1])
        if parts & config.wallclock_allowed_dirs:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.resolve(node.func)
            if dotted in config.wallclock_functions:
                yield Violation(
                    path=ctx.path, line=node.lineno,
                    col=node.col_offset, rule=self.id,
                    message=(f"{dotted}() read outside the "
                             "obs/resilience/perf layers; wall-clock "
                             "must not feed reproducible results"))

    # ------------------------------------------------------------------
    # set-order feeding results
    # ------------------------------------------------------------------
    def _check_set_order(self, ctx: FileContext,
                         project: ProjectIndex
                         ) -> Iterator[Violation]:
        analysis = project.analysis
        if analysis is None:
            return
        symbols = analysis.symbols
        roots = [s.dotted
                 for name in sorted(ctx.config.result_root_functions)
                 for s in symbols.functions_named(name)]
        if not roots:
            return
        in_scope = analysis.callgraph.reachable_from(roots)
        for dotted in sorted(symbols.functions):
            symbol = symbols.functions[dotted]
            if symbol.path != ctx.path or dotted not in in_scope:
                continue
            yield from self._check_function(ctx, symbol.node)

    def _check_function(self, ctx: FileContext,
                        func) -> Iterator[Violation]:
        flow = FunctionDataflow(func)
        set_names = _set_bound_names(flow)
        returned = _returned_names(func)
        if not returned:
            return
        for node in shallow_walk(func):
            if isinstance(node, (ast.For, ast.AsyncFor)) \
                    and _set_iterable(node.iter, set_names) \
                    and self._feeds_returned(node, returned):
                yield self._violation(
                    ctx, node.iter,
                    "loop iterates a set and feeds a returned "
                    "collection; set order is hash-randomised — "
                    "wrap the iterable in sorted(...)")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)) \
                    and self._comp_feeds_returned(node, func, returned):
                for generator in node.generators:
                    if _set_iterable(generator.iter, set_names):
                        yield self._violation(
                            ctx, generator.iter,
                            "comprehension over a set feeds the "
                            "returned value; set order is "
                            "hash-randomised — wrap the iterable "
                            "in sorted(...)")

    @staticmethod
    def _feeds_returned(loop: ast.AST, returned: Set[str]) -> bool:
        """Loop body appends/extends/writes into a returned name."""
        for node in ast.walk(loop):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in ("append", "extend", "add",
                                           "insert", "update") \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id in returned:
                return True
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id in returned:
                        return True
        return False

    @staticmethod
    def _comp_feeds_returned(comp: ast.AST, func,
                             returned: Set[str]) -> bool:
        """Comprehension sits in a return or binds a returned name."""
        for node in shallow_walk(func):
            if isinstance(node, ast.Return) and node.value is not None:
                for sub in ast.walk(node.value):
                    if sub is comp:
                        return True
            elif isinstance(node, ast.Assign) and node.value is comp:
                for target in node.targets:
                    if isinstance(target, ast.Name) \
                            and target.id in returned:
                        return True
        return False

    def _violation(self, ctx: FileContext, node: ast.AST,
                   message: str) -> Violation:
        return Violation(path=ctx.path, line=node.lineno,
                         col=node.col_offset, rule=self.id,
                         message=message)

    def check(self, ctx: FileContext,
              project: ProjectIndex) -> Iterator[Violation]:
        yield from self._check_wallclock(ctx)
        yield from self._check_set_order(ctx, project)
