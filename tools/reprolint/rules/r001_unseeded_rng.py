"""R001 no-unseeded-rng.

DESIGN.md: "All randomized components take explicit ``random.Random``
seeds; experiments are deterministic."  Two spellings break that:

* ``random.Random()`` with no argument — seeds from OS entropy, so two
  runs of the same experiment diverge silently;
* any call that reads the *module-level* RNG (``random.choice`` and
  friends, including via ``from random import choice``) — shared global
  state that every other caller perturbs, which is exactly what breaks
  result merging once TATTOO work is sharded across workers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from reprolint.registry import Rule, register
from reprolint.runner import FileContext, ProjectIndex
from reprolint.violations import Violation


@register
class UnseededRngRule(Rule):
    id = "R001"
    name = "no-unseeded-rng"
    description = ("random.Random() must be seeded and module-level "
                   "random.* calls are forbidden")

    def check(self, ctx: FileContext,
              project: ProjectIndex) -> Iterator[Violation]:
        module_rng = ctx.config.module_rng_functions
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = ctx.resolve(node.func)
            if origin == "random.Random":
                if not node.args and not node.keywords:
                    yield Violation(
                        path=ctx.path, line=node.lineno,
                        col=node.col_offset, rule=self.id,
                        message=("random.Random() without a seed is "
                                 "nondeterministic; pass an explicit seed "
                                 "(e.g. random.Random(0))"))
            elif (origin is not None
                  and origin.startswith("random.")
                  and origin.split(".", 1)[1] in module_rng):
                func_name = origin.split(".", 1)[1]
                yield Violation(
                    path=ctx.path, line=node.lineno,
                    col=node.col_offset, rule=self.id,
                    message=(f"random.{func_name}() uses the shared "
                             "module-level RNG; thread an explicit "
                             "random.Random instance instead"))
