"""R012 pmap payload safety.

``repro.perf.pmap`` ships its callable to worker *processes* by
pickling.  Anything that cannot round-trip through pickle fails at
submit time on some platforms and — worse — silently degrades to the
serial fallback on others, so the contract is strict: the callable
must be a **module-level function**, and any state bound into it
(via ``functools.partial``) must itself be picklable.

The rule flags, at each ``pmap(fn, ...)`` call site:

* ``lambda`` payloads and locally nested ``def``s (pickle refuses
  both by reference; a nested def that *captures* enclosing locals is
  reported with the captured names, since moving it to module level
  requires untangling the closure);
* bound methods (``self.worker``/``obj.worker``) — the receiver
  rides along and is rarely picklable;
* ``functools.partial`` payloads whose bound arguments carry
  process-local state: locks/conditions/events, open file handles,
  generator expressions, or live tracing spans (per the
  ``unpicklable_factories`` table in the lint config).

Resolution runs through the project symbol table when available, so
``from repro.perf import pmap``, aliased imports, and re-exports all
reach the same rule.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from reprolint.analysis.dataflow import (
    FunctionDataflow,
    closure_captures,
    shallow_walk,
)
from reprolint.analysis.modules import dotted_expression
from reprolint.registry import Rule, register
from reprolint.runner import FileContext, ProjectIndex
from reprolint.violations import Violation

_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef)

_PARTIAL_ORIGINS = frozenset({"functools.partial", "partial"})


@register
class PmapPayloadRule(Rule):
    id = "R012"
    name = "pmap-payload-safety"
    description = ("callables handed to repro.perf.pmap must be "
                   "module-level and free of unpicklable bound state "
                   "(closures, locks, open files, generators, spans)")
    requires = ("symbols",)

    # ------------------------------------------------------------------
    # resolution helpers
    # ------------------------------------------------------------------
    def _dotted(self, ctx: FileContext, project: ProjectIndex,
                expr: ast.expr) -> str:
        """Best-effort dotted origin of an expression's callable."""
        resolved = ctx.resolve(expr)
        if resolved:
            analysis = project.analysis
            if analysis is not None:
                return analysis.symbols.canonical(resolved)
            return resolved
        return dotted_expression(expr)

    def _is_pmap(self, ctx: FileContext, project: ProjectIndex,
                 call: ast.Call) -> bool:
        dotted = self._dotted(ctx, project, call.func)
        return dotted in ctx.config.pmap_origins

    def _is_partial(self, ctx: FileContext, project: ProjectIndex,
                    expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        dotted = self._dotted(ctx, project, expr.func) \
            or dotted_expression(expr.func)
        return dotted in _PARTIAL_ORIGINS or dotted.endswith(".partial")

    # ------------------------------------------------------------------
    # payload checks
    # ------------------------------------------------------------------
    def check(self, ctx: FileContext,
              project: ProjectIndex) -> Iterator[Violation]:
        yield from self._walk(ctx, project, ctx.tree, None)

    def _walk(self, ctx: FileContext, project: ProjectIndex,
              scope: ast.AST, enclosing) -> Iterator[Violation]:
        """Visit calls, tracking the innermost enclosing function."""
        for child in ast.iter_child_nodes(scope):
            inner = child if isinstance(child, _FUNCTIONS) else enclosing
            if isinstance(child, ast.Call) \
                    and self._is_pmap(ctx, project, child):
                payload = self._payload_of(child)
                if payload is not None:
                    yield from self._check_payload(
                        ctx, project, payload, enclosing)
            yield from self._walk(ctx, project, child, inner)

    @staticmethod
    def _payload_of(call: ast.Call) -> Optional[ast.expr]:
        if call.args:
            return call.args[0]
        for keyword in call.keywords:
            if keyword.arg == "fn":
                return keyword.value
        return None

    def _check_payload(self, ctx: FileContext, project: ProjectIndex,
                       payload: ast.expr,
                       enclosing) -> Iterator[Violation]:
        if isinstance(payload, ast.Lambda):
            yield self._violation(
                ctx, payload,
                "lambda passed to pmap cannot be pickled to worker "
                "processes; define a module-level function")
            return
        if isinstance(payload, ast.Attribute):
            yield self._violation(
                ctx, payload,
                f"bound method {dotted_expression(payload) or payload.attr}"
                " passed to pmap drags its receiver through pickle; "
                "use a module-level function taking the object as an "
                "argument")
            return
        if self._is_partial(ctx, project, payload):
            assert isinstance(payload, ast.Call)
            if payload.args:
                yield from self._check_payload(
                    ctx, project, payload.args[0], enclosing)
            bound = list(payload.args[1:]) \
                + [kw.value for kw in payload.keywords]
            for arg in bound:
                yield from self._check_bound_state(
                    ctx, project, arg, enclosing)
            return
        if isinstance(payload, ast.Name) and enclosing is not None:
            yield from self._check_local_name(
                ctx, project, payload, enclosing)

    def _check_local_name(self, ctx: FileContext,
                          project: ProjectIndex, payload: ast.Name,
                          enclosing) -> Iterator[Violation]:
        nested: Dict[str, ast.AST] = {}
        captures: Dict[str, Tuple[str, ...]] = {}
        for node, captured in closure_captures(enclosing):
            name = getattr(node, "name", None)
            if name:
                nested[name] = node
                captures[name] = captured
        if payload.id in nested:
            captured = captures[payload.id]
            if captured:
                detail = (f"closes over local name(s) "
                          f"{', '.join(captured)} and")
            else:
                detail = "is defined inside another function and"
            yield self._violation(
                ctx, payload,
                f"pmap payload {payload.id!r} {detail} cannot be "
                "pickled by reference; move it to module level")
            return
        flow = FunctionDataflow(enclosing)
        for binding in flow.bindings_of(payload.id):
            if isinstance(binding, ast.Lambda):
                yield self._violation(
                    ctx, payload,
                    f"pmap payload {payload.id!r} is bound to a "
                    "lambda; define a module-level function")
                return
            if self._is_partial(ctx, project, binding):
                # trace the partial the name was built from
                yield from self._check_payload(
                    ctx, project, binding, enclosing)
                return

    def _check_bound_state(self, ctx: FileContext,
                           project: ProjectIndex, arg: ast.expr,
                           enclosing) -> Iterator[Violation]:
        """Flag partial-bound arguments that cannot be pickled."""
        if isinstance(arg, (ast.GeneratorExp, ast.Lambda)):
            kind = "generator expression" \
                if isinstance(arg, ast.GeneratorExp) else "lambda"
            yield self._violation(
                ctx, arg,
                f"{kind} bound into a pmap partial is unpicklable")
            return
        factories = ctx.config.unpicklable_factories
        if isinstance(arg, ast.Call):
            dotted = self._dotted(ctx, project, arg.func)
            if dotted in factories:
                yield self._violation(
                    ctx, arg,
                    f"{dotted}() result bound into a pmap partial is "
                    "process-local and unpicklable")
            return
        if isinstance(arg, ast.Name) and enclosing is not None:
            flow = FunctionDataflow(enclosing)
            for binding in flow.bindings_of(arg.id):
                if isinstance(binding, ast.GeneratorExp):
                    yield self._violation(
                        ctx, arg,
                        f"{arg.id!r} is a generator expression; "
                        "bound into a pmap partial it is unpicklable")
                    return
                if isinstance(binding, ast.Call):
                    dotted = self._dotted(ctx, project, binding.func)
                    if dotted in factories:
                        yield self._violation(
                            ctx, arg,
                            f"{arg.id!r} holds a {dotted}() result; "
                            "bound into a pmap partial it is "
                            "process-local and unpicklable")
                        return

    def _violation(self, ctx: FileContext, node: ast.AST,
                   message: str) -> Violation:
        return Violation(path=ctx.path, line=node.lineno,
                         col=node.col_offset, rule=self.id,
                         message=message)
