"""R011 cache-invalidation safety.

:class:`repro.graph.graph.Graph` invalidates its derived views
(adjacency sets, label index, neighbor label counts) with a monotonic
``_version`` counter instead of eagerly rebuilding them.  The whole
scheme rests on two obligations this rule machine-checks:

* **Writers bump.**  Any method of a version-guarded class (a class
  that writes ``self._version`` somewhere) that mutates one of the
  guarded attributes (``_adj``, ``_node_labels``, ``_edge_labels``,
  ``_edge_attrs``, ``_views``) must bump ``_version`` on *every* path
  from the mutation to a normal exit.  An early ``return`` that skips
  the bump leaves every cached view silently stale — the classic bug
  this rule exists for.  ``raise`` paths are exempt (an aborted
  operation may leave the counter alone), as are ``__init__``/
  ``__new__`` (no caches can exist yet) and the version-tagged cache
  write itself (``self._views = (self._version, {...})``).
* **Readers don't write.**  The cached views are returned without
  copying; call sites outside the defining module must treat them as
  frozen.  ``adj = g.adjacency_sets(); adj[u].add(v)`` corrupts the
  shared cache for every other reader until the next bump.

Both checks are intra-procedural on top of the dataflow pass's
all-paths walker; a call to a sibling method that itself bumps
``_version`` counts as a restore, so helper-bump idioms stay legal.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from reprolint.analysis.dataflow import (
    FunctionDataflow,
    INPLACE_METHODS,
    mutations_missing_restore,
    shallow_walk,
)
from reprolint.registry import Rule, register
from reprolint.runner import FileContext, ProjectIndex
from reprolint.violations import Violation

_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Methods where guarded writes need no bump: construction and
#: copy-protocol plumbing run before any view can have been handed out.
_EXEMPT_METHODS = frozenset({
    "__init__", "__new__", "__copy__", "__deepcopy__", "__setstate__",
    "__reduce__", "__getstate__",
})


def _self_attr(expr: ast.expr, version_attr: str = "") -> Optional[str]:
    """``attr`` when expr is ``self.attr`` (one subscript deep)."""
    if isinstance(expr, ast.Subscript):
        expr = expr.value
    if isinstance(expr, ast.Attribute) \
            and isinstance(expr.value, ast.Name) \
            and expr.value.id == "self":
        return expr.attr
    return None


def _reads_version(expr: ast.expr, version_attr: str) -> bool:
    """True when any subexpression loads ``self.<version_attr>``."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) \
                and node.attr == version_attr \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            return True
    return False


def _writes_version(stmt: ast.stmt, version_attr: str) -> bool:
    """True for ``self._version += 1`` / ``self._version = ...``."""
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    for target in targets:
        if isinstance(target, ast.Attribute) \
                and target.attr == version_attr \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self":
            return True
    return False


def _view_root(expr: ast.expr, name_roots: Set[str],
               attr_roots: Set[str]) -> Optional[str]:
    """Display name when ``expr`` (subscripts stripped) is a view root."""
    while isinstance(expr, ast.Subscript):
        expr = expr.value
    if isinstance(expr, ast.Name) and expr.id in name_roots:
        return expr.id
    if isinstance(expr, ast.Attribute) \
            and isinstance(expr.value, ast.Name) \
            and expr.value.id == "self" and expr.attr in attr_roots:
        return f"self.{expr.attr}"
    return None


@register
class CacheInvalidationRule(Rule):
    id = "R011"
    name = "cache-invalidation-safety"
    description = ("mutations of version-guarded Graph state must bump "
                   "_version on every path, and cached-view returns "
                   "(adjacency_sets() etc.) must not be mutated by "
                   "callers")
    requires = ("symbols", "dataflow")

    # ------------------------------------------------------------------
    # writers bump
    # ------------------------------------------------------------------
    def _guarded_nodes(self, stmt: ast.stmt, config) -> List[ast.AST]:
        """Guarded-attribute mutations performed by one simple stmt."""
        guarded = config.version_guarded_attrs
        version_attr = config.version_attr
        found: List[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                attr = _self_attr(target)
                if attr in guarded:
                    # the version-tagged cache write is the
                    # invalidation mechanism itself, not a mutation:
                    # self._views = (self._version, {...})
                    if not isinstance(target, ast.Subscript) \
                            and _reads_version(stmt.value, version_attr):
                        continue
                    found.append(stmt)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if _self_attr(stmt.target) in guarded:
                found.append(stmt)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if _self_attr(target) in guarded:
                    found.append(stmt)
        elif isinstance(stmt, ast.Expr) \
                and isinstance(stmt.value, ast.Call) \
                and isinstance(stmt.value.func, ast.Attribute) \
                and stmt.value.func.attr in INPLACE_METHODS:
            if _self_attr(stmt.value.func.value) in guarded:
                found.append(stmt)
        return found

    def _bumping_methods(self, classdef: ast.ClassDef,
                         version_attr: str) -> Set[str]:
        """Method names whose body writes ``self._version`` anywhere."""
        bumping: Set[str] = set()
        for item in classdef.body:
            if isinstance(item, _FUNCTIONS):
                for node in shallow_walk(item):
                    if isinstance(node, ast.stmt) \
                            and _writes_version(node, version_attr):
                        bumping.add(item.name)
                        break
        return bumping

    def _check_writers(self, ctx: FileContext
                       ) -> Iterator[Violation]:
        config = ctx.config
        version_attr = config.version_attr
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bumping = self._bumping_methods(node, version_attr)
            if not bumping:
                continue  # not a version-guarded class
            for method in node.body:
                if not isinstance(method, _FUNCTIONS) \
                        or method.name in _EXEMPT_METHODS:
                    continue

                def mutates(stmt: ast.stmt) -> List[ast.AST]:
                    return self._guarded_nodes(stmt, config)

                def restores(stmt: ast.stmt) -> bool:
                    if _writes_version(stmt, version_attr):
                        return True
                    # delegation: calling a sibling that bumps
                    return (isinstance(stmt, ast.Expr)
                            and isinstance(stmt.value, ast.Call)
                            and isinstance(stmt.value.func, ast.Attribute)
                            and isinstance(stmt.value.func.value, ast.Name)
                            and stmt.value.func.value.id == "self"
                            and stmt.value.func.attr in bumping)

                for leak in mutations_missing_restore(
                        method, mutates, restores):
                    attr = self._leaked_attr(leak, config)
                    yield Violation(
                        path=ctx.path, line=leak.lineno,
                        col=leak.col_offset, rule=self.id,
                        message=(f"{node.name}.{method.name} mutates "
                                 f"self.{attr} on a path that exits "
                                 f"without bumping "
                                 f"self.{version_attr}; cached views "
                                 f"go stale"))

    def _leaked_attr(self, stmt: ast.AST, config) -> str:
        for node in ast.walk(stmt):
            attr = _self_attr(node) if isinstance(node, (
                ast.Attribute, ast.Subscript)) else None
            if attr in config.version_guarded_attrs:
                return attr
        return "?"

    # ------------------------------------------------------------------
    # readers don't write
    # ------------------------------------------------------------------
    def _check_readers(self, ctx: FileContext
                       ) -> Iterator[Violation]:
        config = ctx.config
        views = config.cached_view_methods
        # the defining module may build/own the views it returns
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, _FUNCTIONS) \
                            and item.name in views:
                        return
        for node in ast.walk(ctx.tree):
            if isinstance(node, _FUNCTIONS):
                yield from self._check_function_reads(ctx, node, views)

    def _check_function_reads(self, ctx: FileContext, func,
                              views) -> Iterator[Violation]:
        flow = FunctionDataflow(func)
        name_roots: Set[str] = set()
        bound_method: Dict[str, str] = {}
        for name, nameflow in flow.names.items():
            bindings = [b for b in nameflow.bindings if b is not None]
            view_calls = [b for b in bindings
                          if isinstance(b, ast.Call)
                          and isinstance(b.func, ast.Attribute)
                          and b.func.attr in views]
            # only names *exclusively* bound to view calls: a copy
            # (``adj = dict(g.adjacency_sets())``) de-classifies
            if bindings and view_calls \
                    and len(view_calls) == len(bindings):
                name_roots.add(name)
                bound_method[name] = view_calls[0].func.attr
        attr_roots: Set[str] = set()
        attr_method: Dict[str, str] = {}
        for node in shallow_walk(func):
            if isinstance(node, ast.Assign) \
                    and isinstance(node.value, ast.Call) \
                    and isinstance(node.value.func, ast.Attribute) \
                    and node.value.func.attr in views:
                for target in node.targets:
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self":
                        attr_roots.add(target.attr)
                        attr_method[target.attr] = node.value.func.attr
        if not name_roots and not attr_roots:
            return

        def origin(root: str) -> str:
            if root.startswith("self."):
                return attr_method.get(root[5:], "a cached view")
            return bound_method.get(root, "a cached view")

        for node in shallow_walk(func):
            mutated: List[Tuple[str, ast.AST]] = []
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        root = _view_root(target, name_roots, attr_roots)
                        if root:
                            mutated.append((root, node))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        root = _view_root(target, name_roots, attr_roots)
                        if root:
                            mutated.append((root, node))
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in INPLACE_METHODS:
                root = _view_root(node.func.value, name_roots, attr_roots)
                if root:
                    mutated.append((root, node))
            for root, site in mutated:
                yield Violation(
                    path=ctx.path, line=site.lineno,
                    col=site.col_offset, rule=self.id,
                    message=(f"{root} is the shared return of "
                             f"{origin(root)}(); mutating it corrupts "
                             f"the version-cached view for every "
                             f"reader — copy it first"))

    def check(self, ctx: FileContext,
              project: ProjectIndex) -> Iterator[Violation]:
        yield from self._check_writers(ctx)
        yield from self._check_readers(ctx)
