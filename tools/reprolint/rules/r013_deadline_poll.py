"""R013 deadline-poll coverage.

The resilience layer's anytime contract ("complete at least one unit
of work, then check") only holds if every loop that can burn
significant wall-clock actually *polls* its :class:`Deadline`.  A
stage that loops over repositories or candidates calling the matching
kernel without a ``deadline.check(...)`` at the loop boundary turns a
soft budget into an unbounded run — exactly the failure the
fault-injection harness cannot catch, because nothing faults.

Scope is deliberately narrow to stay quiet on ordinary code:

* only functions reachable (via the project call graph) from a
  pipeline stage function, and
* only functions that *have* a deadline in scope — a parameter or
  local named ``deadline``/``*_deadline`` or bound from a
  ``Deadline(...)`` construction.  A function that was never handed
  the deadline cannot poll it; its caller is the one on the hook.

Within such a function, a ``for``/``while`` loop whose body can reach
expensive work (the matching/truss/clustering kernels, ``pmap``, or
the capped-enumeration entry points — see the
``deadline_expensive_*`` config tables) must be *covered*: poll the
deadline somewhere in the loop, pass the deadline to a callee
(delegation — the callee polls), or sit inside an enclosing loop that
is itself covered (the poll at the outer boundary bounds every inner
iteration).
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Optional, Set

from reprolint.analysis.dataflow import shallow_walk
from reprolint.analysis.modules import dotted_expression
from reprolint.registry import Rule, register
from reprolint.runner import FileContext, ProjectIndex
from reprolint.rules.r009_stage_span import STAGE_FUNCTIONS
from reprolint.violations import Violation

_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef)
_LOOPS = (ast.For, ast.AsyncFor, ast.While)


def _loop_walk(node: ast.AST):
    """Walk a subtree without entering nested def/lambda/class."""
    pending = list(ast.iter_child_nodes(node))
    while pending:
        child = pending.pop()
        yield child
        if isinstance(child, (*_FUNCTIONS, ast.Lambda, ast.ClassDef)):
            continue
        pending.extend(ast.iter_child_nodes(child))


def _deadline_names(func) -> Set[str]:
    """Parameter/local names that hold the deadline in this function."""
    names: Set[str] = set()
    args = func.args
    for arg in (args.posonlyargs + args.args + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])):
        if arg.arg == "deadline" or arg.arg.endswith("_deadline"):
            names.add(arg.arg)
    for node in shallow_walk(func):
        if isinstance(node, ast.Assign) and node.value is not None:
            bound = _is_deadline_expr(node.value)
            for target in node.targets:
                if isinstance(target, ast.Name) and (
                        bound or target.id == "deadline"
                        or target.id.endswith("_deadline")):
                    names.add(target.id)
    return names


def _is_deadline_expr(expr: ast.expr) -> bool:
    """Constructions/reads that obviously produce a Deadline."""
    if isinstance(expr, ast.Call):
        dotted = dotted_expression(expr.func)
        return dotted.rsplit(".", 1)[-1] == "Deadline"
    dotted = dotted_expression(expr)
    return bool(dotted) and dotted.rsplit(".", 1)[-1] == "deadline"


def _mentions_deadline(expr: ast.expr, names: Set[str]) -> bool:
    if isinstance(expr, ast.Name):
        return expr.id in names
    if isinstance(expr, ast.Attribute):
        return "deadline" in expr.attr or _mentions_deadline(
            expr.value, names)
    return False


@register
class DeadlinePollRule(Rule):
    id = "R013"
    name = "deadline-poll-coverage"
    description = ("loops over expensive work in stage-reachable "
                   "functions must poll the in-scope Deadline (or "
                   "delegate it) at the loop boundary")
    requires = ("symbols", "callgraph")

    def check(self, ctx: FileContext,
              project: ProjectIndex) -> Iterator[Violation]:
        analysis = project.analysis
        if analysis is None:
            return
        symbols = analysis.symbols
        info = symbols.module_for_path(ctx.path)
        if info is None:
            return
        graph = analysis.callgraph
        roots = [dotted for name in sorted(STAGE_FUNCTIONS)
                 for dotted in (s.dotted
                                for s in symbols.functions_named(name))]
        if not roots:
            return
        in_scope = graph.reachable_from(roots)
        config = ctx.config
        expensive_targets = frozenset(config.deadline_expensive_calls)
        for dotted in sorted(symbols.functions):
            symbol = symbols.functions[dotted]
            if symbol.path != ctx.path or dotted not in in_scope:
                continue
            func = symbol.node
            names = _deadline_names(func)
            if not names:
                continue
            yield from self._check_block(
                ctx, analysis, info.name, func.body, names,
                expensive_targets, covered=False)

    # ------------------------------------------------------------------
    # loop coverage
    # ------------------------------------------------------------------
    def _check_block(self, ctx, analysis, module: str,
                     stmts: List[ast.stmt], names: Set[str],
                     expensive: FrozenSet[str],
                     covered: bool) -> Iterator[Violation]:
        for stmt in stmts:
            if isinstance(stmt, _LOOPS):
                loop_covered = (covered
                                or self._polls(ctx, stmt, names)
                                or self._delegates(stmt, names))
                if not loop_covered and self._is_expensive(
                        ctx, analysis, module, stmt, expensive):
                    yield Violation(
                        path=ctx.path, line=stmt.lineno,
                        col=stmt.col_offset, rule=self.id,
                        message=("loop runs deadline-worthy work but "
                                 "never polls the in-scope deadline "
                                 "(add deadline.check(...) at the "
                                 "loop boundary or pass the deadline "
                                 "to the callee)"))
                for body in (stmt.body, stmt.orelse):
                    yield from self._check_block(
                        ctx, analysis, module, body, names,
                        expensive, loop_covered)
            elif isinstance(stmt, _FUNCTIONS + (ast.ClassDef,)):
                continue
            else:
                for field in ("body", "orelse", "finalbody"):
                    inner = getattr(stmt, field, None)
                    if isinstance(inner, list):
                        yield from self._check_block(
                            ctx, analysis, module, inner, names,
                            expensive, covered)
                handlers = getattr(stmt, "handlers", None)
                if handlers:
                    for handler in handlers:
                        yield from self._check_block(
                            ctx, analysis, module, handler.body,
                            names, expensive, covered)

    def _polls(self, ctx, loop: ast.AST, names: Set[str]) -> bool:
        methods = ctx.config.deadline_poll_methods
        for node in _loop_walk(loop):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in methods \
                    and _mentions_deadline(node.func.value, names):
                return True
        return False

    def _delegates(self, loop: ast.AST, names: Set[str]) -> bool:
        for node in _loop_walk(loop):
            if isinstance(node, ast.Call):
                for arg in list(node.args) \
                        + [kw.value for kw in node.keywords]:
                    if isinstance(arg, ast.Name) and arg.id in names:
                        return True
        return False

    def _is_expensive(self, ctx, analysis, module: str,
                      loop: ast.AST,
                      expensive: FrozenSet[str]) -> bool:
        config = ctx.config
        graph = analysis.callgraph
        for node in _loop_walk(loop):
            if not isinstance(node, ast.Call):
                continue
            dotted = analysis.symbols.resolve_call(module, node.func) \
                or dotted_expression(node.func)
            if not dotted:
                continue
            terminal = dotted.rsplit(".", 1)[-1]
            if terminal in config.deadline_expensive_names:
                return True
            if graph.reaches(dotted, expensive):
                return True
        return False
