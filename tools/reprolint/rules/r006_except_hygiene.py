"""R006 bare-except / except-pass.

Pipeline stages (CATAPULT -> clustering -> VQI assembly, TATTOO
sharded selection, MIDAS maintenance) are chained: a stage that
swallows an exception hands the next stage silently-partial state, and
MIDAS's never-degrade guarantee is only as strong as the errors it is
allowed to see.  Flags ``except:`` with no exception type, and handlers
of any type whose body is only ``pass``/``...`` — except for the
optional-dependency gating idiom (``except ImportError: pass`` and
friends, configurable via ``LintConfig.except_pass_allowlist``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from reprolint.registry import Rule, register
from reprolint.runner import FileContext, ProjectIndex
from reprolint.violations import Violation


def _exception_names(node: ast.ExceptHandler) -> Set[str]:
    """Terminal names of the caught exception type(s)."""
    types = []
    if isinstance(node.type, ast.Tuple):
        types = list(node.type.elts)
    elif node.type is not None:
        types = [node.type]
    names: Set[str] = set()
    for expr in types:
        if isinstance(expr, ast.Name):
            names.add(expr.id)
        elif isinstance(expr, ast.Attribute):
            names.add(expr.attr)
    return names


def _body_is_silent(body: list) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value,
                                                     ast.Constant):
            continue  # docstring or bare ``...``
        return False
    return True


@register
class ExceptHygieneRule(Rule):
    id = "R006"
    name = "bare-except"
    description = "bare except clauses and silent except-pass handlers"

    def check(self, ctx: FileContext,
              project: ProjectIndex) -> Iterator[Violation]:
        allowlist = ctx.config.except_pass_allowlist
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Violation(
                    path=ctx.path, line=node.lineno, col=node.col_offset,
                    rule=self.id,
                    message=("bare 'except:' catches SystemExit and "
                             "KeyboardInterrupt; name the exceptions "
                             "this stage can actually handle"))
                continue
            if _body_is_silent(node.body):
                names = _exception_names(node)
                if names and names <= allowlist:
                    continue  # optional-dependency gating idiom
                caught = ", ".join(sorted(names)) or "<dynamic>"
                yield Violation(
                    path=ctx.path, line=node.lineno, col=node.col_offset,
                    rule=self.id,
                    message=(f"handler for {caught} swallows the error "
                             "with 'pass'; downstream stages would see "
                             "silently-partial state"))
