"""R016 compact-bypass.

PR "compact graph core" gave the matching and truss kernels a frozen
CSR view (:meth:`repro.graph.graph.Graph.compact`): interned label
tables, offset/neighbor arrays, slice-based scans.  Once a function
has taken that view for a graph, going back to the dict-of-dict
adjacency on the *same* graph — ``graph.neighbors(...)`` calls,
``graph.adjacency_sets()``, or reaching into the private ``._adj``
store — silently mixes the two representations: the dict access
rebuilds per-node hash sets the CSR arrays already encode, and the
mixed code path is exactly the kind of half-migrated hot loop the
compact core was introduced to eliminate.  Scoped like R008 to files
under a ``matching`` or ``truss`` package directory, and per function:
only graphs whose ``.compact()`` is taken inside the function are
constrained, so pattern-side ``neighbors()`` iteration next to a
target-side compact view stays allowed, as do the legacy kernel and
the rescan oracle (which never take a compact view).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from reprolint.registry import Rule, register
from reprolint.runner import FileContext, ProjectIndex
from reprolint.violations import Violation

from reprolint.rules.r008_hot_loop_adjacency import _in_hot_package

#: Graph methods that route through the dict-of-dict adjacency store.
DICT_PATH_CALLS = frozenset({"neighbors", "adjacency_sets"})


def _expr_key(node: ast.AST) -> str:
    """Structural key for a base expression (``g``, ``self.target``)."""
    return ast.dump(node)


def _compacted_bases(func: ast.AST) -> Set[str]:
    """Bases whose ``.compact()`` is called anywhere in the function."""
    bases: Set[str] = set()
    for node in ast.walk(func):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "compact"
                and not node.args and not node.keywords):
            bases.add(_expr_key(node.func.value))
    return bases


@register
class CompactBypassRule(Rule):
    id = "R016"
    name = "compact-bypass"
    description = ("dict-of-dict neighbor access (neighbors()/"
                   "adjacency_sets()/._adj) on a graph whose compact "
                   "view is in scope, inside matching/truss kernels")

    def check(self, ctx: FileContext,
              project: ProjectIndex) -> Iterator[Violation]:
        if not _in_hot_package(ctx.path):
            return
        seen: Set[int] = set()
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            bases = _compacted_bases(func)
            if not bases:
                continue
            for node in ast.walk(func):
                if id(node) in seen:
                    continue  # already flagged via an enclosing def
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in DICT_PATH_CALLS
                        and _expr_key(node.func.value) in bases):
                    seen.add(id(node))
                    yield self._violation(
                        ctx, node,
                        f".{node.func.attr}(...) on a graph whose "
                        "compact() view this function already holds; "
                        "scan the CSR slice / label table instead")
                elif (isinstance(node, ast.Attribute)
                        and node.attr == "_adj"
                        and _expr_key(node.value) in bases):
                    seen.add(id(node))
                    yield self._violation(
                        ctx, node,
                        "._adj access on a graph whose compact() view "
                        "this function already holds; use the CSR "
                        "arrays instead")

    def _violation(self, ctx: FileContext, node: ast.AST,
                   message: str) -> Violation:
        return Violation(path=ctx.path, line=node.lineno,
                         col=node.col_offset, rule=self.id,
                         message=message)
