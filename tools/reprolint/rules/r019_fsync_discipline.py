"""R019 fsync-discipline.

PR "durable graph store" made ``src/repro/store/`` the one place in
the tree that promises crash durability: WAL records are fsync'd
before MIDAS applies them, segments and manifests go through
write-temp → fsync → ``os.replace``.  That promise is easy to erode
— a ``handle.write(...)`` without a matching ``os.fsync`` leaves the
bytes in the page cache, and an ``os.replace`` *before* the fsync
publishes a name whose contents may still be lost to a crash.  Both
failure modes pass every test on a healthy filesystem, which is why
they get a lint rule instead of (only) a test.

Scoped like R008/R016 to files under a ``store`` package directory,
and per function:

* a function that calls ``<handle>.write(...)`` must also call
  ``os.fsync(...)`` (or the store's ``fsync_dir`` helper) before it
  returns;
* a function that both writes and renames (``os.replace`` /
  ``os.rename``) must fsync *before* the first rename — rename is
  the publication point, and publishing un-synced bytes is exactly
  the torn-manifest bug the atomic-write protocol exists to prevent.

Nested functions are analysed independently: an inner closure's
fsync does not excuse its enclosing function's bare write.
"""

from __future__ import annotations

import ast
import os
from typing import Iterator, List, Tuple

from reprolint.registry import Rule, register
from reprolint.runner import FileContext, ProjectIndex
from reprolint.violations import Violation

#: Directory components that put a file in scope.
STORE_PACKAGES = frozenset({"store"})

#: Rename spellings that publish a file under its durable name.
RENAME_ATTRS = frozenset({"replace", "rename"})

#: Helper names accepted as an fsync (the store's directory-entry
#: flush helper calls ``os.fsync`` internally).
FSYNC_HELPERS = frozenset({"fsync_dir"})


def _in_store_package(path: str) -> bool:
    """True when the file lives in a ``store`` package directory."""
    normalized = os.path.normpath(path).replace(os.sep, "/")
    return bool(STORE_PACKAGES & set(normalized.split("/")[:-1]))


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Nodes of ``func`` excluding nested function bodies."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_write(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "write")


def _is_fsync(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "fsync":
        return True
    if isinstance(func, ast.Name) and func.id in FSYNC_HELPERS:
        return True
    return (isinstance(func, ast.Attribute)
            and func.attr in FSYNC_HELPERS)


def _is_rename(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in RENAME_ATTRS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "os")


def _classify(func: ast.AST) -> Tuple[List[ast.AST], List[ast.AST],
                                      List[ast.AST]]:
    """(writes, fsyncs, renames) call nodes owned by ``func``."""
    writes: List[ast.AST] = []
    fsyncs: List[ast.AST] = []
    renames: List[ast.AST] = []
    for node in _own_nodes(func):
        if _is_write(node):
            writes.append(node)
        elif _is_fsync(node):
            fsyncs.append(node)
        elif _is_rename(node):
            renames.append(node)
    return writes, fsyncs, renames


@register
class FsyncDisciplineRule(Rule):
    id = "R019"
    name = "fsync-discipline"
    description = ("store-package function writes to a handle "
                   "without os.fsync, or renames before fsyncing; "
                   "durable writes must flush+fsync before "
                   "rename/return")

    def check(self, ctx: FileContext,
              project: ProjectIndex) -> Iterator[Violation]:
        if not _in_store_package(ctx.path):
            return
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            writes, fsyncs, renames = _classify(func)
            if not writes:
                continue
            if not fsyncs:
                first = min(writes, key=lambda n: (n.lineno,
                                                   n.col_offset))
                yield Violation(
                    path=ctx.path, line=first.lineno,
                    col=first.col_offset, rule=self.id,
                    message=(f"{func.name}() writes to a handle "
                             "without ever calling os.fsync(); "
                             "buffered bytes are lost to a crash — "
                             "flush + fsync before returning"))
                continue
            if not renames:
                continue
            first_rename = min(renames,
                               key=lambda n: (n.lineno, n.col_offset))
            first_fsync = min(fsyncs,
                              key=lambda n: (n.lineno, n.col_offset))
            if first_fsync.lineno > first_rename.lineno:
                yield Violation(
                    path=ctx.path, line=first_rename.lineno,
                    col=first_rename.col_offset, rule=self.id,
                    message=(f"{func.name}() renames before "
                             "fsyncing; os.replace publishes the "
                             "file, so the temp's bytes must be "
                             "fsync'd first"))
