"""R005 public-api-needs-rng-param.

The determinism contract is transitive: if a public function leans on a
randomized helper, callers can only reproduce its output if the public
function itself exposes seeding.  The dangerous link in that chain is a
call that *omits* an optional ``rng``/``seed`` argument — the helper
falls back to its default stream and the caller has no way to redirect
it.  (Required rng parameters cannot be omitted without a TypeError, so
only optional ones are indexed.)

Enforced link by link, this yields the transitive closure: a helper
with an ``rng`` parameter is itself rng-consuming, so *its* public
callers face the same check in turn.

The collect phase indexes, project-wide, every function definition with
an optional parameter named in ``LintConfig.rng_param_names``; the
check phase flags calls to those functions that drop the argument from
inside a public function which exposes no rng/seed parameter of its
own.  Calls from private helpers (``_name``) are trusted — their public
entry points are checked instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Union

from reprolint.registry import Rule, register
from reprolint.runner import (
    FileContext,
    ProjectIndex,
    RngFunctionFact,
)
from reprolint.violations import Violation

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _rng_param_fact(node: _FunctionNode, path: str, qualname: str,
                    rng_names: tuple) -> Optional[RngFunctionFact]:
    args = node.args
    positional = args.posonlyargs + args.args
    first_default = len(positional) - len(args.defaults)
    for index, arg in enumerate(positional):
        if arg.arg in rng_names and index >= first_default:
            method_like = bool(positional) and positional[0].arg in (
                "self", "cls")
            return RngFunctionFact(qualname=qualname, path=path,
                                   param=arg.arg, index=index,
                                   method_like=method_like)
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if arg.arg in rng_names and default is not None:
            return RngFunctionFact(qualname=qualname, path=path,
                                   param=arg.arg, index=-1,
                                   method_like=False)
    return None


def _has_rng_param(node: _FunctionNode, rng_names: tuple) -> bool:
    args = node.args
    every = args.posonlyargs + args.args + args.kwonlyargs
    return any(arg.arg in rng_names for arg in every)


def _call_supplies_rng(call: ast.Call, fact: RngFunctionFact) -> bool:
    for kw in call.keywords:
        if kw.arg is None or kw.arg == fact.param:
            return True  # explicit keyword or **kwargs forwarding
    if any(isinstance(arg, ast.Starred) for arg in call.args):
        return True  # *args forwarding — benefit of the doubt
    if fact.index < 0:
        return False  # keyword-only rng, not supplied
    effective = fact.index
    if fact.method_like and isinstance(call.func, ast.Attribute):
        effective -= 1  # bound call: self already supplied
    return len(call.args) > effective


@register
class PublicRngRule(Rule):
    id = "R005"
    name = "public-api-needs-rng-param"
    description = ("public functions calling rng-consuming helpers must "
                   "expose rng/seed themselves")

    def collect(self, ctx: FileContext, project: ProjectIndex) -> None:
        rng_names = tuple(ctx.config.rng_param_names)

        class Collector(ast.NodeVisitor):
            def __init__(self) -> None:
                self.stack: List[str] = []

            def _visit_function(self, node: _FunctionNode) -> None:
                qualname = ".".join(self.stack + [node.name])
                fact = _rng_param_fact(node, ctx.path, qualname, rng_names)
                if fact is not None:
                    project.add_rng_function(fact)
                self.stack.append(node.name)
                self.generic_visit(node)
                self.stack.pop()

            visit_FunctionDef = _visit_function
            visit_AsyncFunctionDef = _visit_function

            def visit_ClassDef(self, node: ast.ClassDef) -> None:
                self.stack.append(node.name)
                self.generic_visit(node)
                self.stack.pop()

        Collector().visit(ctx.tree)

    def check(self, ctx: FileContext,
              project: ProjectIndex) -> Iterator[Violation]:
        rng_names = tuple(ctx.config.rng_param_names)
        rule = self
        found: List[Violation] = []

        class Checker(ast.NodeVisitor):
            def __init__(self) -> None:
                self.func_stack: List[_FunctionNode] = []

            def _visit_function(self, node: _FunctionNode) -> None:
                self.func_stack.append(node)
                self.generic_visit(node)
                self.func_stack.pop()

            visit_FunctionDef = _visit_function
            visit_AsyncFunctionDef = _visit_function

            def visit_Call(self, node: ast.Call) -> None:
                self.generic_visit(node)
                name = ""
                if isinstance(node.func, ast.Name):
                    name = node.func.id
                elif isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                facts = project.rng_functions.get(name)
                if not facts or not self.func_stack:
                    return
                caller = self.func_stack[-1]
                if caller.name.startswith("_"):
                    return  # private helper; its public callers are checked
                if any(_has_rng_param(f, rng_names)
                       for f in self.func_stack):
                    return  # caller (or an enclosing scope) exposes seeding
                if any(_call_supplies_rng(node, fact) for fact in facts):
                    return
                fact = facts[0]
                found.append(Violation(
                    path=ctx.path, line=node.lineno, col=node.col_offset,
                    rule=rule.id,
                    message=(f"public function '{caller.name}' calls "
                             f"rng-consuming '{name}' without passing "
                             f"'{fact.param}'; expose an rng/seed "
                             "parameter or pass one explicitly")))

        Checker().visit(ctx.tree)
        yield from found
