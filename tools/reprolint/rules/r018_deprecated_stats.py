"""R018 deprecated-stats-endpoint.

PR "pattern-as-a-service" consolidated the observability surface:
:func:`repro.obs.snapshot` is the single documented endpoint for
every counter in the process, and the three historical entry points —
``repro.perf.cache_stats``, ``repro.matching.kernel_stats``, and
``repro.matching.canonical_memo_stats`` — survive only as thin
delegating aliases that raise ``DeprecationWarning``.  This rule
keeps the consolidation from eroding: any *new internal caller* of a
deprecated alias is a violation, so library code (and the service
layer built on it) can only read stats through ``repro.obs``.

Import-aware: only calls that resolve through an import to one of the
deprecated module-level functions fire.  Methods that happen to share
a name — ``CoverageIndex.cache_stats()``, ``Midas.cache_stats()``,
``SetScorer.sim_cache_stats()`` — resolve to local attributes and are
untouched, as are the alias *definitions* themselves (a ``def`` is
not a call) and test files that pin the aliases' continued operation.
"""

from __future__ import annotations

import ast
from typing import Iterator

from reprolint.registry import Rule, register
from reprolint.runner import FileContext, ProjectIndex
from reprolint.violations import Violation

#: The deprecated module-level stats functions.
DEPRECATED_FUNCTIONS = frozenset({
    "cache_stats",
    "kernel_stats",
    "canonical_memo_stats",
})

#: Module segments the deprecated functions are reachable through —
#: their defining modules and the packages that re-export them.  A
#: resolved origin must end in one of these before the function name
#: for the call to count (guards against same-named functions in
#: unrelated modules).
DEFINING_MODULES = frozenset({
    "perf", "cache", "matching", "isomorphism", "canonical",
})

#: Where each deprecated name's data now lives.
REPLACEMENT = "repro.obs.snapshot()['matching']"


def _deprecated_origin(origin: str) -> bool:
    """True when a resolved dotted origin names a deprecated stats
    endpoint (absolute or relative import spelling)."""
    parts = origin.lstrip(".").split(".")
    if not parts or parts[-1] not in DEPRECATED_FUNCTIONS:
        return False
    if len(parts) == 1:
        return True
    return parts[-2] in DEFINING_MODULES


@register
class DeprecatedStatsRule(Rule):
    id = "R018"
    name = "deprecated-stats-endpoint"
    description = ("call to a deprecated stats alias (cache_stats/"
                   "kernel_stats/canonical_memo_stats); read "
                   "repro.obs.snapshot() instead")

    def check(self, ctx: FileContext,
              project: ProjectIndex) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = ctx.resolve(node.func)
            if origin is None or not _deprecated_origin(origin):
                continue
            name = origin.lstrip(".").split(".")[-1]
            yield Violation(
                path=ctx.path, line=node.lineno,
                col=node.col_offset, rule=self.id,
                message=(f"{name}() is a deprecated stats alias; "
                         f"read {REPLACEMENT} instead"))
