"""R002 dependency-hygiene.

DESIGN.md keeps the library a pure-Python + numpy artifact: networkx
and scipy appear only in ``tests/`` as correctness oracles.  An import
sneaking into ``src/`` would make every downstream result depend on a
library whose algorithms this repo exists to reimplement.

Detected spellings: ``import networkx``, ``from scipy import sparse``,
``importlib.import_module("networkx")`` and ``__import__("scipy")``
with a literal module string.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from reprolint.registry import Rule, register
from reprolint.runner import FileContext, ProjectIndex
from reprolint.violations import Violation


def _top_module(dotted: str) -> str:
    return dotted.lstrip(".").split(".")[0]


def _literal_import_target(node: ast.Call,
                           ctx: FileContext) -> Optional[str]:
    """Module name for import_module/__import__ calls, if literal."""
    is_dunder = (isinstance(node.func, ast.Name)
                 and node.func.id == "__import__")
    origin = ctx.resolve(node.func)
    if not is_dunder and origin != "importlib.import_module":
        return None
    if node.args and isinstance(node.args[0], ast.Constant) \
            and isinstance(node.args[0].value, str):
        return node.args[0].value
    return None


@register
class DependencyHygieneRule(Rule):
    id = "R002"
    name = "dependency-hygiene"
    description = ("forbidden third-party imports (networkx/scipy) in "
                   "library code")

    def check(self, ctx: FileContext,
              project: ProjectIndex) -> Iterator[Violation]:
        forbidden = ctx.config.forbidden_imports
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = _top_module(alias.name)
                    if top in forbidden:
                        yield self._violation(ctx, node, top)
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import — always in-package
                    continue
                top = _top_module(node.module or "")
                if top in forbidden:
                    yield self._violation(ctx, node, top)
            elif isinstance(node, ast.Call):
                target = _literal_import_target(node, ctx)
                if target and _top_module(target) in forbidden:
                    yield self._violation(ctx, node, _top_module(target))

    def _violation(self, ctx: FileContext, node: ast.AST,
                   module: str) -> Violation:
        return Violation(
            path=ctx.path, line=node.lineno, col=node.col_offset,
            rule=self.id,
            message=(f"'{module}' is a test-only oracle dependency; "
                     "library code must stay stdlib + numpy"))
