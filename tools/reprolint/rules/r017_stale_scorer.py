"""R017 stale-scorer.

PR "lazy-greedy selection" gave :class:`repro.patterns.selection.
SetScorer` incremental state: ``commit(candidate)`` folds a pattern
into the running per-edge utility map and similarity/load sums, and
``marginal_score(candidate)`` prices the next pattern against that
state.  The stateless ``score(patterns)`` oracle deliberately ignores
all of it — it rebuilds the fold from scratch for exactly the set it
is handed.  Calling ``score()`` on a scorer that has pending commits
is therefore almost always a bug: the caller believes the committed
patterns are included (they are not), or is about to mix two
disagreeing accumulation orders and lose the byte-identity contract
the lazy sweep depends on.  The rule is intra-procedural and keyed by
the receiver expression (``scorer``, ``self._scorer``): inside one
function, any ``<recv>.score(...)`` that appears after a
``<recv>.commit(...)`` with no ``<recv>.reset()`` between them is
flagged.  Event order is source order — ``(lineno, col)`` — which is
conservative for loops (a commit anywhere in a loop body taints later
``score()`` calls in the same function, as it should).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from reprolint.registry import Rule, register
from reprolint.runner import FileContext, ProjectIndex
from reprolint.violations import Violation

#: Scorer methods the state machine tracks, in the roles they play.
COMMIT_ATTR = "commit"
SCORE_ATTR = "score"
RESET_ATTR = "reset"


def _expr_key(node: ast.AST) -> str:
    """Structural key for a receiver expression (``scorer``, ``self.s``)."""
    return ast.dump(node)


def _walk_own(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _scorer_events(func: ast.AST) -> Dict[str, List[Tuple[int, int, str,
                                                          ast.Call]]]:
    """Collect commit/score/reset calls per receiver key, source order."""
    events: Dict[str, List[Tuple[int, int, str, ast.Call]]] = {}
    for node in _walk_own(func):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in (COMMIT_ATTR, SCORE_ATTR,
                                       RESET_ATTR)):
            continue
        key = _expr_key(node.func.value)
        events.setdefault(key, []).append(
            (node.lineno, node.col_offset, node.func.attr, node))
    for seq in events.values():
        seq.sort(key=lambda item: (item[0], item[1]))
    return events


@register
class StaleScorerRule(Rule):
    id = "R017"
    name = "stale-scorer"
    description = ("stateless score() on a scorer after commit() "
                   "without a reset() between — committed state is "
                   "silently ignored by the oracle path")

    def check(self, ctx: FileContext,
              project: ProjectIndex) -> Iterator[Violation]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            for key, seq in _scorer_events(func).items():
                attrs = {attr for _, _, attr, _ in seq}
                if COMMIT_ATTR not in attrs or SCORE_ATTR not in attrs:
                    continue
                committed = False
                for _, _, attr, call in seq:
                    if attr == COMMIT_ATTR:
                        committed = True
                    elif attr == RESET_ATTR:
                        committed = False
                    elif committed:
                        yield Violation(
                            path=ctx.path, line=call.lineno,
                            col=call.col_offset, rule=self.id,
                            message=("stateless .score(...) on a "
                                     "scorer with pending .commit() "
                                     "state; call .reset() first or "
                                     "use marginal_score()/"
                                     "committed_score()"))
