"""R003 uncapped-enumeration.

Subgraph-embedding enumeration is worst-case exponential; DESIGN.md
caps it everywhere (``max_embeddings``) so that interactive VQI paths
stay within latency budget and CATAPULT/TATTOO scoring stays bounded.
A call site that *omits* the cap silently inherits whatever default the
callee chose — or worse, ``None`` — and becomes the one uncapped path
that blows up on the first dense production graph.

The rule is driven by a configurable signature table
(``LintConfig.enumeration_signatures``): each known enumeration entry
point lists the keyword(s) that carry its cap and the positional arity
at which the cap slot is necessarily filled.
"""

from __future__ import annotations

import ast
from typing import Iterator

from reprolint.registry import Rule, register
from reprolint.runner import FileContext, ProjectIndex
from reprolint.violations import Violation


def _terminal_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


@register
class UncappedEnumerationRule(Rule):
    id = "R003"
    name = "uncapped-enumeration"
    description = ("embedding-enumeration calls must pass an explicit "
                   "max_embeddings-style cap")

    def check(self, ctx: FileContext,
              project: ProjectIndex) -> Iterator[Violation]:
        table = ctx.config.enumeration_signatures
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _terminal_name(node.func)
            sig = table.get(name)
            if sig is None:
                continue
            if any(kw.arg is None or kw.arg in sig.cap_keywords
                   for kw in node.keywords):
                continue  # cap keyword present, or **kwargs forwarding
            positional = len(node.args)
            if any(isinstance(arg, ast.Starred) for arg in node.args):
                continue  # *args forwarding — give benefit of the doubt
            if positional >= sig.min_positional:
                continue  # cap slot filled positionally
            caps = " or ".join(f"{kw}=" for kw in sig.cap_keywords)
            yield Violation(
                path=ctx.path, line=node.lineno, col=node.col_offset,
                rule=self.id,
                message=(f"call to '{name}' without an explicit "
                         f"enumeration cap; pass {caps} (enumeration is "
                         "worst-case exponential)"))
