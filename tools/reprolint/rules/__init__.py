"""Rule modules; importing this package registers every rule."""

from reprolint.rules import (  # noqa: F401
    r001_unseeded_rng,
    r002_dependency_hygiene,
    r003_uncapped_enumeration,
    r004_mutable_defaults,
    r005_public_rng,
    r006_except_hygiene,
    r007_centralized_parallelism,
    r008_hot_loop_adjacency,
    r009_stage_span,
    r010_typed_errors,
    r011_cache_invalidation,
    r012_pmap_payload,
    r013_deadline_poll,
    r014_determinism,
    r015_shim_drift,
    r016_compact_bypass,
    r017_stale_scorer,
    r018_deprecated_stats,
    r019_fsync_discipline,
)
