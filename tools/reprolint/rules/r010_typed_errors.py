"""R010 typed-errors.

The resilience layer routes failures by type: the fault-tolerant
executor retries :class:`repro.errors.WorkerFailure`, the anytime
pipelines convert :class:`~repro.errors.BudgetExceeded` into degraded
results, and callers are promised that ``except ReproError`` catches
everything the library raises on purpose.  A raise site that throws a
bare builtin (``ValueError``, ``KeyError``, ``RuntimeError``, ...)
leaks out of that taxonomy: it bypasses the retry/skip policies and
surfaces to users as an anonymous crash instead of a classified,
recoverable failure.

This rule flags ``raise`` statements whose exception is a builtin
exception type (by terminal name, so ``builtins.ValueError`` is caught
too).  Re-raises (bare ``raise``), raising a caught exception object,
and raising project-defined types — including the dual-inheritance
shims :class:`repro.errors.OptionError` (a ``ReproError`` *and* a
``ValueError``) and :class:`repro.errors.UnknownNameError` — are all
fine.  ``NotImplementedError`` is exempt: it is the standard marker
for abstract methods, not an error-path escape hatch.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from reprolint.registry import Rule, register
from reprolint.runner import FileContext, ProjectIndex
from reprolint.violations import Violation

#: Builtin exception types that must not be raised directly; the
#: library's taxonomy (repro.errors) has a typed equivalent for each.
BUILTIN_EXCEPTIONS = frozenset({
    "BaseException", "Exception",
    "ArithmeticError", "AssertionError", "AttributeError",
    "BufferError", "EOFError", "FloatingPointError", "IndexError",
    "KeyError", "LookupError", "MemoryError", "NameError",
    "OverflowError", "RecursionError", "ReferenceError",
    "RuntimeError", "StopAsyncIteration", "StopIteration",
    "SystemError", "TypeError", "UnboundLocalError", "ValueError",
    "ZeroDivisionError",
})


def _raised_name(node: ast.Raise) -> Optional[str]:
    """Terminal name of the raised exception type, if resolvable."""
    exc = node.exc
    if exc is None:  # bare ``raise`` re-raise
        return None
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None


@register
class TypedErrorsRule(Rule):
    id = "R010"
    name = "typed-errors"
    description = ("raise sites must use the repro.errors taxonomy, "
                   "not bare builtin exceptions")

    def check(self, ctx: FileContext,
              project: ProjectIndex) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise):
                continue
            name = _raised_name(node)
            if name is None or name not in BUILTIN_EXCEPTIONS:
                continue
            yield Violation(
                path=ctx.path, line=node.lineno, col=node.col_offset,
                rule=self.id,
                message=(f"raises builtin {name}; use a typed error "
                         "from repro.errors (OptionError, "
                         "UnknownNameError, ...) so retry/degrade "
                         "policies can classify the failure"))
