"""Two-phase lint driver.

Phase 1 parses every target file once (AST + suppression pragmas +
import table) and lets each rule ``collect`` cross-file facts into a
shared :class:`ProjectIndex` — R005 needs to know, project-wide, which
functions accept an optional ``rng`` before it can judge any call site.
Phase 2 runs each rule's ``check`` per file and filters the findings
through suppression pragmas and the rule select/disable sets.
"""

from __future__ import annotations

import ast
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from reprolint.analysis.project import AstCache, ProjectAnalysis
from reprolint.config import LintConfig
from reprolint.registry import Rule, all_rules
from reprolint.suppress import SuppressionIndex
from reprolint.violations import PARSE_ERROR, Violation

_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", "node_modules"}


@dataclass
class FileContext:
    """Everything a rule needs to know about one parsed file."""

    path: str
    source: str
    tree: ast.Module
    config: LintConfig
    suppressions: SuppressionIndex
    #: local name -> dotted origin, e.g. ``{"rnd": "random",
    #: "Random": "random.Random", "choice": "random.choice"}``.
    imports: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, source: str, config: LintConfig,
              tree: Optional[ast.Module] = None) -> "FileContext":
        if tree is None:
            tree = ast.parse(source, filename=path)
        ctx = cls(path=path, source=source, tree=tree, config=config,
                  suppressions=SuppressionIndex.from_source(source))
        ctx.suppressions.attach_statement_spans(tree)
        ctx.imports = _collect_imports(tree)
        return ctx

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Dotted origin of a Name/Attribute expression, if imported.

        ``random.Random`` resolves to ``"random.Random"`` whether it is
        spelled ``random.Random``, ``rnd.Random`` (aliased import) or
        bare ``Random`` (from-import).  Locally defined names resolve
        to ``None``.
        """
        if isinstance(node, ast.Name):
            return self.imports.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None


def _collect_imports(tree: ast.Module) -> Dict[str, str]:
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                # ``import a.b`` binds ``a``; ``import a.b as c`` binds
                # ``c`` to the full dotted path.
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    table[top] = top
        elif isinstance(node, ast.ImportFrom):
            module = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{module}.{alias.name}" if module else alias.name
    return table


@dataclass(frozen=True)
class RngFunctionFact:
    """A function somewhere in the project with an *optional* rng/seed
    parameter — the only kind a caller can silently omit (R005)."""

    qualname: str
    path: str
    param: str
    #: Index of the rng parameter in the positional parameter list.
    index: int
    #: First positional parameter is self/cls, so attribute calls
    #: supply one fewer positional argument.
    method_like: bool


@dataclass
class ProjectIndex:
    """Cross-file facts accumulated during the collect phase."""

    #: terminal function name -> facts for every same-named definition.
    rng_functions: Dict[str, List[RngFunctionFact]] = field(
        default_factory=dict)

    #: Whole-program passes; built by the runner iff an enabled rule
    #: declares a non-empty ``requires``.
    analysis: Optional[ProjectAnalysis] = None

    def add_rng_function(self, fact: RngFunctionFact) -> None:
        name = fact.qualname.rsplit(".", 1)[-1]
        self.rng_functions.setdefault(name, []).append(fact)


@dataclass
class LintResult:
    violations: List[Violation]
    files_checked: int
    rules_run: Tuple[str, ...]
    #: wall seconds per stage: ``parse``, ``pass:<name>`` for each
    #: analysis pass built, and ``rule:<id>`` per rule's check phase.
    #: Surfaced only by ``--stats`` (stderr) — never in reports, so
    #: JSON/SARIF output stays byte-identical across runs.
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield .py files under each path, deterministically ordered."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in _SKIP_DIRS
                                 and not d.startswith("."))
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def lint_paths(paths: Sequence[str],
               config: Optional[LintConfig] = None,
               ast_cache: Optional[AstCache] = None) -> LintResult:
    """Run every enabled rule over every Python file under ``paths``.

    ``ast_cache`` (``--project`` mode) reuses parsed trees for files
    whose content hash matches a previous run; results are identical
    with or without it.
    """
    config = config or LintConfig()
    rules: List[Rule] = [cls() for cls in all_rules()
                         if config.rule_enabled(cls.id)]
    timings: Dict[str, float] = {}

    contexts: List[FileContext] = []
    violations: List[Violation] = []
    files_checked = 0
    started = time.perf_counter()
    for path in iter_python_files(paths):
        files_checked += 1
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast_cache.parse(path, source) if ast_cache else None
            contexts.append(FileContext.parse(path, source, config, tree))
        except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", None) or 1
            violations.append(Violation(
                path=path, line=line, col=0, rule=PARSE_ERROR,
                message=f"file could not be parsed: {exc}"))
    timings["parse"] = time.perf_counter() - started

    project = ProjectIndex()
    needed = sorted({name for rule in rules for name in rule.requires})
    if needed:
        analysis = ProjectAnalysis()
        for ctx in contexts:
            analysis.add_file(ctx.path, ctx.tree)
        analysis.build(needed)
        project.analysis = analysis
        for pass_name, seconds in analysis.pass_timings.items():
            timings[f"pass:{pass_name}"] = seconds

    for rule in rules:
        for ctx in contexts:
            rule.collect(ctx, project)

    for rule in rules:
        started = time.perf_counter()
        for ctx in contexts:
            for violation in rule.check(ctx, project):
                if ctx.suppressions.is_suppressed(violation.rule,
                                                  violation.line):
                    continue
                violations.append(violation)
        timings[f"rule:{rule.id}"] = time.perf_counter() - started

    violations.sort()
    return LintResult(violations=violations, files_checked=files_checked,
                      rules_run=tuple(rule.id for rule in rules),
                      timings=timings)


def lint_source(source: str, path: str = "<string>",
                config: Optional[LintConfig] = None) -> List[Violation]:
    """Lint a source string (unit-test convenience)."""
    config = config or LintConfig()
    ctx = FileContext.parse(path, source, config)
    rules: List[Rule] = [cls() for cls in all_rules()
                         if config.rule_enabled(cls.id)]
    project = ProjectIndex()
    needed = sorted({name for rule in rules for name in rule.requires})
    if needed:
        analysis = ProjectAnalysis()
        analysis.add_file(ctx.path, ctx.tree)
        analysis.build(needed)
        project.analysis = analysis
    for rule in rules:
        rule.collect(ctx, project)
    found: List[Violation] = []
    for rule in rules:
        for violation in rule.check(ctx, project):
            if not ctx.suppressions.is_suppressed(violation.rule,
                                                  violation.line):
                found.append(violation)
    found.sort()
    return found
