"""Violation record shared by every rule and reporter."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

#: Pseudo-rule id used for files that fail to parse.
PARSE_ERROR = "R000"


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: where it is, which contract it breaks, and why.

    Ordering is (path, line, col, rule) so sorted reports group by file
    and read top to bottom.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """``path:line:col: RULE message`` — clickable in most editors."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
