"""Checked-in violation waivers with mandatory expiry.

``lint-baseline.json`` lets a known finding ride while its fix is in
flight without turning the lint gate off.  The design goal is that a
waiver can never quietly become permanent:

* every entry **must** carry an ``expires`` date (``YYYY-MM-DD``) and
  a ``reason`` — entries without either are a config error, not a
  lenient default;
* an expired entry stops waiving (the violation comes back) *and* is
  reported so it gets deleted rather than lingering;
* entries that matched nothing are reported as stale, so the file
  shrinks as fixes land.

Matching is by ``rule`` + ``path`` (normalised, ``/`` separators) +
optional ``line``; omitting ``line`` waives the rule for the whole
file, which survives unrelated edits shifting line numbers.  Nothing
here feeds the report formats — filtering happens before the
reporter runs, so baselined-clean output is byte-identical to
actually-clean output.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from reprolint.violations import Violation

_DATE = re.compile(r"^\d{4}-\d{2}-\d{2}$")

#: Default baseline filename probed by ``--project`` mode.
DEFAULT_BASELINE = "lint-baseline.json"


def _norm(path: str) -> str:
    return os.path.normpath(path).replace(os.sep, "/")


@dataclass(frozen=True)
class BaselineEntry:
    """One waived finding."""

    rule: str
    path: str
    reason: str
    expires: str  # YYYY-MM-DD, lexicographically comparable
    line: Optional[int] = None

    def matches(self, violation: Violation) -> bool:
        if violation.rule != self.rule:
            return False
        if _norm(violation.path) != _norm(self.path):
            return False
        return self.line is None or violation.line == self.line

    def expired(self, today: str) -> bool:
        return self.expires < today

    def describe(self) -> str:
        where = self.path if self.line is None \
            else f"{self.path}:{self.line}"
        return f"{self.rule} at {where} (expires {self.expires})"


@dataclass
class BaselineReport:
    """Outcome of filtering one lint result through the baseline."""

    kept: List[Violation] = field(default_factory=list)
    waived: List[Violation] = field(default_factory=list)
    expired: List[BaselineEntry] = field(default_factory=list)
    stale: List[BaselineEntry] = field(default_factory=list)


class Baseline:
    """A parsed waiver file."""

    def __init__(self, entries: List[BaselineEntry]) -> None:
        self.entries = entries

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
        if not isinstance(raw, dict) \
                or not isinstance(raw.get("entries"), list):
            raise ValueError(
                f"{path}: baseline root must be an object with an "
                f"'entries' list")
        entries: List[BaselineEntry] = []
        for index, item in enumerate(raw["entries"]):
            if not isinstance(item, dict):
                raise ValueError(f"{path}: entries[{index}] must be "
                                 f"an object")
            missing = [key for key in ("rule", "path", "reason",
                                       "expires") if key not in item]
            if missing:
                raise ValueError(
                    f"{path}: entries[{index}] missing required "
                    f"key(s): {', '.join(missing)}")
            expires = str(item["expires"])
            if not _DATE.match(expires):
                raise ValueError(
                    f"{path}: entries[{index}].expires must be "
                    f"YYYY-MM-DD, got {expires!r}")
            line = item.get("line")
            if line is not None and not isinstance(line, int):
                raise ValueError(
                    f"{path}: entries[{index}].line must be an "
                    f"integer or omitted")
            entries.append(BaselineEntry(
                rule=str(item["rule"]), path=str(item["path"]),
                reason=str(item["reason"]), expires=expires,
                line=line))
        return cls(entries)

    def apply(self, violations: List[Violation],
              today: str) -> BaselineReport:
        """Split violations into kept/waived; surface dead entries."""
        report = BaselineReport()
        matched: set = set()
        live: List[Tuple[int, BaselineEntry]] = []
        for index, entry in enumerate(self.entries):
            if entry.expired(today):
                report.expired.append(entry)
            else:
                live.append((index, entry))
        for violation in violations:
            waiver = None
            for index, entry in live:
                if entry.matches(violation):
                    waiver = index
                    break
            if waiver is None:
                report.kept.append(violation)
            else:
                matched.add(waiver)
                report.waived.append(violation)
        for index, entry in live:
            if index not in matched:
                report.stale.append(entry)
        return report
