"""Module and symbol table: who defines what, under which dotted name.

The table answers two questions every project rule needs:

* *Given a file, what module is it?*  ``src/repro/graph/graph.py``
  is ``repro.graph.graph`` because ``src/repro`` and ``src/repro/
  graph`` both carry ``__init__.py`` and ``src`` does not.
* *Given a name used in that module, what does it canonically
  refer to?*  ``pmap`` imported via ``from repro.perf import pmap``
  resolves through the re-export in ``repro/perf/__init__.py`` to
  the defining symbol ``repro.perf.executor.pmap``.

Resolution is purely syntactic (imports and definitions), which is
exactly the right strength for lint rules: no execution, no
third-party stubs, deterministic output.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def module_name_for_path(path: str) -> str:
    """Dotted module name for a file, by walking up ``__init__.py``.

    Files outside any package resolve to their bare stem, which keeps
    single-file fixtures addressable.
    """
    path = os.path.normpath(os.path.abspath(path))
    directory, filename = os.path.split(path)
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts: List[str] = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.insert(0, package)
    return ".".join(parts) if parts else stem


def _resolve_relative(module: str, level: int, target: str) -> str:
    """Absolute module for ``from ...target import x`` inside ``module``.

    ``level`` dots climb from the *package* containing ``module``
    (one level = the current package).
    """
    parts = module.split(".")
    # drop the module's own name, then level-1 more packages
    keep = len(parts) - level
    if keep < 0:
        keep = 0
    base = parts[:keep]
    if target:
        base.append(target)
    return ".".join(base)


@dataclass
class FunctionSymbol:
    """One function or method definition in the project."""

    #: Fully dotted: ``repro.graph.graph.Graph.add_node``.
    dotted: str
    module: str
    qualname: str  # module-relative, e.g. ``Graph.add_node``
    path: str
    node: ast.AST
    #: Enclosing class dotted name for methods, else None.
    owner_class: Optional[str] = None
    #: Depth of *function* nesting (0 = module level or plain method).
    nesting: int = 0

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def is_method(self) -> bool:
        return self.owner_class is not None

    @property
    def is_nested(self) -> bool:
        return self.nesting > 0


@dataclass
class ClassSymbol:
    """One class definition plus its method and attribute surface."""

    dotted: str
    module: str
    qualname: str
    path: str
    node: ast.ClassDef
    #: method name -> dotted function symbol name
    methods: Dict[str, str] = field(default_factory=dict)
    #: attributes assigned as ``self.X`` anywhere in the class body
    attributes: Tuple[str, ...] = ()
    #: base-class names as written (resolved lazily by callers)
    bases: Tuple[str, ...] = ()


@dataclass
class ModuleInfo:
    """Everything the table knows about one parsed file."""

    name: str
    path: str
    tree: ast.Module
    #: local name -> absolute dotted target (imports only)
    imports: Dict[str, str] = field(default_factory=dict)
    #: module-level binding name -> dotted symbol defined here
    definitions: Dict[str, str] = field(default_factory=dict)


class SymbolTable:
    """Project-wide map from dotted names to definitions.

    Build once from parsed files, then resolve names with
    :meth:`resolve` (module-local name -> canonical dotted symbol)
    or look up definitions with :meth:`function` / :meth:`cls`.
    """

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.modules_by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionSymbol] = {}
        self.classes: Dict[str, ClassSymbol] = {}
        #: terminal method/function name -> dotted symbols sharing it
        self.by_terminal_name: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_file(self, path: str, tree: ast.Module) -> ModuleInfo:
        name = module_name_for_path(path)
        info = ModuleInfo(name=name, path=path, tree=tree)
        # Relative imports climb from the *package*: a plain module
        # drops its own leaf first, but a package __init__ has no
        # leaf, so anchor it at a synthetic one to keep
        # _resolve_relative's arithmetic uniform.
        anchor = f"{name}.__init__" \
            if os.path.basename(path) == "__init__.py" else name
        info.imports = self._collect_imports(anchor, tree)
        self._collect_definitions(info)
        self.modules[name] = info
        self.modules_by_path[os.path.normpath(path)] = info
        return info

    @staticmethod
    def _collect_imports(module: str, tree: ast.Module) -> Dict[str, str]:
        table: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        table[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".")[0]
                        table[top] = top
            elif isinstance(node, ast.ImportFrom):
                target = (_resolve_relative(module, node.level,
                                            node.module or "")
                          if node.level else (node.module or ""))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    table[local] = (f"{target}.{alias.name}"
                                    if target else alias.name)
        return table

    def _collect_definitions(self, info: ModuleInfo) -> None:
        table = self

        class Collector(ast.NodeVisitor):
            def __init__(self) -> None:
                self.stack: List[str] = []
                self.class_stack: List[ClassSymbol] = []
                self.func_depth = 0

            def _register_function(self, node) -> None:
                qualname = ".".join(self.stack + [node.name])
                dotted = f"{info.name}.{qualname}"
                owner = (self.class_stack[-1].dotted
                         if self.class_stack and not self.func_depth
                         else None)
                symbol = FunctionSymbol(
                    dotted=dotted, module=info.name, qualname=qualname,
                    path=info.path, node=node, owner_class=owner,
                    nesting=self.func_depth)
                table.functions[dotted] = symbol
                table.by_terminal_name.setdefault(
                    node.name, []).append(dotted)
                if owner is not None:
                    self.class_stack[-1].methods[node.name] = dotted
                if not self.stack:
                    info.definitions[node.name] = dotted
                self.stack.append(node.name)
                self.func_depth += 1
                self.generic_visit(node)
                self.func_depth -= 1
                self.stack.pop()

            visit_FunctionDef = _register_function
            visit_AsyncFunctionDef = _register_function

            def visit_ClassDef(self, node: ast.ClassDef) -> None:
                qualname = ".".join(self.stack + [node.name])
                dotted = f"{info.name}.{qualname}"
                bases = tuple(
                    b for b in (_dotted_of(base) for base in node.bases)
                    if b)
                symbol = ClassSymbol(dotted=dotted, module=info.name,
                                     qualname=qualname, path=info.path,
                                     node=node, bases=bases)
                table.classes[dotted] = symbol
                if not self.stack:
                    info.definitions[node.name] = dotted
                self.stack.append(node.name)
                self.class_stack.append(symbol)
                self.generic_visit(node)
                symbol.attributes = tuple(sorted(
                    _self_attribute_writes(node)))
                self.class_stack.pop()
                self.stack.pop()

            def visit_Assign(self, node: ast.Assign) -> None:
                if not self.stack:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            info.definitions.setdefault(
                                target.id, f"{info.name}.{target.id}")
                self.generic_visit(node)

        Collector().visit(info.tree)

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(self, module: str, name: str,
                _depth: int = 0) -> Optional[str]:
        """Canonical dotted symbol for ``name`` used inside ``module``.

        Follows import chains (including package re-exports) up to a
        fixed depth; returns the deepest known definition, the dotted
        import target when the definition is outside the project, or
        None for local/unknown names.
        """
        if _depth > 8:
            return None
        info = self.modules.get(module)
        if info is None:
            return None
        head, _, rest = name.partition(".")
        target: Optional[str] = None
        if head in info.definitions:
            target = info.definitions[head]
        elif head in info.imports:
            target = info.imports[head]
        if target is None:
            return None
        dotted = f"{target}.{rest}" if rest else target
        return self.canonical(dotted, _depth + 1)

    def canonical(self, dotted: str, _depth: int = 0) -> str:
        """Follow re-export chains to the defining symbol.

        ``repro.perf.pmap`` (a ``from .executor import pmap`` in the
        package ``__init__``) canonicalises to
        ``repro.perf.executor.pmap``.
        """
        if _depth > 8 or dotted in self.functions \
                or dotted in self.classes:
            return dotted
        module, _, leaf = dotted.rpartition(".")
        if not module or not leaf:
            return dotted
        info = self.modules.get(module)
        if info is None:
            return dotted
        if leaf in info.definitions:
            return self.canonical(info.definitions[leaf], _depth + 1)
        if leaf in info.imports:
            return self.canonical(info.imports[leaf], _depth + 1)
        return dotted

    def resolve_call(self, module: str,
                     func: ast.expr) -> Optional[str]:
        """Canonical dotted target of a call expression's function.

        Handles ``name(...)``, ``pkg.attr(...)`` and chained
        attributes rooted in an imported or module-level name.
        Calls rooted in local variables resolve to None.
        """
        parts = _dotted_of(func)
        if not parts:
            return None
        return self.resolve(module, parts)

    def function(self, dotted: str) -> Optional[FunctionSymbol]:
        return self.functions.get(dotted)

    def cls(self, dotted: str) -> Optional[ClassSymbol]:
        return self.classes.get(dotted)

    def functions_named(self, terminal: str) -> List[FunctionSymbol]:
        """Every project function whose terminal name matches."""
        return [self.functions[d]
                for d in self.by_terminal_name.get(terminal, ())]

    def module_for_path(self, path: str) -> Optional[ModuleInfo]:
        return self.modules_by_path.get(os.path.normpath(path))


def _dotted_of(node: ast.expr) -> str:
    """``a.b.c`` for a Name/Attribute chain, else ``""``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _self_attribute_writes(cls: ast.ClassDef) -> List[str]:
    """Attribute names assigned as ``self.X`` anywhere in the class."""
    found = set()
    for node in ast.walk(cls):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                found.add(target.attr)
    return sorted(found)


def dotted_expression(node: ast.expr) -> str:
    """Public alias for the Name/Attribute chain formatter."""
    return _dotted_of(node)
