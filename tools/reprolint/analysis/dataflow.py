"""Intra-procedural dataflow: def-use, mutation, escape, path cover.

Four small analyses over one function body, shared by the project
rules:

* :func:`def_use` — for every local name, the statements that bind
  it and the expressions that read it (a lightweight def-use chain;
  flow-insensitive, which is sufficient for "was this name ever
  bound to X" questions).
* :func:`attribute_mutations` — every statement that mutates
  ``<owner>.<attr>`` state: direct/augmented/subscript assignment,
  ``del``, and calls to known in-place methods (``update``, ``pop``,
  ``append``, ...), including one level through a subscript
  (``self._views[1]["x"] = ...``).
* :func:`closure_captures` — names a nested ``def``/``lambda``
  captures from the enclosing function's scope (the "escapes to
  closure" facts R012 needs).
* :func:`mutations_missing_restore` — an all-paths walker: given a
  *mutation* predicate and a *restore* predicate, report mutations
  that can reach a normal exit (``return`` or fall-through) with no
  restore statement in between.  Branches are walked independently;
  loop bodies are treated as executing at least zero times; ``raise``
  exits are exempt (an invariant-restoring counter is meaningless on
  an aborted operation).  This is deliberately an approximation — it
  is path-sensitive for if/elif/else and try/except, and
  conservative for loops.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Method names that mutate their receiver in place (dict/list/set).
INPLACE_METHODS = frozenset({
    "add", "append", "clear", "discard", "extend", "insert", "pop",
    "popitem", "remove", "setdefault", "sort", "reverse", "update",
    "__setitem__", "__delitem__",
})

#: In-place methods that are *reads with a default* rather than
#: logical state changes; rules may treat them separately.
READLIKE_METHODS = frozenset({"setdefault"})


# ----------------------------------------------------------------------
# def-use chains
# ----------------------------------------------------------------------
@dataclass
class NameFlow:
    """Where one local name is bound and read inside a function."""

    name: str
    #: every expression assigned to the name (RHS of ``name = expr``,
    #: or None for for-targets / with-targets / parameters
    bindings: List[Optional[ast.expr]] = field(default_factory=list)
    #: every Name node that loads the value
    reads: List[ast.Name] = field(default_factory=list)


class FunctionDataflow:
    """Def-use chains for one function body (nested scopes excluded)."""

    def __init__(self, func: _FunctionNode) -> None:
        self.func = func
        self.names: Dict[str, NameFlow] = {}
        args = func.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])):
            self._flow(arg.arg).bindings.append(None)
        for node in shallow_walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._bind_target(target, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._bind_target(node.target, node.value)
            elif isinstance(node, ast.AugAssign):
                self._bind_target(node.target, node.value)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._bind_target(node.target, None)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        self._bind_target(item.optional_vars, None)
            elif isinstance(node, ast.Name) \
                    and isinstance(node.ctx, ast.Load):
                self._flow(node.id).reads.append(node)

    def _flow(self, name: str) -> NameFlow:
        if name not in self.names:
            self.names[name] = NameFlow(name)
        return self.names[name]

    def _bind_target(self, target: ast.expr,
                     value: Optional[ast.expr]) -> None:
        if isinstance(target, ast.Name):
            self._flow(target.id).bindings.append(value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, None)

    def bindings_of(self, name: str) -> List[Optional[ast.expr]]:
        flow = self.names.get(name)
        return list(flow.bindings) if flow else []


def def_use(func: _FunctionNode) -> FunctionDataflow:
    return FunctionDataflow(func)


def shallow_walk(func: ast.AST):
    """Walk a function body without entering nested def/lambda/class."""
    pending = list(getattr(func, "body", []))
    while pending:
        node = pending.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        pending.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# attribute mutations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AttributeMutation:
    """One statement mutating ``<owner>.<attr>``."""

    attr: str
    node: ast.AST
    #: "assign" | "augassign" | "delete" | "subscript" | method name
    kind: str


def _owner_attr(expr: ast.expr, owner: str) -> Optional[str]:
    """``attr`` when expr is ``<owner>.attr`` (one subscript deep)."""
    if isinstance(expr, ast.Subscript):
        expr = expr.value
    if isinstance(expr, ast.Attribute) \
            and isinstance(expr.value, ast.Name) \
            and expr.value.id == owner:
        return expr.attr
    return None


def attribute_mutations(func: _FunctionNode, owner: str = "self"
                        ) -> List[AttributeMutation]:
    """Every shallow statement that mutates ``<owner>.<attr>``."""
    found: List[AttributeMutation] = []
    for node in shallow_walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = _owner_attr(target, owner)
                if attr:
                    kind = ("subscript"
                            if isinstance(target, ast.Subscript)
                            else "assign")
                    found.append(AttributeMutation(attr, node, kind))
        elif isinstance(node, ast.AugAssign):
            attr = _owner_attr(node.target, owner)
            if attr:
                found.append(AttributeMutation(attr, node, "augassign"))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _owner_attr(target, owner)
                if attr:
                    found.append(AttributeMutation(attr, node, "delete"))
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in INPLACE_METHODS:
            attr = _owner_attr(node.func.value, owner)
            if attr:
                found.append(AttributeMutation(attr, node,
                                               node.func.attr))
    found.sort(key=lambda m: (m.node.lineno, m.node.col_offset, m.attr))
    return found


# ----------------------------------------------------------------------
# escape to closure
# ----------------------------------------------------------------------
def closure_captures(func: _FunctionNode
                     ) -> List[Tuple[ast.AST, Tuple[str, ...]]]:
    """Nested functions/lambdas and the enclosing names they capture.

    Returns ``[(nested_node, captured_names), ...]`` where
    ``captured_names`` are names read by the nested scope that are
    bound in the *enclosing* function (parameters or locals) — the
    classic unpicklable-closure shape.
    """
    outer = FunctionDataflow(func)
    outer_names = set(outer.names)
    results: List[Tuple[ast.AST, Tuple[str, ...]]] = []
    for node in shallow_walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            captured = _free_reads(node) & outer_names
            results.append((node, tuple(sorted(captured))))
    results.sort(key=lambda pair: (pair[0].lineno,
                                   pair[0].col_offset))
    return results


def _free_reads(nested: ast.AST) -> Set[str]:
    """Names the nested scope reads but does not bind itself."""
    bound: Set[str] = set()
    args = getattr(nested, "args", None)
    if args is not None:
        for arg in (args.posonlyargs + args.args + args.kwonlyargs
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])):
            bound.add(arg.arg)
    reads: Set[str] = set()
    body = nested.body if isinstance(nested.body, list) \
        else [nested.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Store):
                    bound.add(node.id)
                elif isinstance(node.ctx, ast.Load):
                    reads.add(node.id)
    return reads - bound


# ----------------------------------------------------------------------
# all-paths invariant restoration
# ----------------------------------------------------------------------
class _PathState:
    """Pending (un-restored) mutation statements along one path."""

    __slots__ = ("pending", "terminated")

    def __init__(self) -> None:
        self.pending: List[ast.AST] = []
        self.terminated = False

    def fork(self) -> "_PathState":
        twin = _PathState()
        twin.pending = list(self.pending)
        return twin


def mutations_missing_restore(
        func: _FunctionNode,
        mutates: Callable[[ast.stmt], List[ast.AST]],
        restores: Callable[[ast.stmt], bool]) -> List[ast.AST]:
    """Mutation statements that can reach exit without a restore.

    ``mutates(stmt)`` returns the mutation nodes a statement
    performs (often the statement itself); ``restores(stmt)`` is True
    for statements that re-establish the invariant (e.g. a version
    bump).  Both callbacks are consulted for *every* statement,
    including compound ones whose bodies this walker explores itself —
    they must match simple statements only, or mutations inside
    branches would be double-counted.  A mutation is *cleared* by a
    later restore on the same path; paths ending in ``raise`` are
    exempt.
    """
    leaked: List[ast.AST] = []
    seen_ids: Set[int] = set()

    def leak(nodes: List[ast.AST]) -> None:
        for node in nodes:
            if id(node) not in seen_ids:
                seen_ids.add(id(node))
                leaked.append(node)

    def walk_block(stmts: List[ast.stmt],
                   state: _PathState) -> _PathState:
        for stmt in stmts:
            if state.terminated:
                break
            state = walk_stmt(stmt, state)
        return state

    def merge(states: List[_PathState]) -> _PathState:
        merged = _PathState()
        live = [s for s in states if not s.terminated]
        if not live:
            merged.terminated = True
            return merged
        seen_local: Set[int] = set()
        for branch_state in live:
            for node in branch_state.pending:
                if id(node) not in seen_local:
                    seen_local.add(id(node))
                    merged.pending.append(node)
        return merged

    def walk_stmt(stmt: ast.stmt, state: _PathState) -> _PathState:
        if restores(stmt):
            state.pending = []
            return state
        state.pending.extend(mutates(stmt))
        if isinstance(stmt, ast.Return):
            leak(state.pending)
            state.terminated = True
            return state
        if isinstance(stmt, ast.Raise):
            # error-abort path: invariant restoration not required
            state.pending = []
            state.terminated = True
            return state
        if isinstance(stmt, ast.If):
            then = walk_block(stmt.body, state.fork())
            other = walk_block(stmt.orelse, state.fork())
            return merge([then, other])
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            # body runs 0+ times; a restore inside the loop clears
            # same-iteration mutations, the zero-iteration path keeps
            # the incoming state
            once = walk_block(stmt.body, state.fork())
            after = merge([state.fork(), once])
            return walk_block(stmt.orelse, after)
        if isinstance(stmt, ast.Try):
            tried = walk_block(stmt.body, state.fork())
            branches = [tried]
            for handler in stmt.handlers:
                branches.append(walk_block(handler.body, state.fork()))
            merged = merge(branches)
            merged = walk_block(stmt.orelse, merged) \
                if stmt.orelse and not merged.terminated else merged
            if stmt.finalbody:
                merged = walk_block(stmt.finalbody, merged)
            return merged
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return walk_block(stmt.body, state)
        return state

    final = walk_block(list(func.body), _PathState())
    if not final.terminated:
        leak(final.pending)  # fall-through exit
    leaked.sort(key=lambda n: (n.lineno, n.col_offset))
    return leaked
