"""Whole-program analysis core for reprolint.

The per-file rules R001–R010 judge one AST at a time; the project
rules R011–R015 need facts that span modules: *which function is this
name, really* (symbol table), *what can run when this stage runs*
(call graph), and *where does this value flow inside a function*
(dataflow).  This package provides exactly those three passes, all
stdlib-only, layered so each rule requests only what it needs:

``modules``
    Path → dotted module name, per-module import resolution (plain,
    ``from``, aliased, relative), and a project-wide symbol table of
    functions, classes, methods, and class attributes.

``callgraph``
    Resolved call edges (plain calls, ``self.``/class-hierarchy
    method calls, ``functools.partial`` references) plus
    interprocedural reachability queries.

``dataflow``
    Intra-procedural def-use chains, ``self.<attr>`` mutation
    tracking, escape-to-closure detection, and an "is the invariant
    restored on every path to exit" walker.

``project``
    The :class:`~reprolint.analysis.project.ProjectAnalysis` facade
    that owns all passes, builds each at most once per lint run, and
    caches parsed ASTs on disk keyed by source content hash.
"""

from reprolint.analysis.modules import (  # noqa: F401
    ModuleInfo,
    SymbolTable,
    module_name_for_path,
)
from reprolint.analysis.callgraph import CallGraph  # noqa: F401
from reprolint.analysis.dataflow import (  # noqa: F401
    FunctionDataflow,
    attribute_mutations,
    closure_captures,
    mutations_missing_restore,
)
from reprolint.analysis.project import (  # noqa: F401
    ANALYSIS_PASSES,
    ProjectAnalysis,
)
