"""Call graph with interprocedural reachability.

Edges are collected per function definition from three syntactic
shapes, in decreasing confidence:

* **Resolved calls** — ``f(...)`` / ``mod.f(...)`` where the callee
  resolves through the symbol table to a project definition (or to
  an external dotted name, kept as a leaf so rules can match
  contract sets like ``{"time.time"}``).
* **Method calls** — ``self.m(...)`` binds to the enclosing class's
  (or, conservatively, any base/derived sharing the method name);
  ``obj.m(...)`` on an unknown receiver uses class-hierarchy-style
  name matching: an edge to *every* project method named ``m``.
  Over-approximate by design — reachability rules must never miss a
  real path.
* **References** — ``functools.partial(f, ...)``, bare ``f`` passed
  as an argument (e.g. the worker handed to ``pmap``), and
  decorators.  A referenced function is assumed callable from the
  referencing one.

The graph is deterministic: edges are stored sorted, reachability is
a plain BFS over sorted adjacency.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from reprolint.analysis.modules import (
    FunctionSymbol,
    SymbolTable,
    dotted_expression,
)

#: Dotted origins of functools.partial under its usual spellings.
_PARTIAL_ORIGINS = frozenset({"functools.partial", "partial"})


class CallGraph:
    """Directed call edges over dotted function names."""

    def __init__(self, symbols: SymbolTable) -> None:
        self.symbols = symbols
        self._edges: Dict[str, List[str]] = {}
        self._reverse: Dict[str, List[str]] = {}
        self._reach_memo: Dict[str, FrozenSet[str]] = {}
        self._build()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def callees(self, dotted: str) -> List[str]:
        """Direct callees (sorted, deduplicated)."""
        return list(self._edges.get(dotted, ()))

    def callers(self, dotted: str) -> List[str]:
        """Direct callers (sorted, deduplicated)."""
        return list(self._reverse.get(dotted, ()))

    def reachable_from(self, roots: Iterable[str],
                       max_depth: Optional[int] = None
                       ) -> FrozenSet[str]:
        """Every dotted name reachable from ``roots`` (inclusive)."""
        seen: Set[str] = set()
        frontier = sorted(set(roots))
        seen.update(frontier)
        depth = 0
        while frontier and (max_depth is None or depth < max_depth):
            next_frontier: List[str] = []
            for name in frontier:
                for callee in self._edges.get(name, ()):
                    if callee not in seen:
                        seen.add(callee)
                        next_frontier.append(callee)
            frontier = sorted(next_frontier)
            depth += 1
        return frozenset(seen)

    def reaches(self, start: str, targets: FrozenSet[str],
                max_depth: Optional[int] = None) -> bool:
        """True when ``start`` can reach any of ``targets``.

        Matches both exact dotted names and dotted prefixes given as
        ``"pkg.mod."`` entries (trailing dot = subtree match).
        Unbounded queries are memoised per start node.
        """
        exact = {t for t in targets if not t.endswith(".")}
        prefixes = tuple(t for t in targets if t.endswith("."))

        def hit(name: str) -> bool:
            if name in exact:
                return True
            return bool(prefixes) and name.startswith(prefixes)

        if hit(start):
            return True
        if max_depth is None:
            closure = self._reach_memo.get(start)
            if closure is None:
                closure = self.reachable_from([start])
                self._reach_memo[start] = closure
        else:
            closure = self.reachable_from([start], max_depth=max_depth)
        return any(hit(name) for name in closure)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        raw: Dict[str, Set[str]] = {}
        for dotted in sorted(self.symbols.functions):
            symbol = self.symbols.functions[dotted]
            raw[dotted] = self._edges_of(symbol)
        self._edges = {name: sorted(targets)
                       for name, targets in raw.items()}
        reverse: Dict[str, Set[str]] = {}
        for caller, callees in self._edges.items():
            for callee in callees:
                reverse.setdefault(callee, set()).add(caller)
        self._reverse = {name: sorted(callers)
                         for name, callers in reverse.items()}

    def _edges_of(self, symbol: FunctionSymbol) -> Set[str]:
        edges: Set[str] = set()
        module = symbol.module
        owner = symbol.owner_class
        node = symbol.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))

        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self._call_edges(child, module, owner, edges)
            elif isinstance(child, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)) \
                    and child is not node:
                # a nested def is callable from its definer
                edges.add(f"{symbol.dotted}.{child.name}")
        for decorator in node.decorator_list:
            target = self._resolve_expr(decorator, module)
            if target:
                edges.add(target)
        return edges

    def _call_edges(self, call: ast.Call, module: str,
                    owner: Optional[str], edges: Set[str]) -> None:
        func = call.func
        # functools.partial(f, ...) — reference edge to f
        origin = self.symbols.resolve_call(module, func) \
            or dotted_expression(func)
        if origin in _PARTIAL_ORIGINS \
                or origin.endswith(".partial") and call.args:
            if call.args:
                target = self._resolve_expr(call.args[0], module)
                if target:
                    edges.add(target)
        # self.m(...) — bind to the enclosing class's method first
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id in ("self", "cls") and owner:
            cls = self.symbols.cls(owner)
            bound = cls.methods.get(func.attr) if cls else None
            if bound:
                edges.add(bound)
                return
        resolved = self.symbols.resolve_call(module, func)
        if resolved is not None:
            edges.add(resolved)
            return
        # obj.m(...) on an unknown receiver: name-match every project
        # method called m (class-hierarchy-analysis flavour)
        if isinstance(func, ast.Attribute):
            for candidate in self.symbols.functions_named(func.attr):
                if candidate.is_method:
                    edges.add(candidate.dotted)

    def _resolve_expr(self, expr: ast.expr,
                      module: str) -> Optional[str]:
        dotted = dotted_expression(expr)
        if not dotted:
            return None
        return self.symbols.resolve(module, dotted) or None
