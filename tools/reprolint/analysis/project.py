"""Project-level analysis facade: one parse, passes built on demand.

:class:`ProjectAnalysis` owns the whole-program passes.  The runner
hands it every parsed file once; rules then request passes by name
through ``Rule.requires`` and the runner builds only the union the
enabled rules actually need (pass scheduling).  Each pass is built at
most once per lint run and timed, so ``--stats`` can attribute lint
wall-clock to passes as well as rules.

The module also hosts the on-disk AST cache used by ``--project``
runs: parsed trees pickled under a cache directory keyed by the
SHA-256 of the source bytes.  Content addressing makes invalidation
automatic (an edited file simply misses) and the cache can never
change lint results — a corrupt or unreadable entry falls back to
``ast.parse``.
"""

from __future__ import annotations

import ast
import hashlib
import os
import pickle
import time
from typing import Dict, Iterable, List, Optional, Tuple

from reprolint.analysis.callgraph import CallGraph
from reprolint.analysis.modules import ModuleInfo, SymbolTable

#: Pass names rules may declare in ``Rule.requires``.
ANALYSIS_PASSES = ("symbols", "callgraph", "dataflow")

#: Cache-format version; bump when the pickled payload shape changes.
_CACHE_VERSION = 1

#: Environment override for the AST cache directory.
CACHE_ENV = "REPROLINT_CACHE_DIR"


class AstCache:
    """Content-hash-keyed on-disk cache of parsed ASTs.

    Warm ``--project`` runs skip re-parsing unchanged files — parsing
    is the dominant cold cost for a ~100-file tree.  Every failure
    mode (missing dir, bad pickle, version skew, read-only disk)
    degrades silently to a fresh parse.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory or os.environ.get(CACHE_ENV) \
            or os.path.join(".", ".reprolint-cache")
        self.hits = 0
        self.misses = 0

    def _entry_path(self, digest: str) -> str:
        return os.path.join(self.directory,
                            f"ast-v{_CACHE_VERSION}-{digest}.pkl")

    @staticmethod
    def digest(source: str) -> str:
        return hashlib.sha256(source.encode("utf-8")).hexdigest()

    def parse(self, path: str, source: str) -> ast.Module:
        """Parse ``source``, through the cache when possible."""
        digest = self.digest(source)
        entry = self._entry_path(digest)
        try:
            with open(entry, "rb") as handle:
                tree = pickle.load(handle)
            if isinstance(tree, ast.Module):
                self.hits += 1
                return tree
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, IndexError):
            pass
        self.misses += 1
        tree = ast.parse(source, filename=path)
        try:
            os.makedirs(self.directory, exist_ok=True)
            tmp = f"{entry}.tmp.{os.getpid()}"
            with open(tmp, "wb") as handle:
                pickle.dump(tree, handle, pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, entry)
        except OSError:
            pass
        return tree


class ProjectAnalysis:
    """All whole-program passes over one set of parsed files."""

    def __init__(self) -> None:
        self._symbols: Optional[SymbolTable] = None
        self._callgraph: Optional[CallGraph] = None
        self._files: List[Tuple[str, ast.Module]] = []
        #: wall seconds spent building each pass
        self.pass_timings: Dict[str, float] = {}

    def add_file(self, path: str, tree: ast.Module) -> None:
        if self._symbols is not None:
            raise RuntimeError("analysis already built; add files "
                               "before requesting passes")
        self._files.append((path, tree))

    @property
    def symbols(self) -> SymbolTable:
        """The module/symbol table (built on first access)."""
        if self._symbols is None:
            started = time.perf_counter()
            table = SymbolTable()
            for path, tree in self._files:
                table.add_file(path, tree)
            self._symbols = table
            self.pass_timings["symbols"] = \
                time.perf_counter() - started
        return self._symbols

    @property
    def callgraph(self) -> CallGraph:
        """The project call graph (built on first access)."""
        if self._callgraph is None:
            symbols = self.symbols
            started = time.perf_counter()
            self._callgraph = CallGraph(symbols)
            self.pass_timings["callgraph"] = \
                time.perf_counter() - started
        return self._callgraph

    def module_for(self, path: str) -> Optional[ModuleInfo]:
        return self.symbols.module_for_path(path)

    def build(self, passes: Iterable[str]) -> None:
        """Eagerly build the requested passes (scheduling hook).

        ``dataflow`` has no global build step — def-use chains are
        per-function and computed by rules on demand — but is kept in
        :data:`ANALYSIS_PASSES` so rules can declare the dependency
        and ``--stats`` reports stay honest about what ran.
        """
        wanted = set(passes)
        unknown = wanted - set(ANALYSIS_PASSES)
        if unknown:
            raise ValueError(
                f"unknown analysis pass(es): {sorted(unknown)}")
        if "symbols" in wanted or "callgraph" in wanted \
                or "dataflow" in wanted:
            self.symbols
        if "callgraph" in wanted:
            self.callgraph
