"""reprolint — AST-based invariant checker for the repro library.

The reproduction commits to three load-bearing contracts (DESIGN.md,
"Design choices"):

1. **Determinism** — every randomized component takes an explicit
   ``random.Random`` seed; nothing reads the shared module-level RNG.
2. **Dependency hygiene** — ``src/`` is pure stdlib + numpy; networkx
   and scipy exist only as test oracles.
3. **Complexity caps** — every embedding-enumeration path is bounded by
   an explicit ``max_embeddings``-style cap.

reprolint machine-checks those contracts with a stdlib-only ``ast``
pass (R001-R010, per-file) plus a whole-program analysis engine —
symbol table, call graph, and intra-procedural dataflow under
``reprolint.analysis`` — that powers the project rules R011-R015:

========  =====================================================
Rule      Invariant
========  =====================================================
R001      no unseeded / module-level RNG use
R002      no forbidden third-party imports under ``src/``
R003      enumeration calls must pass an explicit cap
R004      no mutable default arguments
R005      public API that consumes randomness must expose rng/seed
R006      no bare ``except`` or silent ``except: pass``
R007      parallelism goes through repro.perf (no raw pools)
R008      no neighbors() materialisation in matching/truss kernels
R009      pipeline stages run inside tracing spans
R011      Graph mutations bump _version; cached views stay frozen
R012      pmap payloads are module-level and picklable
R013      expensive stage loops poll their Deadline
R014      wall-clock confined to obs/resilience/perf; no set-order
          leaking into pipeline results
R015      from_pipeline forwards SHARED_PIPELINE_FIELDS; shims keep
          their PipelineConfig branch
========  =====================================================

(R010 — typed errors only — rounds out the per-file set.)

Usage::

    python -m reprolint src/repro              # text report, exit 1 on hit
    python -m reprolint src/repro --format json
    python -m reprolint --project --format sarif src/repro
    python -m reprolint --project --stats src/repro
    python -m reprolint --list-rules

Violations are suppressed in source with a trailing comment on the
reported line::

    rng = random.Random()  # reprolint: disable=R001

or for a whole file with ``# reprolint: disable-file=R001`` on a
comment-only line.
"""

from reprolint.config import LintConfig
from reprolint.registry import all_rules, get_rule, register
from reprolint.runner import LintResult, lint_paths
from reprolint.violations import Violation

__version__ = "0.1.0"

__all__ = [
    "LintConfig",
    "LintResult",
    "Violation",
    "all_rules",
    "get_rule",
    "lint_paths",
    "register",
    "__version__",
]
