"""Rule registry.

A rule is a class with ``id``/``name``/``description`` attributes, an
optional project-wide ``collect`` phase, and a per-file ``check`` phase.
Registration happens at import time via the :func:`register` decorator;
``reprolint.rules`` imports every rule module so that importing the
package once populates the registry.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple, Type, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from reprolint.runner import FileContext, ProjectIndex
    from reprolint.violations import Violation


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` (``R\\d{3}``), ``name`` (kebab-case slug) and
    ``description`` (one line, shown by ``--list-rules``).  One instance
    is created per lint run, so rules may keep run-local state between
    ``collect`` and ``check``.

    Whole-program rules additionally declare ``requires`` — the
    analysis passes they need (``"symbols"``, ``"callgraph"``,
    ``"dataflow"``).  The runner builds the union of passes requested
    by the *enabled* rules once per run and exposes the result as
    ``ProjectIndex.analysis``; a rule whose ``requires`` is empty must
    not touch it.
    """

    id: str = ""
    name: str = ""
    description: str = ""
    #: Analysis passes this rule needs (subset of ANALYSIS_PASSES).
    requires: Tuple[str, ...] = ()

    def collect(self, ctx: "FileContext", project: "ProjectIndex") -> None:
        """First pass over every file; populate cross-file facts."""

    def check(self, ctx: "FileContext",
              project: "ProjectIndex") -> Iterator["Violation"]:
        """Second pass; yield violations for one file."""
        raise NotImplementedError
        yield  # pragma: no cover


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id or not cls.name:
        raise ValueError(f"rule {cls.__name__} must define id and name")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Registered rule classes, ordered by id."""
    import reprolint.rules  # noqa: F401  (side effect: registration)
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Type[Rule]:
    import reprolint.rules  # noqa: F401
    return _REGISTRY[rule_id]


def known_ids() -> Iterable[str]:
    import reprolint.rules  # noqa: F401
    return sorted(_REGISTRY)
