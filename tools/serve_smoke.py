#!/usr/bin/env python
"""Serve-smoke: drive a live pattern service at two worker counts.

``make serve-smoke`` (and CI) run this script, which:

1. starts a :class:`repro.service.PatternService` behind the real
   ``ThreadingHTTPServer`` on a free port,
2. drives a fixed request script through
   :class:`repro.service.ServiceClient` — health, patterns, a build,
   a session with actions, a pinned query, a suggest, a deliberate
   404, and a deliberately shed build,
3. repeats the whole run under ``REPRO_WORKERS=1`` and
   ``REPRO_WORKERS=4``, and
4. diffs every response pair after
   :func:`repro.service.wire.strip_volatile` normalisation.

Any divergence — a wrong status, a worker-count-dependent body, an
unhandled 500 — fails the run with a nonzero exit code.  This is the
end-to-end witness of the service's determinism contract: the HTTP
layer is a pure transport over the library, and the library is
worker-count independent.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, List, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                "src"))

WORKER_COUNTS = ("1", "4")

#: (label, expected status) for every scripted request, in order.
SCRIPT = (
    ("health", 200),
    ("patterns", 200),
    ("build", 200),
    ("session_create", 200),
    ("session_actions", 200),
    ("query", 200),
    ("suggest", 200),
    ("bad_route", 404),
    ("shed_build", 503),
)


def run_script(port_holder: List[int]) -> List[Tuple[str, int, Dict]]:
    """One full scripted pass against a fresh live server."""
    from repro.core.pipeline import PipelineConfig
    from repro.datasets import generate_chemical_repository
    from repro.graph.io import graph_to_dict
    from repro.patterns.base import PatternBudget
    from repro.service import (
        PatternService,
        ServiceClient,
        serve_in_thread,
    )

    service = PatternService(
        generate_chemical_repository(10, seed=7),
        PipelineConfig(budget=PatternBudget(4, min_size=4, max_size=7),
                       seed=3))
    server, _thread = serve_in_thread(service)
    host, port = server.server_address[:2]
    port_holder.append(port)
    client = ServiceClient(host, port)
    exchanges: List[Tuple[str, int, Dict]] = []
    try:
        exchanges.append(("health",) + client.health())
        exchanges.append(("patterns",) + client.patterns())
        exchanges.append(
            ("build",) + client.build({"config": {"seed": 3}}))
        status, created = client.create_session()
        exchanges.append(("session_create", status, created))
        sid = created["session"]
        exchanges.append(("session_actions",) + client.session_actions(
            sid, [{"op": "add_pattern", "index": 0}]))
        query = graph_to_dict(
            service.snapshots.resolve("snap-0").patterns[0].graph)
        exchanges.append(("query",) + client.query(
            {"query": query, "snapshot": "snap-0"}))
        exchanges.append(("suggest",) + client.suggest(
            {"session": sid, "node": 0}))
        exchanges.append(
            ("bad_route",) + client.get("/v1/not-a-route"))
        exchanges.append(("shed_build",) + client.request(
            "POST", "/v1/build", body={},
            headers={"X-Repro-Deadline": "0"}))
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    return exchanges


def main() -> int:
    from repro.service import strip_volatile

    runs: Dict[str, List[Tuple[str, int, Dict]]] = {}
    for workers in WORKER_COUNTS:
        os.environ["REPRO_WORKERS"] = workers
        ports: List[int] = []
        runs[workers] = run_script(ports)
        print(f"REPRO_WORKERS={workers}: "
              f"{len(runs[workers])} exchanges on port {ports[0]}")

    failures = 0
    for index, (label, expected_status) in enumerate(SCRIPT):
        per_worker = {}
        for workers in WORKER_COUNTS:
            got_label, status, body = runs[workers][index]
            if got_label != label:
                print(f"FAIL {label}: script order broke "
                      f"({got_label!r} at index {index})")
                failures += 1
            if status != expected_status:
                print(f"FAIL {label} (workers={workers}): "
                      f"status {status}, expected {expected_status}")
                failures += 1
            per_worker[workers] = strip_volatile(body)
        # health is live process state (uptime, snapshot counts move
        # with the run); every other body must be byte-identical
        if label == "health":
            continue
        reference = json.dumps(per_worker[WORKER_COUNTS[0]],
                               sort_keys=True)
        for workers in WORKER_COUNTS[1:]:
            candidate = json.dumps(per_worker[workers],
                                   sort_keys=True)
            if candidate != reference:
                print(f"FAIL {label}: response differs between "
                      f"workers {WORKER_COUNTS[0]} and {workers}")
                failures += 1

    if failures:
        print(f"serve-smoke: {failures} failure(s)")
        return 1
    print(f"serve-smoke: {len(SCRIPT)} exchanges byte-identical "
          f"across REPRO_WORKERS={{{','.join(WORKER_COUNTS)}}}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
