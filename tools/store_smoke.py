#!/usr/bin/env python
"""Store-smoke: ``kill -9`` a durable serve mid-maintenance, then
prove bitwise recovery.

``make store-smoke`` (and CI) run this script, which for each crash
scenario and each of ``REPRO_WORKERS=1`` and ``=4``:

1. writes a seeded ``.lg`` repository and starts a real
   ``repro-vqi serve DATA --store DIR`` child process with a scripted
   disk fault armed (via :mod:`repro.resilience.chaos`) and
   ``REPRO_STORE_CRASH_HARD=1``, so the fault's crash point is a
   genuine ``SIGKILL`` — no atexit hooks, no flushes, no unwinding;
2. snapshots the served ``/v1/patterns`` panel, posts a maintenance
   batch, and watches the child die with signal 9 mid-request;
3. reboots a clean serve on the same store directory and asserts the
   recovered panel is **bitwise equal** to the scenario's expected
   state — the pre-batch panel when the crash landed before the WAL
   record was durable, the post-batch panel when it landed after —
   and identical across both worker counts;
4. stops the recovered server with SIGTERM and asserts the graceful
   shutdown path exits 0.

The expected panels come from an in-process control service driven
with the same data, seed, and batch.  Any divergence fails the run
with a nonzero exit code.

Usage::

    PYTHONPATH=src python tools/store_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from http.client import HTTPException
from typing import Dict, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC_DIR)

WORKER_COUNTS = ("1", "4")

#: (name, chaos site, fault kind, 1-based site call, expected state).
#: ``wal-torn`` dies half-way through the WAL append — the batch
#: never became durable, so recovery must serve the pre-batch panel.
#: ``commit-crash`` dies after the maintain's manifest rename (call 1
#: is the initial build's commit) — the batch is fully durable, so
#: recovery must serve the post-batch panel.
SCENARIOS = (
    ("wal-torn", "store.wal.append", "torn_write", 1, "pre"),
    ("commit-crash", "store.manifest.commit",
     "crash_after_n_records", 2, "post"),
)

#: Seconds to wait for a child server to answer /v1/health.
READY_TIMEOUT_S = 120.0

#: The child process: arm the scripted fault (if any), then run the
#: real CLI serve loop.
CHILD_CODE = r"""
import os, sys
from repro.resilience.chaos import FaultPlan, FaultSpec, install
site = os.environ.get("SMOKE_SITE")
if site:
    install(FaultPlan([FaultSpec(site, os.environ["SMOKE_KIND"],
                                 at_calls=[int(os.environ["SMOKE_CALL"])])],
                      seed=13))
from repro.cli import main
sys.exit(main(["serve", os.environ["SMOKE_DATA"],
               "--store", os.environ["SMOKE_STORE"],
               "--port", os.environ["SMOKE_PORT"]]))
"""


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def launch(data: str, store: str, workers: str,
           fault: Optional[Tuple[str, str, int]] = None
           ) -> Tuple[subprocess.Popen, int]:
    port = free_port()
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    env["REPRO_WORKERS"] = workers
    env["REPRO_STORE_CRASH_HARD"] = "1"
    env["SMOKE_DATA"] = data
    env["SMOKE_STORE"] = store
    env["SMOKE_PORT"] = str(port)
    env.pop("SMOKE_SITE", None)
    if fault is not None:
        env["SMOKE_SITE"] = fault[0]
        env["SMOKE_KIND"] = fault[1]
        env["SMOKE_CALL"] = str(fault[2])
    proc = subprocess.Popen([sys.executable, "-c", CHILD_CODE],
                            env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE)
    return proc, port


def http(method: str, port: int, path: str,
         body: Optional[dict] = None) -> Tuple[int, dict]:
    payload = json.dumps(body).encode("utf-8") \
        if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=payload,
        method=method, headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=60) as reply:
        return reply.status, json.loads(reply.read().decode("utf-8"))


def wait_ready(proc: subprocess.Popen, port: int) -> None:
    deadline = time.monotonic() + READY_TIMEOUT_S
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out, err = proc.communicate()
            raise RuntimeError(
                f"serve child exited early ({proc.returncode}):\n"
                f"{err.decode(errors='replace')}")
        try:
            status, _ = http("GET", port, "/v1/health")
            if status == 200:
                return
        except (OSError, HTTPException, urllib.error.URLError):
            time.sleep(0.1)
    raise RuntimeError("serve child never became healthy")


def canonical_panel(port: int) -> bytes:
    from repro.service import strip_volatile, wire
    status, body = http("GET", port, "/v1/patterns")
    assert status == 200, f"/v1/patterns returned {status}"
    return wire.dumps(strip_volatile(body))


def batch_payload() -> dict:
    from repro.datasets import generate_chemical_repository
    from repro.graph.io import graph_to_dict
    extra = generate_chemical_repository(14, seed=11)[10:]
    return {"add": [graph_to_dict(g) for g in extra],
            "remove": ["mol0", "mol1"]}


def control_panels(data_path: str) -> Dict[str, bytes]:
    """The two legal recovery states, from an in-process control
    service constructed exactly like the CLI child's."""
    from repro.core.pipeline import PipelineConfig
    from repro.datasets import UpdateBatch
    from repro.graph.io import graph_from_dict, read_lg
    from repro.patterns.base import PatternBudget
    from repro.service import PatternService, strip_volatile, wire

    payload = batch_payload()
    service = PatternService(
        read_lg(data_path),
        PipelineConfig(budget=PatternBudget(8, min_size=4,
                                            max_size=8), seed=0))

    def panel() -> bytes:
        reply = service.dispatch("GET", "/v1/patterns")
        assert reply.status == 200
        return wire.dumps(strip_volatile(reply.body))

    pre = panel()
    service.apply_maintenance(UpdateBatch(
        added=[graph_from_dict(item) for item in payload["add"]],
        removed=list(payload["remove"])))
    post = panel()
    service.close()
    assert pre != post, "the control batch must change the panel"
    return {"pre": pre, "post": post}


def run_scenario(name: str, site: str, kind: str, call: int,
                 expected: str, data: str, store_root: str,
                 workers: str, controls: Dict[str, bytes],
                 failures: List[str]) -> Optional[bytes]:
    store = os.path.join(store_root, f"{name}-w{workers}")
    proc, port = launch(data, store, workers,
                        fault=(site, kind, call))
    wait_ready(proc, port)
    if canonical_panel(port) != controls["pre"]:
        failures.append(f"{name} w{workers}: served panel diverged "
                        "from the control before the crash")
    try:
        http("POST", port, "/v1/patterns/maintain", batch_payload())
        failures.append(f"{name} w{workers}: maintain survived the "
                        "armed crash point")
    except (OSError, HTTPException, urllib.error.URLError):
        pass  # the child died mid-request, as scripted
    proc.wait(timeout=60)
    if proc.returncode != -signal.SIGKILL:
        failures.append(f"{name} w{workers}: child exited "
                        f"{proc.returncode}, expected SIGKILL")
        return None

    survivor, port = launch(data, store, workers)
    wait_ready(survivor, port)
    recovered = canonical_panel(port)
    if recovered != controls[expected]:
        failures.append(f"{name} w{workers}: recovered panel is not "
                        f"the {expected}-batch control, bitwise")
    survivor.send_signal(signal.SIGTERM)
    try:
        survivor.wait(timeout=30)
    except subprocess.TimeoutExpired:
        survivor.kill()
        failures.append(f"{name} w{workers}: SIGTERM did not stop "
                        "the recovered server")
        return recovered
    if survivor.returncode != 0:
        failures.append(f"{name} w{workers}: graceful shutdown "
                        f"exited {survivor.returncode}")
    return recovered


def main() -> int:
    failures: List[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        data = os.path.join(tmp, "data.lg")
        from repro.datasets import generate_chemical_repository
        from repro.graph.io import write_lg
        write_lg(generate_chemical_repository(10, seed=7), data)
        controls = control_panels(data)
        for name, site, kind, call, expected in SCENARIOS:
            per_worker: Dict[str, Optional[bytes]] = {}
            for workers in WORKER_COUNTS:
                per_worker[workers] = run_scenario(
                    name, site, kind, call, expected, data, tmp,
                    workers, controls, failures)
                print(f"{name} (workers={workers}): killed at "
                      f"{site}/{kind}, recovered {expected}-batch")
            values = set(per_worker.values())
            if len(values) != 1 or None in values:
                failures.append(f"{name}: recovered panels differ "
                                f"between worker counts")
    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        print(f"store-smoke: {len(failures)} failure(s)")
        return 1
    print(f"store-smoke: {len(SCENARIOS)} kill -9 scenarios "
          f"recovered bitwise across REPRO_WORKERS="
          f"{{{','.join(WORKER_COUNTS)}}}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
