"""Equivalence and instrumentation tests for the v2 matching kernel.

The indexed kernel (signature-filtered candidate pools, smallest-
anchor intersection) must enumerate exactly the embedding set of the
legacy kernel and of a brute-force permutation oracle, across
monomorphism/induced semantics and wildcard node/edge labels — while
doing measurably less feasibility work.
"""

import itertools
import random

import pytest

from repro.graph import Graph, build_graph, complete_graph, gnm_random_graph
from repro.matching import (
    WILDCARD,
    SubgraphMatcher,
    covered_edges,
    kernel_stats,
    labels_compatible,
    reset_kernel_stats,
)


def embeddings_as_keys(matcher, max_results=None):
    return {tuple(sorted(m.items()))
            for m in matcher.iter_embeddings(max_results=max_results)}


def kernel_embeddings(pattern, target, induced, kernel):
    return embeddings_as_keys(
        SubgraphMatcher(pattern, target, induced=induced, kernel=kernel))


def brute_force_embeddings(pattern, target, induced=False):
    """Oracle: enumerate all injective mappings and filter."""
    p_nodes = sorted(pattern.nodes())
    results = set()
    for image in itertools.permutations(sorted(target.nodes()),
                                        len(p_nodes)):
        mapping = dict(zip(p_nodes, image))
        ok = all(labels_compatible(pattern.node_label(u),
                                   target.node_label(mapping[u]))
                 for u in p_nodes)
        for u, v in pattern.edges():
            if not ok:
                break
            ok = (target.has_edge(mapping[u], mapping[v])
                  and labels_compatible(
                      pattern.edge_label(u, v),
                      target.edge_label(mapping[u], mapping[v])))
        if ok and induced:
            for u, v in itertools.combinations(p_nodes, 2):
                if (not pattern.has_edge(u, v)
                        and target.has_edge(mapping[u], mapping[v])):
                    ok = False
                    break
        if ok:
            results.add(tuple(sorted(mapping.items())))
    return results


def random_case(seed, wildcards=False):
    rng = random.Random(seed)
    target = gnm_random_graph(6, rng.randint(5, 9), rng,
                              labels=["A", "B"])
    pattern = gnm_random_graph(3, rng.randint(2, 3), rng,
                               labels=["A", "B"])
    if wildcards:
        pattern.set_node_label(rng.choice(sorted(pattern.nodes())),
                               WILDCARD)
        u, v = rng.choice(sorted(pattern.edges()))
        pattern.set_edge_label(u, v, WILDCARD)
    return pattern, target


class TestKernelEquivalence:
    @pytest.mark.parametrize("induced", [False, True])
    @pytest.mark.parametrize("seed", range(8))
    def test_indexed_equals_legacy_and_oracle(self, seed, induced):
        """Both kernels == permutation oracle on graphs <= 6 nodes."""
        pattern, target = random_case(seed)
        oracle = brute_force_embeddings(pattern, target, induced=induced)
        for kernel in ("legacy", "indexed"):
            assert kernel_embeddings(pattern, target, induced,
                                     kernel) == oracle

    @pytest.mark.parametrize("induced", [False, True])
    @pytest.mark.parametrize("seed", range(8))
    def test_wildcard_labels_equivalent(self, seed, induced):
        """Wildcard node and edge labels: kernels == oracle."""
        pattern, target = random_case(seed, wildcards=True)
        oracle = brute_force_embeddings(pattern, target, induced=induced)
        for kernel in ("legacy", "indexed"):
            assert kernel_embeddings(pattern, target, induced,
                                     kernel) == oracle

    @pytest.mark.parametrize("seed", range(4))
    def test_larger_random_graphs_agree_across_kernels(self, seed):
        rng = random.Random(500 + seed)
        target = gnm_random_graph(20, 50, rng, labels=["A", "B", "C"])
        pattern = gnm_random_graph(4, 4, rng, labels=["A", "B", "C"])
        for induced in (False, True):
            assert (kernel_embeddings(pattern, target, induced, "legacy")
                    == kernel_embeddings(pattern, target, induced,
                                         "indexed"))

    def test_disconnected_pattern(self):
        pattern = build_graph([(0, "A"), (1, "A"), (2, "B")],
                              edges=[(0, 1)])
        target = gnm_random_graph(7, 9, random.Random(5),
                                  labels=["A", "B"])
        oracle = brute_force_embeddings(pattern, target)
        for kernel in ("legacy", "indexed"):
            assert kernel_embeddings(pattern, target, False,
                                     kernel) == oracle

    def test_empty_pattern_and_oversized_pattern(self):
        target = complete_graph(3, label="A")
        for kernel in ("legacy", "indexed"):
            assert kernel_embeddings(Graph(), target, False,
                                     kernel) == {()}
            assert kernel_embeddings(complete_graph(5, label="A"),
                                     target, False, kernel) == set()

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            SubgraphMatcher(Graph(), Graph(), kernel="quantum")


class TestCandidatePools:
    def test_signature_filter_excludes_impossible_candidates(self):
        """A target node lacking a required neighbor label is pooled out."""
        # pattern: B adjacent to two As
        pattern = build_graph([(0, "B"), (1, "A"), (2, "A")],
                              edges=[(0, 1), (0, 2)])
        # target: b0 has two A neighbors (viable), b1 has A+C (not)
        target = build_graph(
            [(0, "B"), (1, "A"), (2, "A"), (3, "B"), (4, "A"), (5, "C")],
            edges=[(0, 1), (0, 2), (3, 4), (3, 5)])
        matcher = SubgraphMatcher(pattern, target)
        assert matcher._pools[0] == (0,)  # b1 (node 3) signature-pruned

    def test_degree_filter(self):
        pattern = build_graph([(0, "A"), (1, "A"), (2, "A")],
                              edges=[(0, 1), (0, 2)])
        target = build_graph([(0, "A"), (1, "A"), (2, "A")],
                             edges=[(0, 1), (1, 2)])
        matcher = SubgraphMatcher(pattern, target)
        # only target node 1 has degree >= 2
        assert matcher._pools[0] == (1,)

    def test_wildcard_pattern_node_pools_all_labels(self):
        pattern = build_graph([(0, WILDCARD)])
        target = build_graph([(0, "A"), (1, "B")])
        matcher = SubgraphMatcher(pattern, target)
        assert set(matcher._pools[0]) == {0, 1}


class TestKernelCounters:
    def test_indexed_kernel_does_fewer_feasibility_checks(self):
        rng = random.Random(2)
        target = gnm_random_graph(40, 120, rng, labels=["A", "B", "C"])
        pattern = gnm_random_graph(5, 6, rng, labels=["A", "B", "C"])
        checks = {}
        for kernel in ("legacy", "indexed"):
            reset_kernel_stats()
            matcher = SubgraphMatcher(pattern, target, kernel=kernel)
            list(matcher.iter_embeddings(max_results=None))
            checks[kernel] = kernel_stats()["feasibility_checks"]
        assert checks["indexed"] < checks["legacy"]

    def test_counters_reset_and_accumulate(self):
        reset_kernel_stats()
        assert kernel_stats() == {"feasibility_checks": 0,
                                  "recursive_calls": 0,
                                  "candidates_pruned": 0}
        target = complete_graph(4, label="A")
        list(SubgraphMatcher(complete_graph(3, label="A"),
                             target).iter_embeddings(max_results=None))
        stats = kernel_stats()
        assert stats["recursive_calls"] > 0
        assert stats["feasibility_checks"] > 0

    def test_counters_surface_through_perf_cache_stats(self):
        from repro.perf import cache_stats, clear_match_cache
        clear_match_cache()
        stats = cache_stats()
        for key in ("feasibility_checks", "recursive_calls",
                    "candidates_pruned", "canonical_memo_hits",
                    "canonical_memo_misses"):
            assert key in stats
        assert stats["feasibility_checks"] == 0
        list(SubgraphMatcher(complete_graph(3, label="A"),
                             complete_graph(4, label="A"))
             .iter_embeddings(max_results=None))
        assert cache_stats()["feasibility_checks"] > 0


class TestCoveredEdgesEarlyExit:
    """The hoisted saturation check must not change any result."""

    def brute_force_covered(self, pattern, target):
        covered = set()
        for key in brute_force_embeddings(pattern, target):
            mapping = dict(key)
            for u, v in pattern.edges():
                a, b = mapping[u], mapping[v]
                covered.add((a, b) if a <= b else (b, a))
        return covered

    @pytest.mark.parametrize("seed", range(10))
    def test_capped_equals_uncapped_brute_force(self, seed):
        rng = random.Random(seed)
        target = gnm_random_graph(6, rng.randint(4, 9), rng,
                                  labels=["A", "B"])
        pattern = gnm_random_graph(3, rng.randint(2, 3), rng,
                                   labels=["A", "B"])
        want = self.brute_force_covered(pattern, target)
        assert covered_edges(pattern, target) == want
        assert covered_edges(pattern, target, max_embeddings=None) == want

    def test_saturation_stops_enumeration_early(self):
        # P2 in K5 saturates coverage long before the embedding cap
        target = complete_graph(5, label="A")
        pattern = build_graph([(0, "A"), (1, "A")], edges=[(0, 1)])
        reset_kernel_stats()
        covered = covered_edges(pattern, target, max_embeddings=None)
        saturated_calls = kernel_stats()["recursive_calls"]
        assert covered == set(target.edges())
        reset_kernel_stats()
        list(SubgraphMatcher(pattern, target)
             .iter_embeddings(max_results=None))
        full_calls = kernel_stats()["recursive_calls"]
        assert saturated_calls < full_calls

    def test_edgeless_inputs(self):
        assert covered_edges(build_graph([(0, "A")]),
                             complete_graph(3, label="A")) == set()
        assert covered_edges(complete_graph(2, label="A"),
                             build_graph([(0, "A")])) == set()
