"""Tests for the synthetic dataset generators."""

import random

import pytest

from repro.datasets import (
    ATOMS,
    EvolvingRepository,
    NetworkConfig,
    UpdateBatch,
    generate_chemical_repository,
    generate_molecule,
    generate_network,
    generate_update_stream,
    generate_workload,
    label_distribution,
    sample_connected_subgraph,
)
from repro.errors import GraphError, MaintenanceError
from repro.graph import is_connected, triangles
from repro.matching import is_subgraph
from repro.patterns import TopologyClass, classify_topology


class TestChemical:
    def test_repository_size_and_names(self):
        repo = generate_chemical_repository(12, seed=0)
        assert len(repo) == 12
        assert len({g.name for g in repo}) == 12

    def test_deterministic(self):
        a = generate_chemical_repository(6, seed=3)
        b = generate_chemical_repository(6, seed=3)
        for g1, g2 in zip(a, b):
            assert g1.same_as(g2)

    def test_molecules_connected_with_atom_labels(self):
        repo = generate_chemical_repository(10, seed=1)
        for g in repo:
            assert is_connected(g)
            assert set(g.label_multiset()) <= set(ATOMS)

    def test_motif_weights_shift_structure(self):
        ringy = generate_chemical_repository(
            20, seed=2, motif_weights=[5.0, 0.1, 0.1, 0.1])
        chainy = generate_chemical_repository(
            20, seed=2, motif_weights=[0.1, 0.1, 0.1, 5.0])
        mean = lambda repo: sum(g.size() - g.order() + 1
                                for g in repo) / len(repo)
        assert mean(ringy) > mean(chainy)  # more rings = higher rank

    def test_validation(self):
        with pytest.raises(GraphError):
            generate_chemical_repository(-1)
        with pytest.raises(GraphError):
            generate_molecule(random.Random(0), min_motifs=0)
        with pytest.raises(GraphError):
            generate_molecule(random.Random(0), motif_weights=[1.0])


class TestNetworks:
    def test_shape(self):
        net = generate_network(NetworkConfig(nodes=200), seed=1)
        assert net.order() == 200
        assert is_connected(net)

    def test_planted_triangles(self):
        sparse = NetworkConfig(nodes=150, cliques=0, petals=0, flowers=0,
                               attachment=1)
        dense = NetworkConfig(nodes=150, cliques=10, clique_size=5,
                              petals=0, flowers=0, attachment=1)
        n_sparse = len(triangles(generate_network(sparse, seed=3)))
        n_dense = len(triangles(generate_network(dense, seed=3)))
        assert n_dense > n_sparse

    def test_label_distribution(self):
        net = generate_network(NetworkConfig(nodes=100), seed=2)
        dist = label_distribution(net)
        assert abs(sum(dist.values()) - 1.0) < 1e-9

    def test_config_validation(self):
        with pytest.raises(GraphError):
            NetworkConfig(nodes=5)
        with pytest.raises(GraphError):
            NetworkConfig(clique_size=2)


class TestWorkloads:
    def test_sample_connected_subgraph(self):
        net = generate_network(NetworkConfig(nodes=100), seed=4)
        rng = random.Random(1)
        sample = sample_connected_subgraph(net, 6, rng)
        assert sample is not None
        assert sample.order() == 6
        assert is_connected(sample)

    def test_sample_too_large(self):
        net = generate_network(NetworkConfig(nodes=50), seed=4)
        assert sample_connected_subgraph(net, 51, random.Random(0)) is None

    def test_sample_invalid_size(self):
        net = generate_network(NetworkConfig(nodes=50), seed=4)
        with pytest.raises(GraphError):
            sample_connected_subgraph(net, 0, random.Random(0))

    def test_queries_answerable(self):
        repo = generate_chemical_repository(20, seed=5)
        workload = generate_workload(repo, 10, seed=6)
        assert len(workload) == 10
        for query in workload:
            assert any(is_subgraph(query, g) for g in repo)

    def test_topology_mix_has_acyclic_majority(self):
        repo = generate_chemical_repository(30, seed=7)
        workload = generate_workload(repo, 40, seed=8)
        mix = workload.topology_mix()
        acyclic = sum(share for cls, share in mix.items()
                      if cls.is_acyclic())
        assert acyclic > 0.5

    def test_explicit_mix(self):
        repo = generate_chemical_repository(20, seed=9)
        workload = generate_workload(
            repo, 10, seed=10, mix={TopologyClass.CHAIN: 1.0})
        mix = workload.topology_mix()
        assert mix.get(TopologyClass.CHAIN, 0.0) > 0.5

    def test_mean_size(self):
        repo = generate_chemical_repository(20, seed=11)
        workload = generate_workload(repo, 5, seed=12)
        assert workload.mean_size() > 0

    def test_empty_data_rejected(self):
        with pytest.raises(GraphError):
            generate_workload([], 5)


class TestEvolvingRepository:
    def make(self, n=10, seed=1):
        return EvolvingRepository(generate_chemical_repository(n,
                                                               seed=seed))

    def test_apply_batch(self):
        repo = self.make()
        rng = random.Random(2)
        batch = UpdateBatch(added=[generate_molecule(rng, name="x1")],
                            removed=[repo.graphs()[0].name])
        repo.apply(batch)
        assert len(repo) == 10
        assert "x1" in repo

    def test_remove_unknown_rejected(self):
        repo = self.make()
        with pytest.raises(MaintenanceError):
            repo.apply(UpdateBatch(removed=["ghost"]))

    def test_add_duplicate_rejected(self):
        repo = self.make()
        rng = random.Random(3)
        existing = repo.graphs()[0].name
        with pytest.raises(MaintenanceError):
            repo.apply(UpdateBatch(added=[generate_molecule(
                rng, name=existing)]))

    def test_validation_happens_before_mutation(self):
        repo = self.make()
        rng = random.Random(4)
        bad = UpdateBatch(added=[generate_molecule(rng, name="ok")],
                          removed=["ghost"])
        with pytest.raises(MaintenanceError):
            repo.apply(bad)
        assert "ok" not in repo
        assert len(repo) == 10

    def test_duplicate_names_rejected_at_init(self):
        graphs = generate_chemical_repository(3, seed=5)
        graphs.append(graphs[0].copy())
        with pytest.raises(MaintenanceError):
            EvolvingRepository(graphs)


class TestUpdateStream:
    def test_stream_applies_cleanly(self):
        repo = EvolvingRepository(generate_chemical_repository(20, seed=6))
        initial = len(repo)
        for batch in generate_update_stream(repo, batches=4, batch_size=5,
                                            seed=7):
            assert not batch.is_empty()
            repo.apply(batch)
        assert repo.applied_batches == 4
        assert len(repo) > initial  # additions outpace removals

    def test_drift_changes_additions(self):
        repo = EvolvingRepository(generate_chemical_repository(20, seed=8))
        batches = list(generate_update_stream(
            repo, batches=2, batch_size=10, seed=9, drift_after=1,
            removal_fraction=0.0,
            drift_weights=(0.01, 0.01, 0.01, 10.0)))
        rank = lambda gs: sum(g.size() - g.order() + 1
                              for g in gs) / len(gs)
        assert rank(batches[0].added) > rank(batches[1].added)


class TestWorkloadPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        repo = generate_chemical_repository(15, seed=14)
        workload = generate_workload(repo, 6, seed=15)
        path = tmp_path / "workload.json"
        assert workload.save(path) == 6
        from repro.datasets import QueryWorkload
        restored = QueryWorkload.load(path)
        assert len(restored) == 6
        for original, loaded in zip(workload, restored):
            assert loaded.same_as(original)
        assert restored.topology_mix() == workload.topology_mix()
