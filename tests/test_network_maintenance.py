"""Tests for continuous network maintenance (future-work direction)."""

import random

import pytest

from repro.datasets import NetworkConfig, generate_network
from repro.errors import MaintenanceError, PipelineError
from repro.graph import Graph
from repro.patterns import PatternBudget
from repro.tattoo import (
    NetworkMaintainer,
    NetworkMaintenanceConfig,
    NetworkUpdate,
)
from repro.truss import edge_support


@pytest.fixture(scope="module")
def network():
    return generate_network(NetworkConfig(nodes=200, cliques=6,
                                          petals=4, flowers=3), seed=9)


@pytest.fixture(scope="module")
def budget():
    return PatternBudget(5, min_size=4, max_size=8)


def fresh_maintainer(network, budget, **kwargs):
    config = NetworkMaintenanceConfig(**kwargs)
    return NetworkMaintainer(network, budget, config)


def random_update(maintainer, rng, new_nodes=2, new_edges=6):
    nodes = sorted(maintainer.network.nodes())
    next_id = max(nodes) + 1
    added_nodes = [(next_id + i, "person") for i in range(new_nodes)]
    added_edges = []
    for i in range(new_nodes):
        added_edges.append((next_id + i, rng.choice(nodes), ""))
    attempts = 0
    while len(added_edges) < new_nodes + new_edges and attempts < 100:
        attempts += 1
        u, v = rng.sample(nodes, 2)
        if (not maintainer.network.has_edge(u, v)
                and not any(e[:2] == (u, v) or e[:2] == (v, u)
                            for e in added_edges)):
            added_edges.append((u, v, ""))
    return NetworkUpdate(added_nodes=added_nodes,
                         added_edges=added_edges)


class TestUpdateValidation:
    def test_empty_network_rejected(self, budget):
        with pytest.raises(PipelineError):
            NetworkMaintainer(Graph(), budget)

    def test_duplicate_node_rejected(self, network, budget):
        m = fresh_maintainer(network, budget)
        existing = next(iter(m.network.nodes()))
        with pytest.raises(MaintenanceError):
            m.apply_update(NetworkUpdate(added_nodes=[(existing, "x")]))

    def test_edge_to_missing_node_rejected(self, network, budget):
        m = fresh_maintainer(network, budget)
        with pytest.raises(MaintenanceError):
            m.apply_update(NetworkUpdate(
                added_edges=[(10 ** 9, 0, "")]))

    def test_duplicate_edge_rejected(self, network, budget):
        m = fresh_maintainer(network, budget)
        u, v = next(iter(m.network.edges()))
        with pytest.raises(MaintenanceError):
            m.apply_update(NetworkUpdate(added_edges=[(u, v, "")]))

    def test_missing_edge_removal_rejected(self, network, budget):
        m = fresh_maintainer(network, budget)
        with pytest.raises(MaintenanceError):
            m.apply_update(NetworkUpdate(removed_edges=[(0, 10 ** 9)]))

    def test_missing_node_removal_rejected(self, network, budget):
        m = fresh_maintainer(network, budget)
        with pytest.raises(MaintenanceError):
            m.apply_update(NetworkUpdate(removed_nodes=[10 ** 9]))

    def test_drift_threshold_validation(self):
        with pytest.raises(MaintenanceError):
            NetworkMaintenanceConfig(drift_threshold=-0.1)


class TestIncrementalSupport:
    def test_support_matches_oracle_after_insertions(self, network,
                                                     budget):
        m = fresh_maintainer(network, budget, drift_threshold=1.0)
        rng = random.Random(1)
        for _ in range(3):
            m.apply_update(random_update(m, rng))
        assert m.support_snapshot() == edge_support(m.network)

    def test_support_matches_oracle_after_deletions(self, network,
                                                    budget):
        m = fresh_maintainer(network, budget, drift_threshold=1.0)
        rng = random.Random(2)
        edges = sorted(m.network.edges())
        removed = rng.sample(edges, 10)
        m.apply_update(NetworkUpdate(removed_edges=removed))
        assert m.support_snapshot() == edge_support(m.network)

    def test_support_matches_oracle_after_node_removal(self, network,
                                                       budget):
        m = fresh_maintainer(network, budget, drift_threshold=1.0)
        rng = random.Random(3)
        victim = rng.choice(sorted(m.network.nodes()))
        m.apply_update(NetworkUpdate(removed_nodes=[victim]))
        assert not m.network.has_node(victim)
        assert m.support_snapshot() == edge_support(m.network)

    def test_original_network_untouched(self, network, budget):
        before_edges = network.size()
        m = fresh_maintainer(network, budget, drift_threshold=1.0)
        rng = random.Random(4)
        m.apply_update(random_update(m, rng))
        assert network.size() == before_edges


class TestMaintenanceBehaviour:
    def test_minor_update_keeps_patterns(self, network, budget):
        m = fresh_maintainer(network, budget, drift_threshold=0.9)
        before = m.patterns.codes()
        rng = random.Random(5)
        report = m.apply_update(random_update(m, rng, new_nodes=1,
                                              new_edges=1))
        assert report.kind == "minor"
        assert m.patterns.codes() == before
        assert report.score_after == report.score_before

    def test_major_update_never_degrades_surviving_score(self, network,
                                                         budget):
        m = fresh_maintainer(network, budget, drift_threshold=0.0)
        rng = random.Random(6)
        report = m.apply_update(random_update(m, rng, new_nodes=3,
                                              new_edges=12))
        assert report.kind == "major"
        assert report.swap_stats is not None
        # the swap phase itself never loses quality
        assert (report.swap_stats.score_after
                >= report.swap_stats.score_before - 1e-9)

    def test_drift_accumulates_across_minor_updates(self, network,
                                                    budget):
        m = fresh_maintainer(network, budget, drift_threshold=0.9)
        rng = random.Random(7)
        d1 = m.apply_update(random_update(m, rng, 1, 2)).drift
        d2 = m.apply_update(random_update(m, rng, 1, 2)).drift
        assert d2 >= d1

    def test_major_resets_drift(self, network, budget):
        m = fresh_maintainer(network, budget, drift_threshold=0.0)
        rng = random.Random(8)
        m.apply_update(random_update(m, rng))
        assert m.drift() == 0.0

    def test_vanished_pattern_triggers_refresh(self, budget):
        """Deleting the region a pattern lives in forces maintenance."""
        from repro.graph import complete_graph, path_graph, disjoint_union
        net = disjoint_union([complete_graph(5, label="a"),
                              path_graph(30, label="b")])
        m = NetworkMaintainer(net, PatternBudget(3, min_size=4,
                                                 max_size=6),
                              NetworkMaintenanceConfig(
                                  drift_threshold=0.9))
        clique_nodes = [v for v in m.network.nodes()
                        if m.network.node_label(v) == "a"]
        report = m.apply_update(NetworkUpdate(
            removed_nodes=clique_nodes))
        assert report.kind == "major"
        # no pattern references the deleted clique anymore
        for pattern in m.patterns:
            assert "a" not in pattern.graph.label_multiset()

    def test_update_repr_and_empty(self):
        update = NetworkUpdate()
        assert update.is_empty()
        assert "+n0" in repr(update)
