"""Tests for k-truss decomposition, with invariant checks."""

import random

import pytest

from repro.graph import (
    complete_graph,
    cycle_graph,
    disjoint_union,
    gnm_random_graph,
    path_graph,
    planted_partition_graph,
)
from repro.truss import (
    edge_support,
    max_trussness,
    split_by_truss,
    truss_decomposition,
    truss_decomposition_rescan,
    truss_statistics,
)


class TestSupport:
    def test_triangle_support(self):
        support = edge_support(complete_graph(3))
        assert all(s == 1 for s in support.values())

    def test_k4_support(self):
        support = edge_support(complete_graph(4))
        assert all(s == 2 for s in support.values())

    def test_path_zero_support(self):
        support = edge_support(path_graph(5))
        assert all(s == 0 for s in support.values())


class TestDecomposition:
    def test_clique_trussness(self):
        # every edge of Kn has trussness n
        for n in (3, 4, 5, 6):
            trussness = truss_decomposition(complete_graph(n))
            assert all(k == n for k in trussness.values())

    def test_tree_trussness_two(self):
        trussness = truss_decomposition(path_graph(6))
        assert all(k == 2 for k in trussness.values())

    def test_cycle_trussness_two(self):
        trussness = truss_decomposition(cycle_graph(7))
        assert all(k == 2 for k in trussness.values())

    def test_mixed_graph(self):
        # K4 joined to a path: clique edges trussness 4, path edges 2
        g = complete_graph(4)
        g.add_node(4)
        g.add_node(5)
        g.add_edge(3, 4)
        g.add_edge(4, 5)
        trussness = truss_decomposition(g)
        assert trussness[(3, 4)] == 2
        assert trussness[(4, 5)] == 2
        assert trussness[(0, 1)] == 4

    def test_every_edge_assigned(self):
        g = gnm_random_graph(12, 24, random.Random(1))
        trussness = truss_decomposition(g)
        assert set(trussness) == set(g.edges())

    def test_truss_subgraph_invariant(self):
        """Within the k-truss, every edge is in >= k-2 triangles."""
        from repro.graph import edge_subgraph
        g = planted_partition_graph(2, 10, 0.8, 0.05, random.Random(3))
        trussness = truss_decomposition(g)
        k = 4
        edges_k = [e for e, t in trussness.items() if t >= k]
        if edges_k:
            sub = edge_subgraph(g, edges_k)
            support = edge_support(sub)
            assert all(s >= k - 2 for s in support.values())

    def test_maximality(self):
        """Trussness-k edges do not survive in the (k+1)-truss."""
        from repro.graph import edge_subgraph
        g = gnm_random_graph(14, 40, random.Random(7))
        trussness = truss_decomposition(g)
        for k in sorted(set(trussness.values())):
            edges_up = [e for e, t in trussness.items() if t >= k + 1]
            if not edges_up:
                continue
            sub = edge_subgraph(g, edges_up)
            support = edge_support(sub)
            assert all(s >= k - 1 for s in support.values())

    def test_empty_graph(self):
        from repro.graph import Graph
        assert truss_decomposition(Graph()) == {}
        assert max_trussness(Graph()) == 0

    def test_max_trussness(self):
        assert max_trussness(complete_graph(5)) == 5
        assert max_trussness(path_graph(4)) == 2


class TestBucketQueueAgainstRescan:
    """The bucket-queue peeler must agree with the legacy rescan
    peeler — the oracle it replaced — on every graph shape."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs(self, seed):
        g = gnm_random_graph(16, 40, random.Random(seed))
        assert truss_decomposition(g) == truss_decomposition_rescan(g)

    def test_planted_partitions(self):
        g = planted_partition_graph(3, 12, 0.7, 0.05, random.Random(4))
        assert truss_decomposition(g) == truss_decomposition_rescan(g)

    def test_structured_graphs(self):
        for g in (complete_graph(6), path_graph(7), cycle_graph(8),
                  disjoint_union([complete_graph(4), complete_graph(5),
                                  path_graph(4)])):
            assert truss_decomposition(g) == truss_decomposition_rescan(g)

    def test_overlapping_cliques(self):
        # two K4s sharing an edge: shared edge support is highest
        g = complete_graph(4)
        g.add_node(4)
        g.add_node(5)
        for u in (0, 1):
            g.add_edge(u, 4)
            g.add_edge(u, 5)
        g.add_edge(4, 5)
        assert truss_decomposition(g) == truss_decomposition_rescan(g)

    def test_empty_and_edgeless(self):
        from repro.graph import Graph
        assert truss_decomposition_rescan(Graph()) == {}
        g = Graph()
        g.add_node(0)
        assert truss_decomposition(g) == truss_decomposition_rescan(g)


class TestSplit:
    def test_split_partitions_edges(self):
        g = planted_partition_graph(2, 10, 0.7, 0.05, random.Random(5))
        g_t, g_o = split_by_truss(g)
        assert g_t.size() + g_o.size() == g.size()
        overlap = set(g_t.edges()) & set(g_o.edges())
        assert not overlap

    def test_dense_region_in_truss_part(self):
        g = disjoint_union([complete_graph(5), path_graph(6)])
        g_t, g_o = split_by_truss(g)
        assert g_t.size() == 10  # the K5 edges
        assert g_o.size() == 5   # the path edges

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            split_by_truss(path_graph(3), threshold=2)

    def test_triangle_free_graph_all_oblivious(self):
        g = cycle_graph(8)
        g_t, g_o = split_by_truss(g)
        assert g_t.size() == 0
        assert g_o.size() == 8

    def test_statistics(self):
        stats = truss_statistics(complete_graph(5))
        assert stats["max_trussness"] == 5
        assert stats["infested_fraction"] == 1.0
        from repro.graph import Graph
        assert truss_statistics(Graph())["edges"] == 0
