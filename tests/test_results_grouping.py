"""Tests for cognitive-load-aware result grouping and rendering."""

import pytest

from repro.core import PatternBudget, build_vqi
from repro.datasets import NetworkConfig, generate_chemical_repository, \
    generate_network
from repro.errors import PipelineError
from repro.graph import complete_graph, cycle_graph, path_graph
from repro.query import GraphMatch, QueryResultSet
from repro.vqi import (
    ResultsPanel,
    group_results,
    render_results_panel_svg,
    results_complexity_reduction,
)


def fake_results(graphs):
    matches = [GraphMatch(i, g, [{}]) for i, g in enumerate(graphs)]
    return QueryResultSet(matches, graphs_searched=len(graphs),
                          graphs_pruned=0)


class TestGrouping:
    def test_isomorphic_results_fold(self):
        shifted = cycle_graph(5, label="A").relabeled(
            {0: 4, 1: 0, 2: 1, 3: 2, 4: 3})
        results = fake_results([cycle_graph(5, label="A"), shifted,
                                path_graph(4, label="A")])
        groups = group_results(results)
        assert len(groups) == 2
        assert groups[0].count == 2  # the two cycles
        assert len(groups[0].graph_names) == 2

    def test_ordering_by_multiplicity(self):
        results = fake_results([path_graph(3, label="A")] * 3
                               + [complete_graph(4, label="A")])
        groups = group_results(results)
        assert groups[0].count == 3

    def test_max_graphs_cap(self):
        results = fake_results([path_graph(3, label="A")] * 10)
        groups = group_results(results, max_graphs=4)
        assert groups[0].count == 4

    def test_empty(self):
        assert group_results(fake_results([])) == []


class TestReduction:
    def test_full_fold_on_identical_structures(self):
        results = fake_results([cycle_graph(4, label="A")] * 8)
        stats = results_complexity_reduction(results)
        assert stats["items"] == 8.0
        assert stats["groups"] == 1.0
        assert stats["reduction"] == pytest.approx(7 / 8)

    def test_no_fold_on_distinct_structures(self):
        results = fake_results([path_graph(n, label="A")
                                for n in range(2, 6)])
        stats = results_complexity_reduction(results)
        assert stats["reduction"] == 0.0

    def test_empty(self):
        stats = results_complexity_reduction(fake_results([]))
        assert stats["items"] == 0.0


class TestNetworkResultsFold:
    def test_network_query_results_fold_hard(self):
        """All embeddings of one query are isomorphic -> one group."""
        network = generate_network(NetworkConfig(nodes=150), seed=63)
        vqi = build_vqi(network, PatternBudget(4, min_size=4,
                                               max_size=7))
        vqi.query_panel.builder.add_pattern(vqi.pattern_panel.canned[0])
        results = vqi.execute(max_embeddings=8)
        stats = results_complexity_reduction(results)
        if stats["items"] > 1:
            assert stats["reduction"] > 0.5


class TestRendering:
    def test_svg_with_badges(self):
        results = fake_results([cycle_graph(4, label="A")] * 3)
        svg = render_results_panel_svg(results)
        assert svg.startswith("<svg")
        assert ">x3<" in svg

    def test_max_groups_cap(self):
        results = fake_results([path_graph(n, label="A")
                                for n in range(2, 10)])
        svg = render_results_panel_svg(results, columns=2,
                                       max_groups=4)
        # 4 group cards + background rect
        assert svg.count("<rect") == 5

    def test_panel_integration(self):
        panel = ResultsPanel()
        with pytest.raises(PipelineError):
            panel.render_svg()
        assert panel.grouped() == []
        panel.show(fake_results([cycle_graph(4, label="A")] * 2))
        assert len(panel.grouped()) == 1
        assert panel.render_svg().startswith("<svg")
