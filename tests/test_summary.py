"""Tests for graph closure and cluster summary graphs."""

import random

import pytest

from repro.errors import GraphError
from repro.graph import (
    build_graph,
    cycle_graph,
    gnm_random_graph,
    path_graph,
)
from repro.summary import (
    SummaryGraph,
    build_summary,
    closure_represents,
)


def labeled_path(labels, edge_labels=None):
    g = build_graph([(i, lab) for i, lab in enumerate(labels)])
    for i in range(len(labels) - 1):
        label = edge_labels[i] if edge_labels else ""
        g.add_edge(i, i + 1, label=label)
    return g


class TestMerge:
    def test_single_member_identity(self):
        g = labeled_path(["A", "B", "C"])
        summary = SummaryGraph()
        mapping = summary.merge(g)
        assert summary.order() == 3
        assert summary.size() == 2
        assert summary.member_count == 1
        assert closure_represents(summary, g, mapping)

    def test_merge_empty_rejected(self):
        from repro.graph import Graph
        summary = SummaryGraph()
        with pytest.raises(GraphError):
            summary.merge(Graph())

    def test_identical_members_fold(self):
        summary = SummaryGraph()
        m1 = summary.merge(labeled_path(["A", "B", "C"]))
        m2 = summary.merge(labeled_path(["A", "B", "C"]))
        # second member should map onto the first (no dummy growth)
        assert summary.order() == 3
        assert summary.size() == 2
        assert summary.member_count == 2
        assert all(summary.edges[key].support == 2
                   for key in summary.edges)

    def test_divergent_members_grow(self):
        summary = SummaryGraph()
        summary.merge(labeled_path(["A", "B"]))
        summary.merge(labeled_path(["X", "Y"]))
        # nothing shared: dummy extension keeps both represented
        assert summary.order() >= 3

    def test_label_sets_accumulate(self):
        summary = SummaryGraph()
        summary.merge(labeled_path(["A", "B", "C"]))
        summary.merge(labeled_path(["A", "B", "D"]))
        labels = set()
        for node in summary.nodes.values():
            labels |= node.labels
        assert {"A", "B", "C", "D"} <= labels

    def test_closure_property_for_all_members(self):
        rng = random.Random(3)
        members = [gnm_random_graph(6, 7, rng, labels=["A", "B"])
                   for _ in range(4)]
        summary = SummaryGraph()
        for member in members:
            mapping = summary.merge(member)
            assert closure_represents(summary, member, mapping)


class TestBuildSummary:
    def test_empty_cluster_rejected(self):
        with pytest.raises(GraphError):
            build_summary([])

    def test_member_bookkeeping(self):
        summary = build_summary([path_graph(3, label="A"),
                                 path_graph(4, label="A")])
        assert summary.member_count == 2
        assert len(summary.member_names) == 2

    def test_summary_at_least_largest_member(self):
        members = [path_graph(3, label="A"), cycle_graph(6, label="A")]
        summary = build_summary(members)
        assert summary.order() >= 6
        assert summary.size() >= 6

    def test_edge_support_totals(self):
        members = [path_graph(3, label="A") for _ in range(3)]
        summary = build_summary(members)
        assert summary.total_edge_support() == 6  # 2 edges x 3 members


class TestSampling:
    def test_to_graph_labels_from_sets(self):
        summary = build_summary([labeled_path(["A", "B"]),
                                 labeled_path(["A", "C"])])
        flat = summary.to_graph(random.Random(0))
        for node in flat.nodes():
            assert flat.node_label(node) in {"A", "B", "C"}

    def test_weighted_sampling_prefers_majority(self):
        summary = SummaryGraph()
        for _ in range(9):
            summary.merge(labeled_path(["A", "B"]))
        summary.merge(labeled_path(["A", "Z"]))
        rng = random.Random(1)
        node = next(n for n, info in summary.nodes.items()
                    if "Z" in info.labels)
        draws = [summary.sample_node_label(node, rng) for _ in range(200)]
        assert draws.count("Z") < draws.count("B")

    def test_edge_support_accessor(self):
        summary = build_summary([labeled_path(["A", "B"])])
        (u, v), = summary.edges.keys()
        assert summary.edge_support(u, v) == 1

    def test_repr(self):
        summary = build_summary([path_graph(2)])
        assert "members=1" in repr(summary)
