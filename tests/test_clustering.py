"""Tests for subtree features, FCT mining, similarity, and k-medoids."""

import random

import pytest

from repro.clustering import (
    MinedTree,
    closed_frequent_trees,
    connected_tree_subgraphs,
    distance_matrix_from_graphs,
    distance_matrix_from_vectors,
    feature_vector_from_vocabulary,
    kmedoids,
    mine_frequent_trees,
    repository_feature_matrix,
    silhouette_score,
    structural_distance,
    structural_similarity,
    tree_feature_counts,
    vector_cosine_distance,
    vector_euclidean,
)
from repro.errors import PipelineError
from repro.graph import (
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    is_tree,
    path_graph,
    star_graph,
)


class TestTreeSubgraphs:
    def test_all_yields_are_trees(self):
        g = complete_graph(4, label="A")
        for subset, subtree in connected_tree_subgraphs(g, 3):
            assert is_tree(subtree)
            assert subtree.size() == len(subset)

    def test_path_counts(self):
        # P4: 3 single edges, 2 two-edge paths, 1 three-edge path
        g = path_graph(4, label="A")
        sizes = [len(s) for s, _ in connected_tree_subgraphs(g, 3)]
        assert sizes.count(1) == 3
        assert sizes.count(2) == 2
        assert sizes.count(3) == 1

    def test_max_edges_respected(self):
        g = path_graph(6, label="A")
        assert all(len(s) <= 2
                   for s, _ in connected_tree_subgraphs(g, 2))

    def test_triangle_excluded(self):
        g = complete_graph(3, label="A")
        # 3 edges of K3 form a cycle, not a tree: only sizes 1 and 2
        sizes = [len(s) for s, _ in connected_tree_subgraphs(g, 3)]
        assert 3 not in sizes

    def test_feature_counts_isomorphism_classes(self):
        g = star_graph(3, label="A")
        counts = tree_feature_counts(g)
        # 3 edges (1 class), 3 cherries (1 class), 1 star (1 class)
        assert sorted(counts.values()) == [1, 3, 3]


class TestFrequentTrees:
    def test_min_support_filters(self):
        repo = [path_graph(3, label="A"), path_graph(3, label="A"),
                path_graph(2, label="B")]
        mined = mine_frequent_trees(repo, min_support=2)
        assert mined  # the A-A edge and A-A-A path occur twice
        assert all(t.support >= 2 for t in mined)

    def test_support_is_document_frequency(self):
        # one graph with many copies of an edge still counts once
        repo = [star_graph(5, label="A"), path_graph(2, label="A")]
        mined = mine_frequent_trees(repo, min_support=2)
        edge_tree = [t for t in mined if t.graph.size() == 1]
        assert len(edge_tree) == 1
        assert edge_tree[0].support == 2

    def test_empty_repo(self):
        assert mine_frequent_trees([], min_support=1) == []


class TestClosedTrees:
    def test_subsumed_tree_removed(self):
        # every graph contains A-A-A path; the A-A edge has the same
        # support and a frequent supertree -> not closed
        repo = [path_graph(3, label="A") for _ in range(3)]
        mined = mine_frequent_trees(repo, min_support=2)
        closed = closed_frequent_trees(mined)
        closed_sizes = sorted(t.graph.size() for t in closed)
        assert closed_sizes == [2]  # only the 2-edge path survives

    def test_distinct_support_kept(self):
        repo = [path_graph(3, label="A"), path_graph(3, label="A"),
                path_graph(2, label="A")]
        mined = mine_frequent_trees(repo, min_support=2)
        closed = closed_frequent_trees(mined)
        # edge has support 3, path2 support 2: both closed
        assert sorted(t.graph.size() for t in closed) == [1, 2]

    def test_empty_input(self):
        assert closed_frequent_trees([]) == []


class TestFeatureVectors:
    def test_vocabulary_vector_alignment(self):
        repo = [path_graph(4, label="A"), star_graph(3, label="A")]
        vocab = mine_frequent_trees(repo, min_support=1)
        matrix = repository_feature_matrix(repo, vocab)
        assert len(matrix) == 2
        assert all(len(row) == len(vocab) for row in matrix)

    def test_vector_counts_occurrences(self):
        repo = [path_graph(3, label="A")]
        vocab = mine_frequent_trees(repo, min_support=1)
        vector = feature_vector_from_vocabulary(star_graph(4, label="A"),
                                                vocab)
        edge_idx = next(i for i, t in enumerate(vocab)
                        if t.graph.size() == 1)
        assert vector[edge_idx] == 4.0


class TestSimilarity:
    def test_self_similarity(self):
        g = cycle_graph(5, label="A")
        assert structural_similarity(g, g) == pytest.approx(1.0)
        assert structural_distance(g, g) == pytest.approx(0.0)

    def test_different_structures_less_similar(self):
        a = path_graph(5, label="A")
        b = complete_graph(5, label="A")
        assert structural_similarity(a, b) < 0.99

    def test_matrix_properties(self):
        rng = random.Random(1)
        repo = [gnm_random_graph(6, 7, rng, labels=["A", "B"])
                for _ in range(4)]
        matrix = distance_matrix_from_graphs(repo)
        for i in range(4):
            assert matrix[i][i] == 0.0
            for j in range(4):
                assert matrix[i][j] == pytest.approx(matrix[j][i])

    def test_vector_metrics(self):
        assert vector_euclidean([0, 0], [3, 4]) == pytest.approx(5.0)
        assert vector_cosine_distance([1, 0], [1, 0]) == pytest.approx(0.0)
        assert vector_cosine_distance([1, 0], [0, 1]) == pytest.approx(1.0)
        assert vector_cosine_distance([0, 0], [1, 0]) == 1.0

    def test_vector_length_mismatch(self):
        with pytest.raises(ValueError):
            vector_euclidean([1], [1, 2])
        with pytest.raises(ValueError):
            vector_cosine_distance([1], [1, 2])

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            distance_matrix_from_vectors([[1.0]], metric="manhattan")

    def test_cosine_matrix_matches_pairwise_calls(self):
        # the matrix builder precomputes each vector's norm once;
        # entries must still equal the per-pair public function
        rng = random.Random(3)
        vectors = [[rng.uniform(-1, 1) for _ in range(5)]
                   for _ in range(6)]
        vectors.append([0.0] * 5)  # zero vector hits the norm guard
        matrix = distance_matrix_from_vectors(vectors, metric="cosine")
        for i, vi in enumerate(vectors):
            for j, vj in enumerate(vectors):
                if i == j:
                    assert matrix[i][j] == 0.0
                else:
                    assert matrix[i][j] == vector_cosine_distance(vi, vj)

    def test_matrix_workers_transparent(self):
        rng = random.Random(7)
        repo = [gnm_random_graph(6, 7, rng, labels=["A", "B"])
                for _ in range(5)]
        assert distance_matrix_from_graphs(repo, workers=1) == \
            distance_matrix_from_graphs(repo, workers=2)
        vectors = [[rng.uniform(0, 1) for _ in range(4)]
                   for _ in range(6)]
        for metric in ("euclidean", "cosine"):
            assert distance_matrix_from_vectors(vectors, metric=metric,
                                                workers=1) == \
                distance_matrix_from_vectors(vectors, metric=metric,
                                             workers=2)


class TestKMedoids:
    def block_distances(self):
        """Two obvious blocks: items 0-2 close, items 3-5 close."""
        n = 6
        matrix = [[0.0] * n for _ in range(n)]
        for i in range(n):
            for j in range(n):
                if i != j:
                    same = (i < 3) == (j < 3)
                    matrix[i][j] = 0.1 if same else 1.0
        return matrix

    def test_recovers_blocks(self):
        result = kmedoids(self.block_distances(), 2, seed=1)
        labels = result.labels
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_clusters_listing(self):
        result = kmedoids(self.block_distances(), 2, seed=0)
        groups = result.clusters()
        assert sorted(len(g) for g in groups) == [3, 3]

    def test_k_one(self):
        result = kmedoids(self.block_distances(), 1, seed=0)
        assert set(result.labels) == {0}

    def test_k_equals_n(self):
        matrix = self.block_distances()
        result = kmedoids(matrix, 6, seed=2)
        assert sorted(result.medoids) == list(range(6))
        assert result.cost == 0.0

    def test_validation(self):
        with pytest.raises(PipelineError):
            kmedoids([], 1)
        with pytest.raises(PipelineError):
            kmedoids([[0.0]], 0)
        with pytest.raises(PipelineError):
            kmedoids([[0.0]], 2)

    def test_deterministic(self):
        matrix = self.block_distances()
        a = kmedoids(matrix, 2, seed=7)
        b = kmedoids(matrix, 2, seed=7)
        assert a.labels == b.labels

    def test_silhouette_blocks_high(self):
        matrix = self.block_distances()
        result = kmedoids(matrix, 2, seed=1)
        assert silhouette_score(matrix, result.labels) > 0.7

    def test_silhouette_degenerate(self):
        assert silhouette_score([[0.0]], [0]) == 0.0
