"""Tests for repro.perf: deterministic pmap and the match cache.

The two contracts under test are the ones the performance layer is
allowed to exist by (DESIGN.md):

* **parallel == serial** — ``pmap`` at any worker count returns
  exactly what a serial comprehension returns, including for seeded
  randomized work, because seeds are split per item, not shared;
* **cached == uncached** — pipelines produce identical pattern sets
  and scores with the match cache on or off, while performing
  strictly fewer VF2 searches with it on.
"""

import random

import pytest

from repro.catapult import CatapultConfig, select_canned_patterns
from repro.datasets import (
    NetworkConfig,
    generate_chemical_repository,
    generate_network,
)
from repro.graph import Graph
from repro.matching import canonical_code, covered_edges
from repro.patterns import PatternBudget
from repro.patterns.base import Pattern
from repro.patterns.index import CoverageIndex
from repro.patterns.selection import SetScorer, greedy_select
from repro.perf import (
    MatchCache,
    cached_canonical_code,
    cached_covered_edges,
    derive_seed,
    derive_seeds,
    graph_fingerprint,
    pmap,
    reset_vf2_calls,
    resolve_workers,
    vf2_calls,
)
from repro.perf.executor import WORKERS_ENV
from repro.tattoo import TattooConfig, select_network_patterns


def _square(x):
    return x * x


def _seeded_walk(task):
    """Draw a few values from a per-task seed (must be module-level
    so process pools can pickle it)."""
    seed, steps = task
    rng = random.Random(seed)
    return [rng.randrange(1000) for _ in range(steps)]


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, 3) == derive_seed(42, 3)

    def test_distinct_per_index_and_root(self):
        seeds = {derive_seed(root, i) for root in (0, 1) for i in range(50)}
        assert len(seeds) == 100

    def test_fits_in_signed_64_bits(self):
        for i in range(20):
            assert 0 <= derive_seed(123, i) < 2 ** 63

    def test_derive_seeds_matches_elementwise(self):
        assert derive_seeds(7, 5) == [derive_seed(7, i) for i in range(5)]


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert resolve_workers(None) == 4

    def test_unset_and_malformed_mean_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1
        monkeypatch.setenv(WORKERS_ENV, "many")
        assert resolve_workers(None) == 1

    def test_floor_of_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-3) == 1


class TestPmap:
    def test_serial_matches_comprehension(self):
        items = list(range(25))
        assert pmap(_square, items, workers=1) == [_square(x) for x in items]

    def test_parallel_matches_serial(self):
        items = list(range(25))
        assert pmap(_square, items, workers=4) == \
            pmap(_square, items, workers=1)

    def test_order_preserved(self):
        items = [9, 1, 7, 3, 0, 12]
        assert pmap(_square, items, workers=2) == [x * x for x in items]

    def test_empty_input(self):
        assert pmap(_square, [], workers=4) == []

    def test_seeded_randomness_identical_across_worker_counts(self):
        tasks = [(seed, 6) for seed in derive_seeds(99, 8)]
        serial = pmap(_seeded_walk, tasks, workers=1)
        parallel = pmap(_seeded_walk, tasks, workers=3)
        assert serial == parallel

    def test_unpicklable_fn_falls_back_to_serial(self):
        # a lambda cannot cross a process boundary; pmap must degrade
        # gracefully and still return the right answers in order
        items = list(range(10))
        assert pmap(lambda x: x + 1, items, workers=2) == \
            [x + 1 for x in items]

    def test_chunksize_irrelevant_to_results(self):
        items = list(range(17))
        assert pmap(_square, items, workers=2, chunksize=1) == \
            pmap(_square, items, workers=2, chunksize=7)


class TestMatchCache:
    def test_lru_eviction_and_bounds(self):
        cache = MatchCache(max_entries=2)
        cache.store(("a",), 1)
        cache.store(("b",), 2)
        cache.lookup(("a",))  # refresh "a": "b" is now the LRU entry
        cache.store(("c",), 3)
        assert len(cache) == 2
        assert ("a",) in cache and ("c",) in cache
        assert ("b",) not in cache
        assert cache.evictions == 1

    def test_stats_counters(self):
        cache = MatchCache(max_entries=10)
        cache.store(("k",), "v")
        found, value = cache.lookup(("k",))
        assert found and value == "v"
        found, _ = cache.lookup(("missing",))
        assert not found
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_rejects_unusable_bound(self):
        with pytest.raises(ValueError):
            MatchCache(max_entries=0)


def _triangle(labels=("C", "C", "O")):
    g = Graph(name="tri")
    for i, lab in enumerate(labels):
        g.add_node(i, label=lab)
    g.add_edge(0, 1)
    g.add_edge(1, 2)
    g.add_edge(0, 2)
    return g


class TestFingerprint:
    def test_content_equality(self):
        assert graph_fingerprint(_triangle()) == \
            graph_fingerprint(_triangle())

    def test_label_sensitivity(self):
        assert graph_fingerprint(_triangle()) != \
            graph_fingerprint(_triangle(("C", "C", "N")))

    def test_in_place_mutation_invalidates_memo(self):
        g = _triangle()
        before = graph_fingerprint(g)
        g.set_node_label(2, "N")
        assert graph_fingerprint(g) != before
        g.set_node_label(2, "O")
        assert graph_fingerprint(g) == before


class TestCachedMatchers:
    def test_covered_edges_agrees_with_uncached(self):
        pattern = _triangle()
        repo = generate_chemical_repository(6, seed=3)
        cache = MatchCache()
        for graph in repo:
            direct = frozenset(covered_edges(pattern, graph,
                                             max_embeddings=50))
            first = cached_covered_edges(pattern, graph,
                                         max_embeddings=50, cache=cache)
            again = cached_covered_edges(pattern, graph,
                                         max_embeddings=50, cache=cache)
            assert first == direct
            assert again == direct

    def test_cache_hit_skips_vf2(self):
        pattern = _triangle()
        target = generate_chemical_repository(1, seed=3)[0]
        cache = MatchCache()
        reset_vf2_calls()
        cached_covered_edges(pattern, target, cache=cache)
        assert vf2_calls() == 1
        cached_covered_edges(pattern, target, cache=cache)
        assert vf2_calls() == 1  # answered from the cache

    def test_canonical_code_agrees(self):
        g = _triangle()
        cache = MatchCache()
        assert cached_canonical_code(g, cache=cache) == canonical_code(g)
        assert cached_canonical_code(g, cache=cache) == canonical_code(g)


@pytest.fixture(scope="module")
def small_repo():
    return generate_chemical_repository(16, seed=5)


@pytest.fixture(scope="module")
def small_network():
    return generate_network(NetworkConfig(nodes=120, cliques=3,
                                          petals=2, flowers=2), seed=4)


def _catapult(repo, **overrides):
    config = CatapultConfig(seed=7, walks_per_cluster=10, **overrides)
    return select_canned_patterns(repo, PatternBudget(4, min_size=4,
                                                      max_size=7), config)


def _tattoo(network, **overrides):
    config = TattooConfig(seed=7, **overrides)
    return select_network_patterns(network, PatternBudget(4, min_size=4,
                                                          max_size=8),
                                   config)


class TestPipelineEquivalence:
    def test_catapult_cache_transparent(self, small_repo):
        cached = _catapult(small_repo, use_cache=True)
        uncached = _catapult(small_repo, use_cache=False)
        assert cached.patterns.codes() == uncached.patterns.codes()
        assert cached.selection.score == \
            pytest.approx(uncached.selection.score)

    def test_catapult_workers_transparent(self, small_repo):
        serial = _catapult(small_repo, workers=1)
        parallel = _catapult(small_repo, workers=2)
        assert [c.code for c in serial.candidates] == \
            [c.code for c in parallel.candidates]
        assert serial.patterns.codes() == parallel.patterns.codes()
        assert serial.selection.score == \
            pytest.approx(parallel.selection.score)

    def test_tattoo_cache_transparent(self, small_network):
        cached = _tattoo(small_network, use_cache=True)
        uncached = _tattoo(small_network, use_cache=False)
        assert cached.patterns.codes() == uncached.patterns.codes()
        assert cached.selection.score == \
            pytest.approx(uncached.selection.score)

    def test_tattoo_workers_transparent(self, small_network):
        serial = _tattoo(small_network, workers=1)
        parallel = _tattoo(small_network, workers=2)
        assert serial.patterns.codes() == parallel.patterns.codes()
        assert serial.selection.score == \
            pytest.approx(parallel.selection.score)


class TestVf2CallReduction:
    """The acceptance property: caching strictly reduces VF2 work."""

    def _greedy_twice(self, repo, candidates, budget, cache, use_cache):
        """Two back-to-back selections, as MIDAS's scans do."""
        reset_vf2_calls()
        selections = []
        for _ in range(2):
            index = CoverageIndex(repo, max_embeddings=20, cache=cache,
                                  use_cache=use_cache)
            selections.append(greedy_select(candidates, budget,
                                            SetScorer(index)))
        return selections, vf2_calls()

    def test_fewer_vf2_calls_with_cache(self, small_repo):
        result = _catapult(small_repo)
        candidates = result.candidates
        assert candidates, "pipeline produced no candidates"
        budget = PatternBudget(3, min_size=4, max_size=7)
        uncached_sel, uncached_calls = self._greedy_twice(
            small_repo, candidates, budget, cache=None, use_cache=False)
        cached_sel, cached_calls = self._greedy_twice(
            small_repo, candidates, budget, cache=MatchCache(),
            use_cache=True)
        assert cached_calls < uncached_calls
        # the second cached pass is answered entirely from the cache,
        # so at most half the uncached VF2 searches can remain
        assert cached_calls <= uncached_calls // 2
        assert [s.patterns.codes() for s in cached_sel] == \
            [s.patterns.codes() for s in uncached_sel]

    def test_cache_stats_surface(self, small_repo):
        cache = MatchCache()
        index = CoverageIndex(small_repo, cache=cache)
        assert index.cache_stats() == cache.stats()
        uncached = CoverageIndex(small_repo, use_cache=False)
        assert uncached.cache_stats() is None
