"""Cross-cutting property-based tests (hypothesis).

Each class pins one invariant the library's algorithms rely on:
coverage monotonicity/submodularity, the swapping never-degrade
guarantee, truss-peeling consistency with the naive definition,
closure representation, SAX shape invariance, and query-builder
round-trips.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import Graph, edge_key, induced_subgraph, is_connected
from repro.matching import is_subgraph
from repro.patterns import (
    CoverageIndex,
    Pattern,
    PatternBudget,
    PatternSet,
    SetScorer,
    greedy_select,
)

SUPPRESSED = [HealthCheck.too_slow]


@st.composite
def labeled_graphs(draw, min_nodes=2, max_nodes=8, labels="AB"):
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    g = Graph()
    for i in range(n):
        g.add_node(i, label=draw(st.sampled_from(labels)))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = draw(st.lists(st.sampled_from(possible), unique=True,
                           max_size=len(possible)))
    for u, v in chosen:
        g.add_edge(u, v)
    return g


@st.composite
def connected_graphs(draw, min_nodes=2, max_nodes=7, labels="AB"):
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    g = Graph()
    for i in range(n):
        g.add_node(i, label=draw(st.sampled_from(labels)))
    # random spanning tree guarantees connectivity
    for i in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=i - 1))
        g.add_edge(i, parent)
    extra = [(i, j) for i in range(n) for j in range(i + 1, n)
             if not g.has_edge(i, j)]
    for u, v in draw(st.lists(st.sampled_from(extra), unique=True,
                              max_size=len(extra))) if extra else []:
        g.add_edge(u, v)
    return g


class TestCoverageProperties:
    @given(connected_graphs(), labeled_graphs(min_nodes=4, max_nodes=9))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=SUPPRESSED)
    def test_coverage_monotone_in_patterns(self, pattern_graph, data):
        index = CoverageIndex([data])
        p = Pattern(pattern_graph)
        single = index.set_coverage([p])
        assert 0.0 <= single <= 1.0
        # adding a pattern never lowers coverage
        assert index.set_coverage([p, p]) >= single - 1e-12

    @given(connected_graphs(max_nodes=5),
           connected_graphs(max_nodes=5),
           connected_graphs(max_nodes=5),
           labeled_graphs(min_nodes=4, max_nodes=9))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=SUPPRESSED)
    def test_marginal_coverage_submodular(self, g1, g2, g3, data):
        index = CoverageIndex([data])
        p1, p2, p3 = Pattern(g1), Pattern(g2), Pattern(g3)
        small_context = index.marginal_coverage(p3, [p1])
        large_context = index.marginal_coverage(p3, [p1, p2])
        assert large_context <= small_context + 1e-12

    @given(connected_graphs(max_nodes=6),
           labeled_graphs(min_nodes=4, max_nodes=9))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=SUPPRESSED)
    def test_solo_coverage_bounds_marginal(self, pattern_graph, data):
        index = CoverageIndex([data])
        p = Pattern(pattern_graph)
        q = Pattern(pattern_graph.copy())
        assert (index.marginal_coverage(p, [])
                <= index.solo_coverage(p) + 1e-12)


class TestSelectionProperties:
    @given(st.lists(connected_graphs(min_nodes=3, max_nodes=6),
                    min_size=1, max_size=6),
           labeled_graphs(min_nodes=5, max_nodes=9))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=SUPPRESSED)
    def test_greedy_respects_budget(self, pattern_graphs, data):
        candidates = [Pattern(g) for g in pattern_graphs]
        scorer = SetScorer(CoverageIndex([data]))
        budget = PatternBudget(3, min_size=3, max_size=6)
        result = greedy_select(candidates, budget, scorer)
        assert len(result.patterns) <= 3
        for pattern in result.patterns:
            assert budget.admits(pattern.graph)

    @given(st.lists(connected_graphs(min_nodes=3, max_nodes=6),
                    min_size=2, max_size=6),
           labeled_graphs(min_nodes=5, max_nodes=9))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=SUPPRESSED)
    def test_swapping_never_degrades(self, pattern_graphs, data):
        from repro.midas import multi_scan_swap
        patterns = [Pattern(g) for g in pattern_graphs]
        current, candidates = patterns[:1], patterns[1:]
        scorer = SetScorer(CoverageIndex([data]))
        _, stats = multi_scan_swap(current, candidates, scorer)
        assert stats.score_after >= stats.score_before - 1e-12


class TestPatternSetProperties:
    @given(st.lists(connected_graphs(min_nodes=2, max_nodes=5),
                    max_size=8))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=SUPPRESSED)
    def test_patternset_no_isomorphic_duplicates(self, graphs):
        pattern_set = PatternSet(Pattern(g) for g in graphs)
        codes = pattern_set.codes()
        assert len(codes) == len(set(codes))
        # every input is represented by an isomorphic member
        for g in graphs:
            assert Pattern(g) in pattern_set


class TestTrussProperties:
    @given(labeled_graphs(min_nodes=3, max_nodes=9))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=SUPPRESSED)
    def test_trussness_definition(self, g):
        """Every edge of trussness k lies in the k-truss: the subgraph
        of edges with trussness >= k has support >= k - 2 on it."""
        from repro.graph import edge_subgraph
        from repro.truss import edge_support, truss_decomposition
        trussness = truss_decomposition(g)
        assert set(trussness) == set(g.edges())
        for k in set(trussness.values()):
            edges_k = [e for e, t in trussness.items() if t >= k]
            sub = edge_subgraph(g, edges_k)
            support = edge_support(sub)
            assert all(s >= k - 2 for s in support.values())

    @given(labeled_graphs(min_nodes=3, max_nodes=9))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=SUPPRESSED)
    def test_trussness_at_least_two(self, g):
        from repro.truss import truss_decomposition
        assert all(k >= 2 for k in truss_decomposition(g).values())


class TestClosureProperties:
    @given(st.lists(connected_graphs(min_nodes=2, max_nodes=6),
                    min_size=1, max_size=5))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=SUPPRESSED)
    def test_every_member_represented(self, members):
        from repro.summary import SummaryGraph, closure_represents
        summary = SummaryGraph()
        for member in members:
            mapping = summary.merge(member)
            assert closure_represents(summary, member, mapping)

    @given(st.lists(connected_graphs(min_nodes=2, max_nodes=6),
                    min_size=1, max_size=5))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=SUPPRESSED)
    def test_summary_size_bounds(self, members):
        from repro.summary import build_summary
        summary = build_summary(members)
        assert summary.order() <= sum(m.order() for m in members)
        assert summary.order() >= max(m.order() for m in members)


class TestSamplingProperties:
    @given(labeled_graphs(min_nodes=4, max_nodes=10),
           st.integers(min_value=2, max_value=4),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=SUPPRESSED)
    def test_sampled_subgraphs_connected_and_answerable(self, g, size,
                                                        seed):
        from repro.datasets import sample_connected_subgraph
        sample = sample_connected_subgraph(g, size, random.Random(seed))
        if sample is not None:
            assert sample.order() == size
            assert is_connected(sample)
            assert is_subgraph(sample, g)


class TestQueryBuilderProperties:
    @given(connected_graphs(min_nodes=2, max_nodes=7))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=SUPPRESSED)
    def test_pattern_drop_reproduces_pattern(self, g):
        """Dropping a pattern yields a query isomorphic to it."""
        from repro.matching import are_isomorphic
        from repro.query import QueryBuilder
        builder = QueryBuilder()
        builder.add_pattern(Pattern(g))
        assert are_isomorphic(builder.query, g)


class TestSaxProperties:
    @given(st.lists(st.floats(min_value=-100, max_value=100,
                              allow_nan=False),
                    min_size=16, max_size=64),
           st.floats(min_value=0.1, max_value=10.0),
           st.floats(min_value=-50.0, max_value=50.0))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=SUPPRESSED)
    def test_sax_affine_invariance(self, values, scale, shift):
        from repro.timeseries import sax_word
        import numpy as np
        base = np.asarray(values)
        transformed = base * scale + shift
        assert sax_word(base) == sax_word(transformed)

    @given(st.lists(st.floats(min_value=-10, max_value=10,
                              allow_nan=False),
                    min_size=8, max_size=40))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=SUPPRESSED)
    def test_word_complexity_bounded(self, values):
        from repro.timeseries import sax_word, word_complexity
        word = sax_word(values, segments=8, alphabet=4)
        assert 0.0 <= word_complexity(word) < 1.0
