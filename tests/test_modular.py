"""Tests for the modular (Tzanikos-style) selection architecture."""

import pytest

from repro.datasets import generate_chemical_repository
from repro.errors import PipelineError
from repro.modular import (
    CLUSTERING_STAGES,
    EXTRACTION_STAGES,
    MERGING_STAGES,
    SIMILARITY_STAGES,
    ModularPipeline,
)
from repro.patterns import PatternBudget


@pytest.fixture(scope="module")
def repo():
    return generate_chemical_repository(25, seed=17)


@pytest.fixture(scope="module")
def budget():
    return PatternBudget(4, min_size=4, max_size=8)


class TestConfiguration:
    def test_registries_populated(self):
        assert set(SIMILARITY_STAGES) == {"feature_cosine",
                                          "frequent_trees"}
        assert set(CLUSTERING_STAGES) == {"kmedoids", "threshold"}
        assert set(MERGING_STAGES) == {"closure", "disjoint"}
        assert set(EXTRACTION_STAGES) == {"random_walk", "weighted_walk"}

    def test_unknown_stage_rejected(self):
        with pytest.raises(PipelineError):
            ModularPipeline(similarity="nope")
        with pytest.raises(PipelineError):
            ModularPipeline(clustering="nope")
        with pytest.raises(PipelineError):
            ModularPipeline(merging="nope")
        with pytest.raises(PipelineError):
            ModularPipeline(extraction="nope")

    def test_describe(self):
        pipeline = ModularPipeline()
        assert pipeline.describe().count("|") == 3


class TestExecution:
    def test_default_assembly_runs(self, repo, budget):
        result = ModularPipeline(seed=3).run(repo, budget)
        assert 0 < len(result.patterns) <= budget.max_patterns
        assert result.score > 0.0
        assert set(result.timings) == {"similarity", "clustering",
                                       "merging", "extraction",
                                       "selection"}

    def test_every_stage_combination_runs(self, repo, budget):
        """The architectural claim: all 16 assemblies are valid."""
        small = repo[:12]
        for similarity in SIMILARITY_STAGES:
            for clustering in CLUSTERING_STAGES:
                for merging in MERGING_STAGES:
                    for extraction in EXTRACTION_STAGES:
                        pipeline = ModularPipeline(
                            similarity=similarity, clustering=clustering,
                            merging=merging, extraction=extraction,
                            clusters=2, seed=1)
                        result = pipeline.run(small, budget)
                        assert len(result.patterns) >= 0
                        assert result.total_time() > 0.0

    def test_labels_cover_repository(self, repo, budget):
        result = ModularPipeline(seed=3).run(repo, budget)
        assert len(result.labels) == len(repo)

    def test_empty_repo_rejected(self, budget):
        with pytest.raises(PipelineError):
            ModularPipeline().run([], budget)

    def test_deterministic(self, repo, budget):
        a = ModularPipeline(seed=5).run(repo, budget)
        b = ModularPipeline(seed=5).run(repo, budget)
        assert a.patterns.codes() == b.patterns.codes()
