"""Durability suite: the on-disk store's crash-recovery contract.

Layered like the store itself:

* **framing / codecs** — frame scans classify damage as torn vs
  corrupt; graph, batch, and pattern payloads round-trip losslessly
  (names, insertion order, attributes, id gaps) and re-encode
  byte-identically;
* **WAL / segments / manifest** — torn tails truncate with a
  warning, sealed-region damage quarantines, the manifest's
  checksum turns bit rot into a typed error;
* **service recovery** — a durable service reopened after a clean
  shutdown serves a byte-identical pattern panel;
* **the crash matrix** — every scripted disk fault (``torn_write``,
  ``fsync_fail``, ``crash_after_n_records``, ``short_read``) at
  every durable site (WAL append/read, segment append/read, pattern
  blob write, manifest commit) recovers to the *pre-batch or the
  post-batch* pattern set, bitwise — never a hybrid, never a crash.

The same seed must yield the same outcome at every worker count —
``make store-smoke`` runs this file under ``REPRO_WORKERS=1``
and ``=4``.
"""

import os
import tempfile
import unittest
import warnings

from repro.core.pipeline import PipelineConfig
from repro.datasets import UpdateBatch, generate_chemical_repository
from repro.errors import (
    SimulatedCrash,
    StoreCorruptionError,
    StoreError,
    StoreWriteError,
)
from repro.graph.graph import Graph
from repro.patterns.base import Pattern, PatternBudget, PatternSet
from repro.perf.cache import graph_fingerprint
from repro.resilience import FaultPlan, FaultSpec, chaos
from repro.service import PatternService, strip_volatile, wire
from repro.store import (
    DiskBackend,
    MemoryBackend,
    WriteAheadLog,
    decode_graph_record,
    decode_pattern_blob,
    encode_graph_record,
    encode_pattern_blob,
    frame_record,
    load_manifest,
    scan_records,
    write_manifest,
)
from repro.store.format import (
    SCAN_CLEAN,
    SCAN_CORRUPT,
    SCAN_TORN,
    SEGMENT_MAGIC,
    WAL_MAGIC,
    decode_batch_record,
    encode_batch_record,
)
from repro.store.manifest import SITE_COMMIT
from repro.store.segments import SegmentStore
from repro.store import backends as backends_mod
from repro.store import segments as segments_mod
from repro.store import wal as wal_mod

BUDGET = PatternBudget(4, min_size=4, max_size=7)


def make_repo(size=10, seed=7):
    return generate_chemical_repository(size, seed=seed)


def make_batch():
    """A batch that changes the selected pattern set: four new
    molecules in, two founding members out."""
    extra = generate_chemical_repository(14, seed=11)[10:]
    return UpdateBatch(added=extra, removed=["mol0", "mol1"])


def disk_service(root):
    return PatternService(make_repo(),
                          PipelineConfig(budget=BUDGET, seed=3),
                          backend=DiskBackend(str(root)))


def pattern_bytes(service):
    response = service.dispatch("GET", "/v1/patterns")
    assert response.status == 200
    return wire.dumps(strip_volatile(response.body))


def sample_graphs():
    """Codec fixtures spanning the round-trip edge cases."""
    empty = Graph(name="empty")

    singleton = Graph(name="one")
    singleton.add_node(3, label="C")

    attrs = Graph(name="attrs")
    attrs.add_node(1, label="C", charge=-1, tag="alpha")
    attrs.add_node(2, label="N")
    attrs.add_edge(1, 2, label="double", order=2)

    gaps = Graph(name="id gaps / unicode π")
    for node in (100, 5, 9000, 7):  # deliberately unsorted
        gaps.add_node(node, label=f"L{node}")
    gaps.add_edge(100, 5, label="a")
    gaps.add_edge(9000, 7, label="b")

    return [empty, singleton, attrs, gaps] + list(make_repo(6, seed=5))


# ------------------------------------------------------------- framing


class TestFraming(unittest.TestCase):
    def test_scan_clean_round_trip(self):
        payloads = [b"alpha", b"", b"gamma" * 100]
        data = b"".join(frame_record(p) for p in payloads)
        scanned, end, verdict = scan_records(data)
        self.assertEqual(payloads, scanned)
        self.assertEqual(len(data), end)
        self.assertIs(SCAN_CLEAN, verdict)

    def test_torn_tail_stops_at_last_intact_frame(self):
        good = frame_record(b"kept")
        data = good + frame_record(b"torn-away")[:-3]
        scanned, end, verdict = scan_records(data)
        self.assertEqual([b"kept"], scanned)
        self.assertEqual(len(good), end)
        self.assertIs(SCAN_TORN, verdict)

    def test_checksum_failure_is_corrupt_not_torn(self):
        good = frame_record(b"kept")
        bad = bytearray(frame_record(b"bit-rotted"))
        bad[-1] ^= 0xFF
        scanned, end, verdict = scan_records(good + bytes(bad))
        self.assertEqual([b"kept"], scanned)
        self.assertEqual(len(good), end)
        self.assertIs(SCAN_CORRUPT, verdict)


# -------------------------------------------------------------- codecs


class TestGraphCodec(unittest.TestCase):
    def test_round_trip_is_lossless(self):
        for graph in sample_graphs():
            with self.subTest(graph=graph.name):
                decoded = decode_graph_record(
                    encode_graph_record(graph))
                self.assertEqual(graph.name, decoded.name)
                self.assertEqual(list(graph.nodes()),
                                 list(decoded.nodes()))
                self.assertEqual(list(graph.edges()),
                                 list(decoded.edges()))
                for node in graph.nodes():
                    self.assertEqual(graph.node_label(node),
                                     decoded.node_label(node))
                    self.assertEqual(graph.node_attrs(node),
                                     decoded.node_attrs(node))
                for u, v in graph.edges():
                    self.assertEqual(graph.edge_label(u, v),
                                     decoded.edge_label(u, v))
                    self.assertEqual(graph.edge_attrs(u, v),
                                     decoded.edge_attrs(u, v))

    def test_re_encoding_is_byte_identical(self):
        for graph in sample_graphs():
            record = encode_graph_record(graph)
            self.assertEqual(
                record,
                encode_graph_record(decode_graph_record(record)))

    def test_fingerprint_survives_the_round_trip(self):
        for graph in sample_graphs():
            decoded = decode_graph_record(encode_graph_record(graph))
            self.assertEqual(graph_fingerprint(graph),
                             graph_fingerprint(decoded))

    def test_same_content_different_name_gets_distinct_records(self):
        # graph_fingerprint collides here by design; the store's
        # exact-record address must not
        a = Graph(name="a")
        a.add_node(1, label="C")
        b = Graph(name="b")
        b.add_node(1, label="C")
        self.assertEqual(graph_fingerprint(a), graph_fingerprint(b))
        self.assertNotEqual(encode_graph_record(a),
                            encode_graph_record(b))

    def test_garbage_payload_raises_typed_corruption(self):
        with self.assertRaises(StoreCorruptionError):
            decode_graph_record(b"\x00\x01\x02not a record")
        with self.assertRaises(StoreCorruptionError):
            decode_graph_record(b"")


class TestBatchAndPatternCodecs(unittest.TestCase):
    def test_batch_round_trip(self):
        batch = make_batch()
        seq, decoded = decode_batch_record(
            encode_batch_record(42, batch))
        self.assertEqual(42, seq)
        self.assertEqual(batch.removed, decoded.removed)
        self.assertEqual([g.name for g in batch.added],
                         [g.name for g in decoded.added])
        self.assertEqual(
            [encode_graph_record(g) for g in batch.added],
            [encode_graph_record(g) for g in decoded.added])

    def test_pattern_blob_round_trip_keeps_display_order(self):
        patterns = PatternSet(
            Pattern(graph, source=f"test:{graph.name}")
            for graph in make_repo(5, seed=9))
        blob = encode_pattern_blob(patterns)
        decoded = decode_pattern_blob(blob)
        self.assertEqual([p.code for p in patterns],
                         [p.code for p in decoded])
        self.assertEqual([p.source for p in patterns],
                         [p.source for p in decoded])
        self.assertEqual(blob, encode_pattern_blob(decoded))

    def test_damaged_pattern_blob_is_fatal(self):
        patterns = PatternSet(
            Pattern(graph, source="t") for graph in make_repo(3))
        blob = encode_pattern_blob(patterns)
        with self.assertRaises(StoreCorruptionError):
            decode_pattern_blob(blob[:-4])  # torn
        with self.assertRaises(StoreCorruptionError):
            decode_pattern_blob(b"XXXXXXXX" + blob[8:])  # bad magic


# ----------------------------------------------------------------- WAL


class TestWriteAheadLog(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)
        self.path = os.path.join(self._tmp.name, "wal.log")

    def test_append_scan_respects_the_watermark(self):
        wal = WriteAheadLog(self.path)
        for seq in (1, 2, 3):
            wal.append(seq, make_batch())
        pending, truncated = wal.scan(watermark=1)
        self.assertEqual([2, 3], [seq for seq, _ in pending])
        self.assertEqual(0, truncated)
        wal.close()

    def test_torn_tail_truncates_with_a_warning(self):
        wal = WriteAheadLog(self.path)
        wal.append(1, make_batch())
        wal.close()
        intact = os.path.getsize(self.path)
        with open(self.path, "ab") as handle:
            handle.write(b"\x99" * 11)  # a crash mid-append
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            pending, truncated = wal.scan(watermark=0)
        self.assertEqual([1], [seq for seq, _ in pending])
        self.assertEqual(11, truncated)
        self.assertEqual(intact, os.path.getsize(self.path))
        self.assertTrue(any("truncating" in str(w.message)
                            for w in caught))

    def test_checkpoint_drops_folded_records(self):
        wal = WriteAheadLog(self.path)
        for seq in (1, 2, 3):
            wal.append(seq, make_batch())
        wal.checkpoint(2)
        pending, _ = wal.scan(watermark=0)
        self.assertEqual([3], [seq for seq, _ in pending])
        wal.close()


# ------------------------------------------------------------ segments


class TestSegments(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)
        self.root = self._tmp.name

    def seal(self, store):
        return [dict(entry) for entry in store.entries]

    def test_append_dedupes_identical_records(self):
        store = SegmentStore(self.root)
        graphs = list(make_repo(4))
        self.assertEqual(4, store.append(graphs))
        self.assertEqual(0, store.append(graphs))  # all stored
        store.close()

    def test_unsealed_tail_is_truncated_back(self):
        store = SegmentStore(self.root)
        store.append(make_repo(3))
        sealed = self.seal(store)  # manifest commits here
        store.append(generate_chemical_repository(5, seed=11)[3:])
        store.close()
        fresh = SegmentStore(self.root)
        graphs, quarantined, repaired = fresh.load(sealed)
        self.assertEqual(3, len(graphs))
        self.assertEqual([], quarantined)
        self.assertEqual([sealed[0]["name"]], repaired)
        self.assertEqual(int(sealed[0]["bytes"]), os.path.getsize(
            os.path.join(self.root, str(sealed[0]["name"]))))

    def test_sealed_region_damage_quarantines_the_segment(self):
        store = SegmentStore(self.root)
        store.append(make_repo(3))
        sealed = self.seal(store)
        store.close()
        path = os.path.join(self.root, str(sealed[0]["name"]))
        with open(path, "r+b") as handle:
            handle.seek(len(SEGMENT_MAGIC) + 20)
            handle.write(b"\xff\xfe")  # bit rot inside the seal
        fresh = SegmentStore(self.root)
        graphs, quarantined, repaired = fresh.load(sealed)
        self.assertEqual({}, graphs)
        self.assertEqual([sealed[0]["name"]], quarantined)
        self.assertFalse(os.path.exists(path))
        self.assertTrue(os.path.exists(path + ".quarantined"))

    def test_missing_segment_file_quarantines(self):
        fresh = SegmentStore(self.root)
        graphs, quarantined, _ = fresh.load(
            [{"name": "seg-000001.seg", "bytes": 99, "records": 1}])
        self.assertEqual({}, graphs)
        self.assertEqual(["seg-000001.seg"], quarantined)


# ------------------------------------------------------------ manifest


class TestManifest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)
        self.path = os.path.join(self._tmp.name, "manifest.json")

    def document(self):
        return {"wal_seq": 7, "generator": "catapult",
                "network": False, "segments": [],
                "repository": [], "patterns": {"file": "p.bin"}}

    def test_absent_manifest_loads_as_none(self):
        self.assertIsNone(load_manifest(self.path))

    def test_round_trip(self):
        write_manifest(self.path, self.document())
        loaded = load_manifest(self.path)
        self.assertEqual(7, loaded["wal_seq"])
        self.assertIn("checksum", loaded)

    def test_tampered_manifest_fails_its_checksum(self):
        write_manifest(self.path, self.document())
        with open(self.path, "r", encoding="utf-8") as handle:
            text = handle.read()
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write(text.replace('"wal_seq": 7', '"wal_seq": 8'))
        with self.assertRaises(StoreCorruptionError):
            load_manifest(self.path)

    def test_non_json_manifest_is_typed_corruption(self):
        with open(self.path, "wb") as handle:
            handle.write(b"\x00garbage")
        with self.assertRaises(StoreCorruptionError):
            load_manifest(self.path)


# ---------------------------------------------------- service recovery


class TestServiceRecovery(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)
        self.root = self._tmp.name

    def test_memory_backend_never_recovers(self):
        service = PatternService(make_repo(),
                                 PipelineConfig(budget=BUDGET, seed=3),
                                 backend=MemoryBackend())
        self.assertIsNone(service.recovery)
        service.close()

    def test_clean_restart_serves_identical_patterns(self):
        service = disk_service(self.root)
        self.assertIsNone(service.recovery)  # cold start built
        service.apply_maintenance(make_batch())
        expected = pattern_bytes(service)
        service.close()

        recovered = disk_service(self.root)
        self.assertIsNotNone(recovered.recovery)
        report = recovered.recovery.to_dict()
        self.assertFalse(report["degraded"])
        self.assertEqual(0, report["pending_batches"])
        self.assertEqual(expected, pattern_bytes(recovered))
        recovered.close()

    def test_maintain_via_http_survives_a_restart(self):
        service = disk_service(self.root)
        extra = generate_chemical_repository(14, seed=11)[10:]
        from repro.graph.io import graph_to_dict
        response = service.dispatch(
            "POST", "/v1/patterns/maintain",
            {"add": [graph_to_dict(g) for g in extra],
             "remove": ["mol0"]})
        self.assertEqual(200, response.status)
        expected = pattern_bytes(service)
        service.close()
        recovered = disk_service(self.root)
        self.assertEqual(expected, pattern_bytes(recovered))
        recovered.close()


# -------------------------------------------------------- crash matrix


#: (site, kind, expected recovery state).  WAL-append faults land
#: before anything applied — recovery must serve the pre-batch set;
#: once the WAL record is durable, every later fault recovers to the
#: post-batch set by replay.
CRASH_MATRIX = [
    (wal_mod.SITE_APPEND, "torn_write", "pre"),
    (wal_mod.SITE_APPEND, "fsync_fail", "pre"),
    (wal_mod.SITE_APPEND, "crash_after_n_records", "post"),
    (segments_mod.SITE_APPEND, "torn_write", "post"),
    (segments_mod.SITE_APPEND, "fsync_fail", "post"),
    (backends_mod.SITE_PATTERNS, "torn_write", "post"),
    (backends_mod.SITE_PATTERNS, "fsync_fail", "post"),
    (SITE_COMMIT, "torn_write", "post"),
    (SITE_COMMIT, "crash_after_n_records", "post"),
]


class TestCrashMatrix(unittest.TestCase):
    """Every scripted crash point recovers to pre or post, bitwise."""

    @classmethod
    def setUpClass(cls):
        # control stores pin the two legal recovery states once
        with tempfile.TemporaryDirectory() as tmp:
            control = disk_service(tmp)
            cls.pre = pattern_bytes(control)
            control.apply_maintenance(make_batch())
            cls.post = pattern_bytes(control)
            control.close()

    def test_the_two_legal_states_differ(self):
        self.assertNotEqual(self.pre, self.post)

    def faulted_store(self, site, kind):
        """A store directory whose maintain died at (site, kind);
        returns its root for recovery."""
        tmp = tempfile.TemporaryDirectory()
        self.addCleanup(tmp.cleanup)
        service = disk_service(tmp.name)
        plan = FaultPlan([FaultSpec(site, kind, at_calls=[1])],
                         seed=13)
        with chaos(plan):
            with self.assertRaises((SimulatedCrash, StoreWriteError)):
                service.apply_maintenance(make_batch())
        self.assertEqual(1, len(plan.fired))
        service.close()
        return tmp.name

    def test_every_crash_point_recovers_bitwise(self):
        for site, kind, expected in CRASH_MATRIX:
            with self.subTest(site=site, kind=kind):
                root = self.faulted_store(site, kind)
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore")
                    recovered = disk_service(root)
                want = self.pre if expected == "pre" else self.post
                self.assertEqual(want, pattern_bytes(recovered))
                self.assertFalse(recovered.recovery.degraded)
                recovered.close()

    def test_http_maintain_maps_the_crash_to_a_500(self):
        tmp = tempfile.TemporaryDirectory()
        self.addCleanup(tmp.cleanup)
        service = disk_service(tmp.name)
        from repro.graph.io import graph_to_dict
        extra = generate_chemical_repository(14, seed=11)[10:]
        plan = FaultPlan([FaultSpec(wal_mod.SITE_APPEND, "torn_write",
                                    at_calls=[1])], seed=13)
        with chaos(plan):
            response = service.dispatch(
                "POST", "/v1/patterns/maintain",
                {"add": [graph_to_dict(g) for g in extra],
                 "remove": ["mol0", "mol1"]})
        self.assertEqual(500, response.status)
        self.assertIn("error", response.body)
        service.close()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            recovered = disk_service(tmp.name)
        self.assertEqual(self.pre, pattern_bytes(recovered))
        recovered.close()

    def test_short_read_on_the_wal_rolls_back_to_pre(self):
        # the batch is durable in the WAL, but the recovery boot's
        # read comes back short: the tail scans as torn, truncates,
        # and the store serves the pre-batch state
        root = self.faulted_store(wal_mod.SITE_APPEND,
                                  "crash_after_n_records")
        plan = FaultPlan([FaultSpec(wal_mod.SITE_READ, "short_read")],
                         seed=13)
        with chaos(plan):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                recovered = disk_service(root)
        self.assertGreater(
            recovered.recovery.truncated_wal_bytes, 0)
        self.assertEqual(self.pre, pattern_bytes(recovered))
        recovered.close()

    def small_roll_store(self):
        """A committed store spread over several small segments."""
        tmp = tempfile.TemporaryDirectory()
        self.addCleanup(tmp.cleanup)
        backend = DiskBackend(tmp.name)
        backend.segments.roll_bytes = 256  # force per-graph rolls
        service = PatternService(make_repo(),
                                 PipelineConfig(budget=BUDGET,
                                                seed=3),
                                 backend=backend)
        service.apply_maintenance(make_batch())
        names = [str(entry["name"])
                 for entry in backend.segments.entries]
        service.close()
        self.assertGreater(len(names), 1)
        return tmp.name, names

    def test_short_read_on_a_segment_quarantines_it(self):
        # sealed-region damage can't be rolled back: the hit segment
        # is set aside and reported, the rest of the repository and
        # the pattern panel (its own checksummed blob) survive
        root, names = self.small_roll_store()
        # the last segment holds a batch-added graph the manifest
        # still references (the first holds only removed members)
        plan = FaultPlan(
            [FaultSpec(segments_mod.SITE_READ, "short_read",
                       keys=[names[-1]])], seed=13)
        with chaos(plan):
            recovered = PatternService(
                make_repo(), PipelineConfig(budget=BUDGET, seed=3),
                backend=DiskBackend(root))
        report = recovered.recovery
        self.assertTrue(report.degraded)
        self.assertEqual([names[-1]], report.quarantined_segments)
        self.assertTrue(report.dropped_graphs)
        self.assertEqual(self.post, pattern_bytes(recovered))
        recovered.close()

    def test_total_segment_loss_is_typed_corruption(self):
        root, names = self.small_roll_store()
        plan = FaultPlan(
            [FaultSpec(segments_mod.SITE_READ, "short_read")],
            seed=13)  # every segment read comes back short
        with chaos(plan):
            with self.assertRaises(StoreCorruptionError):
                PatternService(
                    make_repo(),
                    PipelineConfig(budget=BUDGET, seed=3),
                    backend=DiskBackend(root))


# ------------------------------------------------- error taxonomy


class TestErrorTaxonomy(unittest.TestCase):
    def test_store_errors_are_repro_errors(self):
        from repro.errors import ReproError
        for cls in (StoreError, StoreCorruptionError,
                    StoreWriteError, SimulatedCrash):
            self.assertTrue(issubclass(cls, ReproError))

    def test_corruption_error_carries_its_path(self):
        error = StoreCorruptionError("bad frame", path="/x/y.seg")
        self.assertIn("/x/y.seg", str(error))


if __name__ == "__main__":
    unittest.main()
