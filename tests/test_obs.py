"""Tests for repro.obs: spans, capture, metrics, export.

The contracts under test are the observability layer's reasons to
exist (ISSUE 4): spans nest through ordinary ``with`` nesting and
cost one flag test when tracing is off; traces are identical at every
``pmap`` worker count once wall-clock fields are stripped; the
metrics registry resets without touching cached match entries; and
``repro.obs.snapshot()`` subsumes the legacy stats endpoints.
"""

import pytest

from repro import obs
from repro.obs import (
    NULL_SPAN,
    attach_record,
    capture,
    disable,
    enable,
    metrics,
    read_trace,
    reset_tracing,
    span,
    strip_wall_clock,
    take_roots,
    tracing_enabled,
    write_trace,
)
from repro.obs.export import format_trace, stage_breakdown, trace_envelope
from repro.perf import pmap
from tests.trace_schema import validate_envelope, validate_record


@pytest.fixture(autouse=True)
def _clean_tracing():
    """Every test starts and ends with tracing off and no spans."""
    reset_tracing()
    disable()
    yield
    reset_tracing()
    disable()


def _square(x):
    return x * x


class TestSpans:
    def test_disabled_span_is_the_shared_null_object(self):
        assert not tracing_enabled()
        assert span("anything") is NULL_SPAN
        assert span("other", items=3) is NULL_SPAN
        with span("noop") as s:
            s.add("ignored")
            s.annotate(also="ignored")
        assert take_roots() == []

    def test_nesting_and_counters(self):
        enable()
        with span("outer", items=2) as outer:
            with span("inner") as inner:
                inner.add("steps")
                inner.add("steps")
            outer.add("done", 1)
        (root,) = take_roots()
        assert root["name"] == "outer"
        assert root["counters"] == {"items": 2, "done": 1}
        assert root["duration"] >= 0.0
        (child,) = root["children"]
        assert child["name"] == "inner"
        assert child["counters"] == {"steps": 2}

    def test_string_counters_are_annotations_not_tallies(self):
        enable()
        with span("stage") as s:
            s.add("kind", "minor")
            s.add("kind", "major")  # last write wins
        (root,) = take_roots()
        assert root["counters"]["kind"] == "major"

    def test_module_level_add_targets_innermost_span(self):
        enable()
        with span("outer"):
            with span("inner"):
                obs.add("hits", 3)
        (root,) = take_roots()
        assert root["children"][0]["counters"] == {"hits": 3}

    def test_attach_record_preserves_call_order(self):
        enable()
        with span("parent"):
            attach_record({"name": "w0", "duration": 0.0,
                           "counters": {}, "children": []})
            attach_record({"name": "w1", "duration": 0.0,
                           "counters": {}, "children": []})
        (root,) = take_roots()
        assert [c["name"] for c in root["children"]] == ["w0", "w1"]


class TestCapture:
    def test_idle_capture_records_nothing(self):
        with capture("run") as run:
            run.add("ignored")
        assert run.record is None
        assert not tracing_enabled()

    def test_force_traces_one_run_without_global_state(self):
        with capture("run", force=True, size=5) as run:
            assert tracing_enabled()
            with span("stage") as s:
                s.add("work")
        assert not tracing_enabled()
        assert run.record["name"] == "run"
        assert run.record["counters"] == {"size": 5}
        assert [c["name"] for c in run.record["children"]] == ["stage"]
        # the capture owns its record: not also reported as a root
        assert take_roots() == []

    def test_nested_capture_degrades_to_child_span(self):
        with capture("outer", force=True) as outer:
            with capture("inner", force=True) as inner:
                with span("stage"):
                    pass
        assert [c["name"] for c in outer.record["children"]] == ["inner"]
        assert inner.record["name"] == "inner"
        assert [c["name"] for c in inner.record["children"]] == ["stage"]


class TestPmapTraces:
    def test_trace_tree_is_worker_count_invariant(self):
        trees = {}
        for workers in (1, 4):
            reset_tracing()
            with capture("run", force=True) as run:
                with span("fanout"):
                    results = pmap(_square, list(range(6)),
                                   workers=workers)
            assert results == [x * x for x in range(6)]
            trees[workers] = strip_wall_clock(run.record)
        assert trees[1] == trees[4]
        fanout = trees[1]["children"][0]
        assert [c["name"] for c in fanout["children"]] \
            == ["pmap.item"] * 6
        assert [c["counters"]["index"] for c in fanout["children"]] \
            == list(range(6))

    def test_untraced_pmap_attaches_nothing(self):
        assert pmap(_square, list(range(4)), workers=4) \
            == [0, 1, 4, 9]
        assert take_roots() == []


class TestMetrics:
    def test_registry_reset_isolation(self):
        metrics.inc("test.metric", 2)
        metrics.set_gauge("test.gauge", 7)
        metrics.observe("test.timer", 0.5)
        snap = obs.snapshot()
        assert snap["counters"]["test.metric"] == 2
        assert snap["gauges"]["test.gauge"] == 7
        assert snap["timers"]["test.timer"]["count"] == 1
        obs.reset()
        snap = obs.snapshot()
        assert "test.metric" not in snap["counters"]
        assert "test.gauge" not in snap["gauges"]
        assert snap["matching"]["hits"] == 0
        assert snap["matching"]["vf2_calls"] == 0

    def test_snapshot_subsumes_the_legacy_cache_stats(self):
        from repro.perf import cache_stats
        legacy = cache_stats()
        assert legacy == obs.matching_snapshot()
        for key in ("hits", "misses", "vf2_calls",
                    "canonical_memo_hits"):
            assert key in legacy

    def test_legacy_stats_aliases_warn_but_still_work(self):
        import pytest
        from repro.matching import canonical_memo_stats, kernel_stats
        from repro.perf import cache_stats
        with pytest.warns(DeprecationWarning):
            flat = cache_stats()
        with pytest.warns(DeprecationWarning):
            kernel = kernel_stats()
        with pytest.warns(DeprecationWarning):
            memo = canonical_memo_stats()
        # the aliases delegate: their data is the consolidated view's
        assert kernel.items() <= obs.matching_snapshot().items()
        assert memo["hits"] == \
            obs.matching_snapshot()["canonical_memo_hits"]
        assert set(flat) == set(obs.matching_snapshot())

    def test_consolidated_endpoint_does_not_warn(self):
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            obs.snapshot()
            obs.matching_snapshot()

    def test_pipeline_metrics_flow_into_the_registry(self):
        from repro.core import PipelineConfig, run_catapult
        from repro.datasets import generate_chemical_repository
        from repro.patterns import PatternBudget
        obs.reset()
        repo = generate_chemical_repository(8, seed=11)
        budget = PatternBudget(3, min_size=3, max_size=6)
        run_catapult(repo, PipelineConfig(budget=budget, seed=1))
        counters = obs.snapshot()["counters"]
        assert counters["perf.pmap.calls"] > 0
        assert counters["patterns.greedy.calls"] >= 1
        assert counters["patterns.coverage.patterns_indexed"] > 0


class TestExport:
    def _sample_record(self):
        with capture("run", force=True, size=2) as run:
            with span("stage.a") as s:
                s.add("items", 4)
            with span("stage.b"):
                pass
            with span("stage.b"):
                pass
        return run.record

    def test_round_trip_through_the_envelope(self, tmp_path):
        record = self._sample_record()
        path = str(tmp_path / "trace.json")
        write_trace([record], path)
        assert read_trace(path) == [record]

    def test_written_file_passes_the_schema_validator(self, tmp_path):
        record = self._sample_record()
        path = str(tmp_path / "trace.json")
        write_trace([record], path)
        import json
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert validate_envelope(payload) == []
        assert validate_record(record) == []
        assert validate_envelope(trace_envelope([])) \
            == ["envelope holds no traces"]

    def test_format_trace_is_an_indented_tree(self):
        text = format_trace(self._sample_record())
        lines = text.splitlines()
        assert lines[0].startswith("run:")
        assert "[size=2]" in lines[0]
        assert lines[1].startswith("  stage.a:")
        assert "items=4" in lines[1]

    def test_stage_breakdown_merges_same_named_stages(self):
        record = self._sample_record()
        breakdown = stage_breakdown(record)
        assert set(breakdown) == {"stage.a", "stage.b"}
        total = sum(breakdown.values())
        assert total <= record["duration"]

    def test_trace_env_variable_spellings(self):
        from repro.obs.tracing import _env_truthy
        assert all(_env_truthy(v) for v in ("1", "true", "YES", " on "))
        assert not any(_env_truthy(v) for v in (None, "", "0", "no"))
