"""Tests for pattern-based graph summarization."""

import pytest

from repro.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    disjoint_union,
    path_graph,
)
from repro.patterns import Pattern
from repro.summary import (
    label_grouping_summary,
    summarize_with_patterns,
)


def two_triangles_and_a_path():
    """Two disjoint triangles bridged by a path."""
    g = disjoint_union([complete_graph(3, label="A"),
                        complete_graph(3, label="A")])
    g.add_node(6, label="B")
    g.add_edge(2, 6)
    g.add_edge(6, 3)
    return g


class TestPatternSummary:
    def test_instances_collapse(self):
        g = two_triangles_and_a_path()
        result = summarize_with_patterns(
            g, [Pattern(complete_graph(3, label="A"))])
        assert len(result.instances) == 2
        # 2 supernodes + bridging node
        assert result.summary.order() == 3
        assert result.coverage() == pytest.approx(6 / 8)

    def test_supernode_labels_are_topologies(self):
        g = two_triangles_and_a_path()
        result = summarize_with_patterns(
            g, [Pattern(complete_graph(3, label="A"))])
        labels = [result.summary.node_label(v)
                  for v in result.summary.nodes()]
        assert labels.count("triangle") == 2

    def test_member_counts_recorded(self):
        g = two_triangles_and_a_path()
        result = summarize_with_patterns(
            g, [Pattern(complete_graph(3, label="A"))])
        members = sorted(result.summary.node_attrs(v).get("members", 0)
                         for v in result.summary.nodes())
        assert members == [1, 3, 3]

    def test_instances_are_disjoint(self):
        g = disjoint_union([cycle_graph(6, label="A")] * 3)
        result = summarize_with_patterns(
            g, [Pattern(cycle_graph(6, label="A"))])
        seen_nodes = set()
        for instance in result.instances:
            assert not (instance.nodes & seen_nodes)
            seen_nodes |= instance.nodes

    def test_superedge_multiplicity(self):
        g = two_triangles_and_a_path()
        result = summarize_with_patterns(
            g, [Pattern(complete_graph(3, label="A"))])
        total_multiplicity = sum(
            result.summary.edge_attrs(u, v).get("multiplicity", 0)
            for u, v in result.summary.edges())
        assert total_multiplicity == 2  # the two bridge edges

    def test_no_patterns_identity_like(self):
        g = path_graph(5, label="A")
        result = summarize_with_patterns(g, [])
        assert result.summary.order() == 5
        assert result.coverage() == 0.0

    def test_compression_metrics(self):
        g = two_triangles_and_a_path()
        result = summarize_with_patterns(
            g, [Pattern(complete_graph(3, label="A"))])
        assert result.node_compression() == pytest.approx(3 / 7)
        assert result.edge_compression() < 1.0

    def test_load_reduction_positive_for_dense_graph(self):
        g = disjoint_union([complete_graph(5, label="A")] * 2)
        g.add_edge(0, 5)
        result = summarize_with_patterns(
            g, [Pattern(complete_graph(5, label="A"))])
        assert result.load_reduction(g) > 0.0

    def test_max_instances_respected(self):
        g = disjoint_union([complete_graph(3, label="A")] * 5)
        result = summarize_with_patterns(
            g, [Pattern(complete_graph(3, label="A"))], max_instances=2)
        assert len(result.instances) == 2

    def test_empty_graph(self):
        result = summarize_with_patterns(Graph(), [])
        assert result.summary.order() == 0
        assert result.node_compression() == 1.0


class TestLabelGroupingBaseline:
    def test_one_supernode_per_label(self):
        g = two_triangles_and_a_path()
        result = label_grouping_summary(g)
        assert result.summary.order() == 2  # labels A and B

    def test_self_edges_dropped(self):
        g = complete_graph(4, label="X")
        result = label_grouping_summary(g)
        assert result.summary.order() == 1
        assert result.summary.size() == 0

    def test_members_recorded(self):
        g = two_triangles_and_a_path()
        result = label_grouping_summary(g)
        members = sorted(result.summary.node_attrs(v)["members"]
                         for v in result.summary.nodes())
        assert members == [1, 6]

    def test_pattern_summary_preserves_more_topology(self):
        """The tutorial's argument: pattern-based summaries keep
        readable structure; label grouping collapses it entirely."""
        g = two_triangles_and_a_path()
        pattern_based = summarize_with_patterns(
            g, [Pattern(complete_graph(3, label="A"))])
        label_based = label_grouping_summary(g)
        assert pattern_based.summary.order() > label_based.summary.order()
        assert pattern_based.coverage() > label_based.coverage()
