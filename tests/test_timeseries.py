"""Tests for the time-series sketch-query interface."""

import random

import numpy as np
import pytest

from repro.errors import BudgetError
from repro.timeseries import (
    SketchBudget,
    SketchVQI,
    TimeSeries,
    TimeSeriesError,
    generate_series,
    generate_series_collection,
    match_sketch,
    mine_sketch_candidates,
    paa,
    sax_word,
    select_canned_sketches,
    sketch_set_diversity,
    sliding_sax_words,
    word_complexity,
    word_distance,
    znorm,
)


class TestTimeSeries:
    def test_construction(self):
        ts = TimeSeries([1.0, 2.0, 3.0], name="x")
        assert len(ts) == 3

    def test_too_short(self):
        with pytest.raises(TimeSeriesError):
            TimeSeries([1.0])

    def test_znormalized(self):
        ts = TimeSeries([1.0, 2.0, 3.0, 4.0])
        z = ts.znormalized()
        assert abs(z.mean()) < 1e-9
        assert abs(z.std() - 1.0) < 1e-9

    def test_flat_znorm_zero(self):
        ts = TimeSeries([5.0] * 10)
        assert np.allclose(ts.znormalized(), 0.0)

    def test_window_bounds(self):
        ts = TimeSeries(list(range(10)))
        assert list(ts.window(2, 3)) == [2, 3, 4]
        with pytest.raises(TimeSeriesError):
            ts.window(8, 5)


class TestGenerators:
    def test_collection_deterministic(self):
        a = generate_series_collection(5, seed=1)
        b = generate_series_collection(5, seed=1)
        for s1, s2 in zip(a, b):
            assert np.allclose(s1.values, s2.values)

    def test_length_validation(self):
        with pytest.raises(TimeSeriesError):
            generate_series(random.Random(0), length=50,
                            motif_count=3, motif_length=40)

    def test_weights_validation(self):
        with pytest.raises(TimeSeriesError):
            generate_series(random.Random(0), motif_weights=[1.0])

    def test_negative_count(self):
        with pytest.raises(TimeSeriesError):
            generate_series_collection(-1)


class TestSax:
    def test_paa_means(self):
        values = np.array([1.0, 1.0, 3.0, 3.0])
        assert list(paa(values, 2)) == [1.0, 3.0]

    def test_paa_validation(self):
        with pytest.raises(TimeSeriesError):
            paa(np.array([1.0, 2.0]), 5)

    def test_sax_word_length_and_alphabet(self):
        word = sax_word(np.sin(np.linspace(0, 6, 64)), segments=8,
                        alphabet=4)
        assert len(word) == 8
        assert set(word) <= set("abcd")

    def test_sax_shape_invariance(self):
        """Scaling/shifting a shape leaves its SAX word unchanged."""
        base = np.sin(np.linspace(0, 6, 64))
        assert sax_word(base) == sax_word(3.0 * base + 100.0)

    def test_ramp_word_monotone(self):
        word = sax_word(np.linspace(0, 1, 64), segments=4, alphabet=4)
        assert list(word) == sorted(word)

    def test_unsupported_alphabet(self):
        with pytest.raises(TimeSeriesError):
            sax_word([1.0, 2.0, 3.0, 4.0], segments=2, alphabet=9)

    def test_sliding_words_count(self):
        ts = TimeSeries(list(range(20)))
        words = sliding_sax_words(ts, window=10, step=5)
        assert [start for start, _ in words] == [0, 5, 10]

    def test_sliding_step_validation(self):
        ts = TimeSeries(list(range(20)))
        with pytest.raises(TimeSeriesError):
            sliding_sax_words(ts, window=10, step=0)

    def test_word_complexity_ordering(self):
        flat = word_complexity("aaaaaaaa")
        ramp = word_complexity("aabbccdd")
        zigzag = word_complexity("adadadad")
        assert flat < ramp < zigzag
        assert 0.0 <= zigzag < 1.0


class TestSketchSelection:
    @pytest.fixture(scope="class")
    def collection(self):
        return generate_series_collection(30, seed=5)

    def test_mined_candidates_supported(self, collection):
        budget = SketchBudget(5, window=40)
        candidates = mine_sketch_candidates(collection, budget)
        assert candidates
        assert all(c.support >= 2 for c in candidates)

    def test_selection_respects_budget(self, collection):
        budget = SketchBudget(4, window=40)
        sketches = select_canned_sketches(collection, budget)
        assert 0 < len(sketches) <= 4

    def test_selected_words_distinct(self, collection):
        budget = SketchBudget(5, window=40)
        sketches = select_canned_sketches(collection, budget)
        words = [s.word for s in sketches]
        assert len(words) == len(set(words))

    def test_empty_collection_rejected(self):
        with pytest.raises(TimeSeriesError):
            select_canned_sketches([], SketchBudget(3))

    def test_budget_validation(self):
        with pytest.raises(BudgetError):
            SketchBudget(0)
        with pytest.raises(BudgetError):
            SketchBudget(3, window=2)

    def test_diversity_measure(self):
        from repro.timeseries import SketchPattern
        s1 = SketchPattern("aaaa", np.zeros(4), 1)
        s2 = SketchPattern("dddd", np.zeros(4), 1)
        assert sketch_set_diversity([s1, s2]) == 1.0
        assert sketch_set_diversity([s1, s1]) == 0.0
        assert sketch_set_diversity([s1]) == 1.0

    def test_word_distance_validation(self):
        with pytest.raises(TimeSeriesError):
            word_distance("ab", "abc")


class TestMatching:
    def test_planted_shape_found(self):
        rng = random.Random(7)
        series = generate_series(rng, name="target")
        # query = an exact window of the target series
        query = series.window(60, 40)
        matches = match_sketch(query, [series], top_k=1)
        assert matches
        assert matches[0].distance < 0.4

    def test_shape_invariant_matching(self):
        base = np.sin(np.linspace(0, 6, 50))
        ts = TimeSeries(np.concatenate([np.zeros(30), base * 5 + 10,
                                        np.zeros(30)]), name="scaled")
        matches = match_sketch(base, [ts], top_k=1)
        assert matches[0].distance < 0.1
        assert abs(matches[0].start - 30) <= 2

    def test_top_k(self):
        collection = generate_series_collection(10, seed=9)
        query = collection[0].window(0, 30)
        matches = match_sketch(query, collection, top_k=3)
        assert len(matches) == 3
        distances = [m.distance for m in matches]
        assert distances == sorted(distances)

    def test_short_query_rejected(self):
        with pytest.raises(TimeSeriesError):
            match_sketch([1.0], generate_series_collection(2, seed=1))


class TestSketchVQI:
    def test_end_to_end(self):
        collection = generate_series_collection(25, seed=11)
        vqi = SketchVQI(collection, SketchBudget(4, window=40))
        assert len(vqi.panel) > 0
        vqi.start_from_sketch(0)
        results = vqi.execute(top_k=5)
        assert results
        # the representative's own series should match near-perfectly
        assert results[0].distance < 0.05

    def test_draw_then_execute(self):
        collection = generate_series_collection(10, seed=12)
        vqi = SketchVQI(collection, SketchBudget(3, window=40))
        vqi.draw(np.linspace(0, 1, 30))
        assert vqi.execute(top_k=2)

    def test_execute_without_sketch_rejected(self):
        collection = generate_series_collection(5, seed=13)
        vqi = SketchVQI(collection, SketchBudget(3, window=40))
        with pytest.raises(TimeSeriesError):
            vqi.execute()
