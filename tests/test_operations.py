"""Unit tests for graph structural operations."""

import pytest

from repro.errors import GraphError, NodeNotFoundError
from repro.graph import (
    Graph,
    bfs_order,
    build_graph,
    complete_graph,
    connected_components,
    cycle_basis_sizes,
    cycle_graph,
    diameter,
    disjoint_union,
    edge_subgraph,
    flower_graph,
    induced_subgraph,
    is_clique,
    is_connected,
    is_cycle_graph,
    is_path_graph,
    is_star,
    is_tree,
    largest_component_subgraph,
    path_graph,
    petal_graph,
    shortest_path_length,
    star_graph,
    triangles,
)


def two_components():
    """Triangle (0-2) plus disjoint edge (3-4)."""
    return build_graph([(i, "A") for i in range(5)],
                       edges=[(0, 1), (1, 2), (0, 2), (3, 4)])


class TestTraversal:
    def test_bfs_order_starts_at_start(self):
        g = path_graph(4)
        assert bfs_order(g, 0) == [0, 1, 2, 3]

    def test_bfs_missing_start(self):
        with pytest.raises(NodeNotFoundError):
            bfs_order(Graph(), 0)

    def test_bfs_stays_in_component(self):
        g = two_components()
        assert set(bfs_order(g, 3)) == {3, 4}

    def test_connected_components(self):
        comps = connected_components(two_components())
        assert sorted(map(sorted, comps)) == [[0, 1, 2], [3, 4]]

    def test_is_connected(self):
        assert is_connected(path_graph(5))
        assert not is_connected(two_components())
        assert is_connected(Graph())

    def test_shortest_path_length(self):
        g = path_graph(5)
        assert shortest_path_length(g, 0, 4) == 4
        assert shortest_path_length(g, 2, 2) == 0

    def test_shortest_path_disconnected(self):
        assert shortest_path_length(two_components(), 0, 4) is None

    def test_diameter(self):
        assert diameter(path_graph(5)) == 4
        assert diameter(cycle_graph(6)) == 3
        assert diameter(complete_graph(4)) == 1

    def test_diameter_errors(self):
        with pytest.raises(GraphError):
            diameter(Graph())
        with pytest.raises(GraphError):
            diameter(two_components())


class TestSubgraphs:
    def test_induced_subgraph(self):
        g = two_components()
        sub = induced_subgraph(g, [0, 1, 3])
        assert sub.order() == 3
        assert sub.size() == 1
        assert sub.has_edge(0, 1)

    def test_induced_subgraph_missing_node(self):
        with pytest.raises(NodeNotFoundError):
            induced_subgraph(two_components(), [0, 99])

    def test_induced_preserves_labels(self):
        g = build_graph([(0, "X"), (1, "Y")], labeled_edges=[(0, 1, "e")])
        sub = induced_subgraph(g, [0, 1])
        assert sub.node_label(0) == "X"
        assert sub.edge_label(0, 1) == "e"

    def test_edge_subgraph(self):
        g = complete_graph(4)
        sub = edge_subgraph(g, [(0, 1), (1, 2)])
        assert sub.order() == 3
        assert sub.size() == 2
        assert not sub.has_edge(0, 2)

    def test_edge_subgraph_duplicate_edges_ok(self):
        g = complete_graph(3)
        sub = edge_subgraph(g, [(0, 1), (1, 0)])
        assert sub.size() == 1

    def test_edge_subgraph_missing_edge(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            edge_subgraph(g, [(0, 2)])

    def test_largest_component(self):
        sub = largest_component_subgraph(two_components())
        assert sorted(sub.nodes()) == [0, 1, 2]

    def test_largest_component_empty(self):
        assert largest_component_subgraph(Graph()).order() == 0


class TestTriangles:
    def test_triangle_count_k4(self):
        assert len(triangles(complete_graph(4))) == 4

    def test_no_triangles_in_tree(self):
        assert triangles(path_graph(6)) == []

    def test_triangles_unique(self):
        tris = triangles(complete_graph(5))
        assert len(tris) == len(set(tris)) == 10


class TestCycleBasis:
    def test_tree_has_empty_basis(self):
        assert cycle_basis_sizes(path_graph(6)) == []

    def test_single_cycle(self):
        assert cycle_basis_sizes(cycle_graph(5)) == [5]

    def test_k4_basis_count(self):
        # |E| - |V| + components = 6 - 4 + 1 = 3 independent cycles
        sizes = cycle_basis_sizes(complete_graph(4))
        assert len(sizes) == 3
        assert all(s >= 3 for s in sizes)

    def test_disconnected_basis(self):
        g = disjoint_union([cycle_graph(3), cycle_graph(4)])
        assert sorted(cycle_basis_sizes(g)) == [3, 4]

    def test_basis_size_matches_circuit_rank(self):
        g = petal_graph(3, 3)
        rank = g.size() - g.order() + 1
        assert len(cycle_basis_sizes(g)) == rank


class TestShapePredicates:
    def test_is_tree(self):
        assert is_tree(path_graph(4))
        assert is_tree(star_graph(5))
        assert not is_tree(cycle_graph(4))
        assert not is_tree(two_components())
        assert is_tree(Graph())

    def test_is_path_graph(self):
        assert is_path_graph(path_graph(2))
        assert is_path_graph(path_graph(7))
        assert not is_path_graph(star_graph(3))
        assert not is_path_graph(cycle_graph(4))
        assert not is_path_graph(Graph())

    def test_is_star(self):
        assert is_star(star_graph(3))
        assert is_star(star_graph(8))
        # P3 is simultaneously a path and a 2-leaf star; the topology
        # classifier resolves the tie in favour of "chain".
        assert is_star(path_graph(3))
        assert not is_star(path_graph(4))
        assert not is_star(cycle_graph(4))

    def test_is_cycle_graph(self):
        assert is_cycle_graph(cycle_graph(3))
        assert is_cycle_graph(cycle_graph(9))
        assert not is_cycle_graph(path_graph(3))
        assert not is_cycle_graph(complete_graph(4))

    def test_is_clique(self):
        assert is_clique(complete_graph(2))
        assert is_clique(complete_graph(5))
        assert not is_clique(cycle_graph(4))
        assert not is_clique(Graph())


class TestDisjointUnion:
    def test_union_counts(self):
        g = disjoint_union([path_graph(3), cycle_graph(3)])
        assert g.order() == 6
        assert g.size() == 5
        assert len(connected_components(g)) == 2

    def test_union_relabels_from_zero(self):
        g = disjoint_union([path_graph(2), path_graph(2)])
        assert sorted(g.nodes()) == [0, 1, 2, 3]

    def test_union_preserves_labels(self):
        a = build_graph([(0, "X")])
        b = build_graph([(0, "Y")])
        g = disjoint_union([a, b])
        assert sorted(g.label_multiset()) == ["X", "Y"]

    def test_union_empty_list(self):
        assert disjoint_union([]).order() == 0


class TestMotifGenerators:
    def test_petal_structure(self):
        g = petal_graph(2, 2)
        # anchors 0,1 + one interior node per petal
        assert g.order() == 4
        assert g.size() == 5
        assert g.degree(0) == 3 and g.degree(1) == 3

    def test_petal_cycle_rank(self):
        g = petal_graph(4, 3)
        assert g.size() - g.order() + 1 == 4

    def test_flower_structure(self):
        g = flower_graph(3, 3)
        assert g.degree(0) == 6
        assert len(triangles(g)) == 3

    def test_flower_validation(self):
        with pytest.raises(GraphError):
            flower_graph(0, 3)
        with pytest.raises(GraphError):
            flower_graph(1, 2)

    def test_generator_validation(self):
        with pytest.raises(GraphError):
            path_graph(0)
        with pytest.raises(GraphError):
            cycle_graph(2)
        with pytest.raises(GraphError):
            star_graph(0)
        with pytest.raises(GraphError):
            complete_graph(0)
        with pytest.raises(GraphError):
            petal_graph(1, 1)
