"""Tests for visual actions, the query builder, and the query engine."""

import pytest

from repro.datasets import NetworkConfig, generate_chemical_repository, \
    generate_network
from repro.errors import GraphError
from repro.graph import build_graph, cycle_graph, path_graph
from repro.patterns import Pattern
from repro.query import (
    AddEdge,
    AddNode,
    AddPattern,
    DeleteEdge,
    DeleteNode,
    MergeNodes,
    NetworkQueryEngine,
    QueryBuilder,
    QueryEngine,
    SetEdgeLabel,
    SetNodeLabel,
)


class TestQueryBuilder:
    def test_add_node_returns_fresh_ids(self):
        qb = QueryBuilder()
        assert qb.add_node("A") == 0
        assert qb.add_node("B") == 1
        assert qb.query.node_label(0) == "A"

    def test_add_edge(self):
        qb = QueryBuilder()
        u, v = qb.add_node("A"), qb.add_node("B")
        qb.add_edge(u, v, label="x")
        assert qb.query.edge_label(u, v) == "x"

    def test_set_labels(self):
        qb = QueryBuilder()
        u, v = qb.add_node(), qb.add_node()
        qb.add_edge(u, v)
        qb.apply(SetNodeLabel(u, "C"))
        qb.apply(SetEdgeLabel(u, v, "1"))
        assert qb.query.node_label(u) == "C"
        assert qb.query.edge_label(u, v) == "1"

    def test_add_pattern_maps_ids(self):
        qb = QueryBuilder()
        pattern = Pattern(cycle_graph(4, label="A"))
        mapping = qb.add_pattern(pattern)
        assert len(mapping) == 4
        assert qb.query.order() == 4
        assert qb.query.size() == 4

    def test_two_patterns_disjoint_ids(self):
        qb = QueryBuilder()
        p = Pattern(path_graph(3, label="A"))
        m1 = qb.add_pattern(p)
        m2 = qb.add_pattern(p)
        assert not (set(m1.values()) & set(m2.values()))

    def test_merge_nodes_rewires(self):
        qb = QueryBuilder()
        a = qb.add_node("A")
        b = qb.add_node("B")
        c = qb.add_node("C")
        qb.add_edge(b, c, label="e")
        qb.merge_nodes(a, b)
        assert not qb.query.has_node(b)
        assert qb.query.has_edge(a, c)
        assert qb.query.edge_label(a, c) == "e"

    def test_merge_validation(self):
        qb = QueryBuilder()
        a = qb.add_node()
        with pytest.raises(GraphError):
            qb.merge_nodes(a, a)
        with pytest.raises(GraphError):
            qb.merge_nodes(a, 99)

    def test_deletes(self):
        qb = QueryBuilder()
        a, b = qb.add_node(), qb.add_node()
        qb.add_edge(a, b)
        qb.apply(DeleteEdge(a, b))
        assert qb.query.size() == 0
        qb.apply(DeleteNode(b))
        assert qb.query.order() == 1

    def test_history_and_counts(self):
        qb = QueryBuilder()
        a, b = qb.add_node("A"), qb.add_node("B")
        qb.add_edge(a, b)
        assert qb.step_count() == 3
        assert qb.action_counts() == {"add_node": 2, "add_edge": 1}

    def test_action_descriptions(self):
        assert "add node" in AddNode("X").describe()
        assert "drop pattern" in AddPattern(
            Pattern(path_graph(3))).describe()
        assert "merge" in MergeNodes(0, 1).describe()


class TestQueryEngine:
    @pytest.fixture(scope="class")
    def repo(self):
        return generate_chemical_repository(25, seed=13)

    @pytest.fixture(scope="class")
    def engine(self, repo):
        return QueryEngine(repo)

    def test_label_pruning(self, engine, repo):
        query = build_graph([(0, "C"), (1, "ZZZ")], edges=[(0, 1)])
        assert engine.candidate_graphs(query) == []

    def test_run_finds_matches(self, engine, repo):
        query = build_graph([(0, "C"), (1, "C")],
                            labeled_edges=[(0, 1, "1")])
        results = engine.run(query)
        assert results.match_count() > 0
        # every reported embedding is valid
        for match in results.matches:
            for embedding in match.embeddings:
                for u, v in query.edges():
                    assert match.graph.has_edge(embedding[u],
                                                embedding[v])

    def test_embedding_cap(self, engine):
        query = build_graph([(0, "C"), (1, "C")],
                            labeled_edges=[(0, 1, "1")])
        results = engine.run(query, max_embeddings_per_graph=2)
        assert all(len(m.embeddings) <= 2 for m in results.matches)

    def test_max_matches(self, engine):
        query = build_graph([(0, "C"), (1, "C")],
                            labeled_edges=[(0, 1, "1")])
        results = engine.run(query, max_matches=3)
        assert results.match_count() <= 3

    def test_pruning_statistics(self, engine, repo):
        query = build_graph([(0, "S"), (1, "S")], edges=[(0, 1)])
        results = engine.run(query)
        assert results.graphs_searched + results.graphs_pruned == len(repo)

    def test_empty_query_rejected(self, engine):
        from repro.graph import Graph
        with pytest.raises(GraphError):
            engine.run(Graph())

    def test_wildcard_query_searches_everything(self, engine, repo):
        from repro.matching import WILDCARD
        query = build_graph([(0, WILDCARD), (1, WILDCARD)],
                            edges=[(0, 1)])
        assert len(engine.candidate_graphs(query)) == len(repo)

    def test_rarest_first_matches_brute_force(self, engine, repo):
        # the rarest-label-first intersection order is an optimization
        # only: candidates must equal the naive all-labels intersection
        query = build_graph([(0, "C"), (1, "O"), (2, "N"), (3, "S")],
                            edges=[(0, 1), (1, 2), (2, 3)])
        labels = {query.node_label(u) for u in query.nodes()}
        brute = [idx for idx in range(len(repo))
                 if labels <= set(repo[idx].label_multiset())]
        assert engine.candidate_graphs(query) == brute

    def test_absent_label_short_circuits(self, engine):
        # a label no graph carries empties the intersection regardless
        # of how common the other labels are
        query = build_graph([(0, "ZZZ"), (1, "C"), (2, "C")],
                            edges=[(0, 1), (1, 2)])
        assert engine.candidate_graphs(query) == []


class TestNetworkQueryEngine:
    def test_network_embeddings(self):
        net = generate_network(NetworkConfig(nodes=100), seed=3)
        engine = NetworkQueryEngine(net)
        label = net.node_label(next(iter(net.nodes())))
        query = build_graph([(0, label)])
        query.add_node(1, label=label)
        # may be 0 edges; add an edge only between two adjacent nodes
        from repro.graph import Graph
        q = Graph()
        u, v = next(iter(net.edges()))
        q.add_node(0, label=net.node_label(u))
        q.add_node(1, label=net.node_label(v))
        q.add_edge(0, 1, label=net.edge_label(u, v))
        embeddings = engine.run(q, max_embeddings=5)
        assert embeddings
        assert len(embeddings) <= 5

    def test_empty_query_rejected(self):
        net = generate_network(NetworkConfig(nodes=50), seed=3)
        from repro.graph import Graph
        with pytest.raises(GraphError):
            NetworkQueryEngine(net).run(Graph())
