"""Tests for graphlet counting and GFD drift, with an oracle check."""

import itertools
import math
import random

import pytest

from repro.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    induced_subgraph,
    is_connected,
    path_graph,
    star_graph,
)
from repro.graphlets import (
    GRAPHLET_KEYS,
    count_graphlets,
    gfd_distance,
    graphlet_frequency_distribution,
    repository_gfd,
)


def oracle_counts(graph):
    """Brute force: classify every connected induced 3/4-subset."""
    counts = {key: 0 for key in GRAPHLET_KEYS}
    nodes = sorted(graph.nodes())
    for k in (3, 4):
        for combo in itertools.combinations(nodes, k):
            sub = induced_subgraph(graph, combo)
            if not is_connected(sub) or sub.order() != k:
                continue
            m = sub.size()
            degrees = sorted(sub.degree(v) for v in combo)
            if k == 3:
                counts["g3_triangle" if m == 3 else "g3_path"] += 1
            else:
                if m == 3:
                    counts["g4_star" if degrees[-1] == 3 else "g4_path"] += 1
                elif m == 4:
                    counts["g4_tailed" if degrees[-1] == 3
                           else "g4_cycle"] += 1
                elif m == 5:
                    counts["g4_diamond"] += 1
                else:
                    counts["g4_clique"] += 1
    return counts


class TestCounts:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_oracle_on_random_graphs(self, seed):
        rng = random.Random(seed)
        g = gnm_random_graph(9, rng.randint(8, 16), rng)
        assert count_graphlets(g) == oracle_counts(g)

    def test_k4(self):
        counts = count_graphlets(complete_graph(4))
        assert counts["g3_triangle"] == 4
        assert counts["g4_clique"] == 1
        assert counts["g3_path"] == 0

    def test_path(self):
        counts = count_graphlets(path_graph(5))
        assert counts["g3_path"] == 3
        assert counts["g4_path"] == 2
        assert counts["g3_triangle"] == 0

    def test_star(self):
        counts = count_graphlets(star_graph(4))
        assert counts["g3_path"] == 6       # C(4,2) leaf pairs
        assert counts["g4_star"] == 4       # C(4,3) leaf triples

    def test_cycle(self):
        counts = count_graphlets(cycle_graph(5))
        assert counts["g3_path"] == 5
        assert counts["g4_path"] == 5
        assert counts["g4_cycle"] == 0

    def test_c4(self):
        assert count_graphlets(cycle_graph(4))["g4_cycle"] == 1

    def test_small_graph_zero(self):
        g = path_graph(2)
        assert sum(count_graphlets(g).values()) == 0


class TestDistributions:
    def test_frequencies_sum_to_one(self):
        gfd = graphlet_frequency_distribution(complete_graph(5))
        assert sum(gfd.values()) == pytest.approx(1.0)

    def test_tiny_graph_all_zero(self):
        gfd = graphlet_frequency_distribution(path_graph(2))
        assert all(v == 0.0 for v in gfd.values())

    def test_repository_gfd_pooled(self):
        repo = [path_graph(5), complete_graph(4)]
        gfd = repository_gfd(repo)
        assert sum(gfd.values()) == pytest.approx(1.0)
        # pooled counts: P5 has 3+2=5 graphlets, K4 has 4+1=5
        assert gfd["g3_path"] == pytest.approx(3 / 10)
        assert gfd["g3_triangle"] == pytest.approx(4 / 10)

    def test_empty_repository(self):
        gfd = repository_gfd([])
        assert all(v == 0.0 for v in gfd.values())


class TestDrift:
    def test_identical_zero(self):
        gfd = graphlet_frequency_distribution(cycle_graph(6))
        assert gfd_distance(gfd, gfd) == 0.0

    def test_symmetric(self):
        a = graphlet_frequency_distribution(path_graph(6))
        b = graphlet_frequency_distribution(complete_graph(6))
        assert gfd_distance(a, b) == pytest.approx(gfd_distance(b, a))

    def test_known_value(self):
        a = {"x": 1.0}
        b = {"x": 0.0, "y": 1.0}
        assert gfd_distance(a, b) == pytest.approx(math.sqrt(2.0))

    def test_structural_shift_detected(self):
        paths = [path_graph(6) for _ in range(5)]
        cliques = [complete_graph(5) for _ in range(5)]
        drift = gfd_distance(repository_gfd(paths), repository_gfd(cliques))
        assert drift > 0.5
