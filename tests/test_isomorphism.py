"""Tests for subgraph matching, including a brute-force oracle check."""

import itertools
import random

import pytest

from repro.graph import (
    Graph,
    build_graph,
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    path_graph,
    star_graph,
)
from repro.matching import (
    WILDCARD,
    are_isomorphic,
    count_embeddings,
    covered_edges,
    find_embedding,
    is_subgraph,
    labels_compatible,
    subgraph_embeddings,
)


def brute_force_embeddings(pattern, target, induced=False):
    """Oracle: enumerate all injective mappings and filter."""
    p_nodes = sorted(pattern.nodes())
    results = []
    for image in itertools.permutations(sorted(target.nodes()),
                                        len(p_nodes)):
        mapping = dict(zip(p_nodes, image))
        ok = True
        for u in p_nodes:
            if not labels_compatible(pattern.node_label(u),
                                     target.node_label(mapping[u])):
                ok = False
                break
        if not ok:
            continue
        for u, v in pattern.edges():
            if not target.has_edge(mapping[u], mapping[v]):
                ok = False
                break
            if not labels_compatible(
                    pattern.edge_label(u, v),
                    target.edge_label(mapping[u], mapping[v])):
                ok = False
                break
        if ok and induced:
            for u, v in itertools.combinations(p_nodes, 2):
                if (not pattern.has_edge(u, v)
                        and target.has_edge(mapping[u], mapping[v])):
                    ok = False
                    break
        if ok:
            results.append(mapping)
    return results


def as_key_set(mappings):
    return {tuple(sorted(m.items())) for m in mappings}


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(6))
    def test_monomorphism_matches_oracle(self, seed):
        rng = random.Random(seed)
        target = gnm_random_graph(8, 12, rng, labels=["A", "B"])
        pattern = gnm_random_graph(3, rng.randint(2, 3), rng,
                                   labels=["A", "B"])
        got = as_key_set(subgraph_embeddings(pattern, target))
        want = as_key_set(brute_force_embeddings(pattern, target))
        assert got == want

    @pytest.mark.parametrize("seed", range(6))
    def test_induced_matches_oracle(self, seed):
        rng = random.Random(100 + seed)
        target = gnm_random_graph(7, 10, rng, labels=["A", "B"])
        pattern = gnm_random_graph(3, 2, rng, labels=["A", "B"])
        got = as_key_set(subgraph_embeddings(pattern, target, induced=True))
        want = as_key_set(brute_force_embeddings(pattern, target,
                                                 induced=True))
        assert got == want

    def test_disconnected_pattern_matches_oracle(self):
        pattern = build_graph([(0, "A"), (1, "A"), (2, "B")],
                              edges=[(0, 1)])
        target = gnm_random_graph(7, 9, random.Random(5), labels=["A", "B"])
        got = as_key_set(subgraph_embeddings(pattern, target))
        want = as_key_set(brute_force_embeddings(pattern, target))
        assert got == want


class TestCounting:
    def test_triangle_in_k4(self):
        # 4 triangles x 6 automorphisms
        assert count_embeddings(complete_graph(3), complete_graph(4)) == 24

    def test_path_in_cycle(self):
        # n positions x 2 directions
        assert count_embeddings(path_graph(3), cycle_graph(6)) == 12

    def test_cap_respected(self):
        assert count_embeddings(path_graph(2), complete_graph(6), cap=5) == 5

    def test_pattern_larger_than_target(self):
        assert count_embeddings(path_graph(5), path_graph(3)) == 0

    def test_empty_pattern_one_embedding(self):
        assert count_embeddings(Graph(), path_graph(3)) == 1


class TestLabels:
    def test_label_mismatch_blocks(self):
        pattern = build_graph([(0, "X"), (1, "X")], edges=[(0, 1)])
        target = build_graph([(0, "X"), (1, "Y")], edges=[(0, 1)])
        assert not is_subgraph(pattern, target)

    def test_wildcard_node_label(self):
        pattern = build_graph([(0, WILDCARD), (1, "Y")], edges=[(0, 1)])
        target = build_graph([(0, "X"), (1, "Y")], edges=[(0, 1)])
        assert is_subgraph(pattern, target)

    def test_edge_label_mismatch_blocks(self):
        pattern = build_graph([(0, "A"), (1, "A")],
                              labeled_edges=[(0, 1, "double")])
        target = build_graph([(0, "A"), (1, "A")],
                             labeled_edges=[(0, 1, "single")])
        assert not is_subgraph(pattern, target)

    def test_wildcard_edge_label(self):
        pattern = build_graph([(0, "A"), (1, "A")],
                              labeled_edges=[(0, 1, WILDCARD)])
        target = build_graph([(0, "A"), (1, "A")],
                             labeled_edges=[(0, 1, "single")])
        assert is_subgraph(pattern, target)


class TestFindAndCover:
    def test_find_embedding_valid(self):
        pattern = cycle_graph(4, label="A")
        target = complete_graph(5, label="A")
        mapping = find_embedding(pattern, target)
        assert mapping is not None
        for u, v in pattern.edges():
            assert target.has_edge(mapping[u], mapping[v])

    def test_find_embedding_none(self):
        assert find_embedding(cycle_graph(3, label="A"),
                              path_graph(5, label="A")) is None

    def test_covered_edges_full_cover(self):
        covered = covered_edges(path_graph(2, label=""), complete_graph(4))
        assert covered == set(complete_graph(4).edges())

    def test_covered_edges_partial(self):
        target = build_graph([(0, "A"), (1, "A"), (2, "B"), (3, "B")],
                             edges=[(0, 1), (1, 2), (2, 3)])
        pattern = build_graph([(0, "A"), (1, "A")], edges=[(0, 1)])
        assert covered_edges(pattern, target) == {(0, 1)}

    def test_covered_edges_no_match(self):
        pattern = build_graph([(0, "Z"), (1, "Z")], edges=[(0, 1)])
        assert covered_edges(pattern, path_graph(4, label="A")) == set()


class TestInduced:
    def test_path_in_triangle_monomorphism_only(self):
        p3 = path_graph(3)
        tri = complete_graph(3)
        assert is_subgraph(p3, tri)
        assert not is_subgraph(p3, tri, induced=True)

    def test_induced_star_in_clique(self):
        assert not is_subgraph(star_graph(3), complete_graph(5),
                               induced=True)


class TestIsomorphism:
    def test_relabel_is_isomorphic(self):
        g = gnm_random_graph(8, 12, random.Random(2), labels=["A", "B"])
        mapping = {u: (u * 7) % 8 for u in range(8)}
        assert are_isomorphic(g, g.relabeled(mapping))

    def test_different_sizes_not_isomorphic(self):
        assert not are_isomorphic(path_graph(3), path_graph(4))

    def test_same_counts_different_structure(self):
        assert not are_isomorphic(star_graph(3), path_graph(4))

    def test_label_sensitive(self):
        a = build_graph([(0, "X"), (1, "Y")], edges=[(0, 1)])
        b = build_graph([(0, "X"), (1, "X")], edges=[(0, 1)])
        assert not are_isomorphic(a, b)

    def test_c6_vs_two_triangles(self):
        from repro.graph import disjoint_union
        two_tris = disjoint_union([complete_graph(3), complete_graph(3)])
        assert not are_isomorphic(cycle_graph(6), two_tris)
