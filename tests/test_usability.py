"""Tests for the usability simulator and study runner."""

import pytest

from repro.datasets import generate_chemical_repository, generate_workload
from repro.graph import build_graph, cycle_graph, path_graph
from repro.patterns import Pattern, default_basic_patterns
from repro.usability import (
    ActionTimeModel,
    SimulatedUser,
    StudyCondition,
    run_study,
    summarize_outcomes,
)


def labeled_target():
    """A benzene-like labeled query."""
    g = cycle_graph(6, label="C")
    for i in range(6):
        g.set_edge_label(i, (i + 1) % 6, "1")
    return g


class TestTimeModel:
    def test_known_kinds(self):
        model = ActionTimeModel()
        assert model.action_time("add_node") > 0
        with pytest.raises(KeyError):
            model.action_time("fly")

    def test_browse_time_grows_with_panel(self):
        model = ActionTimeModel()
        small = [Pattern(path_graph(3, label="A"))]
        large = small * 1 + [Pattern(cycle_graph(n, label="A"))
                             for n in range(3, 9)]
        assert model.browse_time(large) > model.browse_time(small)
        assert model.browse_time([]) == 0.0

    def test_load_increases_browse_time(self):
        model = ActionTimeModel()
        light = [Pattern(path_graph(3, label="A"))]
        heavy = [Pattern(cycle_graph(8, label="A"))]
        assert model.browse_time(heavy) > model.browse_time(light)


class TestManualFormulation:
    def test_step_accounting(self):
        user = SimulatedUser()
        target = labeled_target()
        outcome = user.formulate_manual(target)
        # 6 nodes + 6 node labels + 6 edges + 6 edge labels
        assert outcome.steps == 24
        assert outcome.errors == 0
        assert outcome.seconds > 0

    def test_unlabeled_elements_skip_label_steps(self):
        user = SimulatedUser()
        outcome = user.formulate_manual(path_graph(4))
        assert outcome.steps == 4 + 3  # nodes + edges only

    def test_errors_add_steps(self):
        careless = SimulatedUser(error_probability=0.5, seed=1)
        careful = SimulatedUser(error_probability=0.0, seed=1)
        target = labeled_target()
        bad = careless.formulate_manual(target)
        good = careful.formulate_manual(target)
        assert bad.errors > 0
        assert bad.steps > good.steps
        assert bad.seconds > good.seconds

    def test_error_probability_validation(self):
        with pytest.raises(ValueError):
            SimulatedUser(error_probability=1.5)


class TestPatternFormulation:
    def test_exact_pattern_one_drop(self):
        user = SimulatedUser()
        target = labeled_target()
        panel = [Pattern(labeled_target())]
        outcome = user.formulate_with_patterns(target, panel)
        assert outcome.pattern_uses == 1
        assert outcome.steps == 1  # one drop, nothing else

    def test_pattern_saves_vs_manual(self):
        user = SimulatedUser()
        target = labeled_target()
        panel = [Pattern(labeled_target())] + default_basic_patterns()
        with_patterns = user.formulate_with_patterns(target, panel)
        manual = user.formulate_manual(target)
        assert with_patterns.steps < manual.steps

    def test_falls_back_to_manual_when_useless(self):
        user = SimulatedUser()
        target = path_graph(4, label="Z")
        panel = [Pattern(cycle_graph(5, label="A"))]
        outcome = user.formulate_with_patterns(target, panel)
        manual = user.formulate_manual(target)
        assert outcome.pattern_uses == 0
        assert outcome.steps == manual.steps

    def test_merge_cost_counted(self):
        user = SimulatedUser()
        # two triangles sharing one node
        target = build_graph(
            [(i, "C") for i in range(5)],
            edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
        panel = [Pattern(cycle_graph(3, label="C"))]
        outcome = user.formulate_with_patterns(target, panel)
        assert outcome.pattern_uses == 2
        assert outcome.action_counts.get("merge_nodes", 0) >= 1

    def test_wildcard_patterns_need_label_fixes(self):
        from repro.matching import WILDCARD
        user = SimulatedUser()
        target = cycle_graph(4, label="C")
        panel = [Pattern(cycle_graph(4, label=WILDCARD))]
        outcome = user.formulate_with_patterns(target, panel)
        assert outcome.pattern_uses == 1
        assert outcome.action_counts.get("set_node_label", 0) == 4

    def test_formulated_query_is_complete(self):
        """Pattern mode covers every target edge and node."""
        user = SimulatedUser()
        repo = generate_chemical_repository(10, seed=23)
        workload = generate_workload(repo, 8, seed=24)
        panel = default_basic_patterns()
        for target in workload:
            outcome = user.formulate_with_patterns(target, panel)
            # steps account for at least every edge once (via pattern
            # or manual edge draw) — sanity lower bound
            assert outcome.steps >= 1


class TestStudies:
    def test_data_driven_beats_manual(self):
        repo = generate_chemical_repository(25, seed=29)
        workload = list(generate_workload(repo, 15, seed=30))
        from repro.catapult import select_canned_patterns
        from repro.patterns import PatternBudget
        result = select_canned_patterns(repo, PatternBudget(
            5, min_size=4, max_size=8))
        panel = default_basic_patterns() + list(result.patterns)
        study = run_study(workload, [
            StudyCondition("manual", []),
            StudyCondition("data-driven", panel),
        ], seed=2)
        assert study.step_reduction("manual", "data-driven") > 0.2
        assert study.speedup("manual", "data-driven") > 1.0

    def test_identical_seeds_fair_comparison(self):
        repo = generate_chemical_repository(10, seed=31)
        workload = list(generate_workload(repo, 5, seed=32))
        study = run_study(workload, [
            StudyCondition("a", []),
            StudyCondition("b", []),
        ], error_probability=0.1, seed=3)
        assert (study.by_name("a").summary
                == study.by_name("b").summary)

    def test_table_rows(self):
        repo = generate_chemical_repository(8, seed=33)
        workload = list(generate_workload(repo, 4, seed=34))
        study = run_study(workload, [StudyCondition("only", [])])
        rows = study.table_rows()
        assert len(rows) == 1
        assert rows[0]["condition"] == "only"
        assert rows[0]["queries"] == 4

    def test_unknown_condition(self):
        repo = generate_chemical_repository(8, seed=35)
        workload = list(generate_workload(repo, 3, seed=36))
        study = run_study(workload, [StudyCondition("x", [])])
        with pytest.raises(KeyError):
            study.by_name("nope")


class TestSummaries:
    def test_empty(self):
        summary = summarize_outcomes([])
        assert summary["queries"] == 0

    def test_means(self):
        user = SimulatedUser()
        outcomes = [user.formulate_manual(path_graph(3)),
                    user.formulate_manual(path_graph(5))]
        summary = summarize_outcomes(outcomes)
        assert summary["queries"] == 2
        assert summary["mean_steps"] == pytest.approx((5 + 9) / 2)
