"""Tests for the learning-curve (learnability/memorability) model."""

import pytest

from repro.datasets import generate_chemical_repository, generate_workload
from repro.patterns import PatternBudget, default_basic_patterns
from repro.usability import (
    ActionTimeModel,
    LearningCurve,
    practice_factor,
    practiced_time_model,
    simulate_learning,
)


@pytest.fixture(scope="module")
def setup():
    repo = generate_chemical_repository(20, seed=73)
    workload = list(generate_workload(repo, 6, seed=74))
    from repro.catapult import CatapultConfig, select_canned_patterns
    selection = select_canned_patterns(
        repo, PatternBudget(5, min_size=4, max_size=8),
        CatapultConfig(seed=1))
    panel = default_basic_patterns() + list(selection.patterns)
    return workload, panel


class TestPracticeFactor:
    def test_first_session_no_discount(self):
        assert practice_factor(1) == 1.0

    def test_monotone_decrease(self):
        factors = [practice_factor(n) for n in range(1, 8)]
        assert factors == sorted(factors, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            practice_factor(0)

    def test_practiced_model_scales_perceptual_only(self):
        base = ActionTimeModel()
        practiced = practiced_time_model(base, session=4)
        assert practiced.scan_seconds < base.scan_seconds
        assert practiced.interpret_seconds < base.interpret_seconds
        assert practiced.action_seconds == base.action_seconds
        assert (practiced.error_recovery_seconds
                == base.error_recovery_seconds)


class TestLearningCurve:
    def test_curve_monotone_improvement(self, setup):
        workload, panel = setup
        curve = simulate_learning(workload, panel, sessions=4, seed=1)
        assert curve.session_seconds == sorted(curve.session_seconds,
                                               reverse=True)

    def test_learnability_positive_with_panel(self, setup):
        workload, panel = setup
        curve = simulate_learning(workload, panel, sessions=5, seed=1)
        assert curve.learnability() > 0.0

    def test_memorability_between_extremes(self, setup):
        workload, panel = setup
        curve = simulate_learning(workload, panel, sessions=5,
                                  retention=0.6, seed=1)
        assert 0.0 < curve.memorability() <= 1.0
        # the post-break session sits between best and first
        assert (curve.session_seconds[-1] <= curve.post_break_seconds
                <= curve.session_seconds[0] + 1e-9)

    def test_full_retention_full_memorability(self, setup):
        workload, panel = setup
        curve = simulate_learning(workload, panel, sessions=4,
                                  retention=1.0, seed=1)
        assert curve.memorability() == pytest.approx(1.0, abs=0.05)

    def test_low_retention_lowers_memorability(self, setup):
        workload, panel = setup
        high = simulate_learning(workload, panel, sessions=5,
                                 retention=0.9, seed=1)
        low = simulate_learning(workload, panel, sessions=5,
                                retention=0.2, seed=1)
        assert low.memorability() <= high.memorability() + 1e-9

    def test_validation(self, setup):
        workload, panel = setup
        with pytest.raises(ValueError):
            simulate_learning(workload, panel, sessions=1)
        with pytest.raises(ValueError):
            simulate_learning(workload, panel, retention=1.5)

    def test_flat_curve_scores(self):
        curve = LearningCurve([10.0, 10.0], 10.0)
        assert curve.learnability() == 0.0
        assert curve.memorability() == 1.0
