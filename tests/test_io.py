"""Tests for graph serialization (JSON and .lg formats)."""

import random

import pytest

from repro.errors import FormatError, GraphInputError
from repro.graph import (
    Graph,
    build_graph,
    gnm_random_graph,
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
    read_lg,
    read_repository_json,
    write_lg,
    write_repository_json,
)


def sample():
    g = build_graph([(0, "C"), (1, "N"), (2, "O")],
                    labeled_edges=[(0, 1, "1"), (1, 2, "2")], name="mol")
    g.node_attrs(0)["charge"] = 1
    g.edge_attrs(0, 1)["order"] = 1
    return g


class TestJsonRoundtrip:
    def test_dict_roundtrip(self):
        g = sample()
        h = graph_from_dict(graph_to_dict(g))
        assert h.same_as(g)
        assert h.name == "mol"
        assert h.node_attrs(0) == {"charge": 1}
        assert h.edge_attrs(0, 1) == {"order": 1}

    def test_json_roundtrip(self):
        g = sample()
        assert graph_from_json(graph_to_json(g)).same_as(g)

    def test_json_indent(self):
        assert "\n" in graph_to_json(sample(), indent=2)

    def test_empty_graph(self):
        assert graph_from_json(graph_to_json(Graph())).order() == 0

    def test_malformed_json(self):
        with pytest.raises(FormatError):
            graph_from_json("{not json")

    def test_malformed_dict(self):
        with pytest.raises(FormatError):
            graph_from_dict({"nodes": [{"no_id": 1}], "edges": []})

    def test_random_graph_roundtrip(self):
        g = gnm_random_graph(15, 25, random.Random(3), labels=["A", "B"])
        assert graph_from_json(graph_to_json(g)).same_as(g)


class TestLgFormat:
    def test_roundtrip(self, tmp_path):
        graphs = [sample(), gnm_random_graph(8, 10, random.Random(1),
                                             labels=["X"])]
        path = tmp_path / "repo.lg"
        assert write_lg(graphs, path) == 2
        loaded = read_lg(path)
        assert len(loaded) == 2
        # ids are normalized on write; compare structure via normalization
        assert loaded[0].same_as(graphs[0].normalized())
        assert loaded[1].same_as(graphs[1].normalized())

    def test_names_preserved(self, tmp_path):
        path = tmp_path / "one.lg"
        write_lg([sample()], path)
        assert read_lg(path)[0].name == "mol"

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.lg"
        path.write_text("")
        assert read_lg(path) == []

    def test_vertex_before_header_rejected(self, tmp_path):
        path = tmp_path / "bad.lg"
        path.write_text("v 0 A\n")
        with pytest.raises(FormatError):
            read_lg(path)

    def test_unknown_record_rejected(self, tmp_path):
        path = tmp_path / "bad.lg"
        path.write_text("t # g\nz 1 2\n")
        with pytest.raises(FormatError):
            read_lg(path)

    def test_malformed_edge_rejected(self, tmp_path):
        path = tmp_path / "bad.lg"
        path.write_text("t # g\nv 0 A\ne 0\n")
        with pytest.raises(FormatError):
            read_lg(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "ok.lg"
        path.write_text("t # g\n\nv 0 A\nv 1 B\n\ne 0 1 x\n")
        g = read_lg(path)[0]
        assert g.size() == 1 and g.edge_label(0, 1) == "x"


class TestRepositoryJson:
    def test_roundtrip(self, tmp_path):
        rng = random.Random(9)
        graphs = [gnm_random_graph(6, 7, rng, labels=["A", "B"])
                  for _ in range(5)]
        path = tmp_path / "repo.json"
        assert write_repository_json(graphs, path) == 5
        loaded = read_repository_json(path)
        assert len(loaded) == 5
        for original, restored in zip(graphs, loaded):
            assert restored.same_as(original)

    def test_non_array_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"nodes": []}')
        with pytest.raises(FormatError):
            read_repository_json(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("nope")
        with pytest.raises(FormatError):
            read_repository_json(path)


class TestGraphInputError:
    """Malformed input surfaces as GraphInputError with file/line
    context (and still matches ``except FormatError``)."""

    def test_lg_error_carries_path_and_line(self, tmp_path):
        path = tmp_path / "bad.lg"
        path.write_text("t # g\nv 0 A\ne 0\n")
        with pytest.raises(GraphInputError) as caught:
            read_lg(path)
        assert caught.value.path == str(path)
        assert caught.value.line == 3
        assert f"{path}:3" in str(caught.value)

    def test_lg_header_errors_are_located(self, tmp_path):
        path = tmp_path / "bad.lg"
        path.write_text("v 0 A\n")
        with pytest.raises(GraphInputError) as caught:
            read_lg(path)
        assert caught.value.line == 1

    def test_repository_json_error_carries_path(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('[{"nodes": [{"id": "x"}], "edges": []}]')
        with pytest.raises(GraphInputError) as caught:
            read_repository_json(path)
        assert caught.value.path == str(path)

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[\nnope\n]")
        with pytest.raises(GraphInputError) as caught:
            read_repository_json(path)
        assert caught.value.line == 2

    def test_subclasses_format_error(self):
        assert issubclass(GraphInputError, FormatError)
        with pytest.raises(FormatError):
            graph_from_json("not json")

    def test_truncated_final_record_is_located(self, tmp_path):
        # a torn write leaves the file ending mid-record (no
        # terminating newline); the parser must refuse the whole
        # file rather than silently serve a truncated prefix
        path = tmp_path / "torn.lg"
        path.write_bytes(b"t # g\nv 0 A\nv 1 B\ne 0 1")
        with pytest.raises(GraphInputError) as caught:
            read_lg(path)
        assert caught.value.path == str(path)
        assert caught.value.line == 4
        assert "truncated" in str(caught.value)

    def test_trailing_binary_garbage_is_located(self, tmp_path):
        path = tmp_path / "garbage.lg"
        path.write_bytes(b"t # g\nv 0 A\n\x00\x01\x02garbage\n")
        with pytest.raises(GraphInputError) as caught:
            read_lg(path)
        assert caught.value.line == 3
        assert "NUL" in str(caught.value)

    def test_complete_trailing_newline_still_parses(self, tmp_path):
        # the regression's control: the same record, properly
        # terminated, parses fine
        path = tmp_path / "ok.lg"
        path.write_bytes(b"t # g\nv 0 A\nv 1 B\ne 0 1 x\n")
        g = read_lg(path)[0]
        assert g.size() == 1 and g.edge_label(0, 1) == "x"
