"""Tests for the TATTOO pipeline and its extractors."""

import random

import pytest

from repro.datasets import NetworkConfig, generate_network
from repro.errors import PipelineError
from repro.graph import Graph, is_connected
from repro.matching import is_subgraph
from repro.patterns import PatternBudget, TopologyClass, classify_topology
from repro.tattoo import (
    TattooConfig,
    extract_candidates,
    extract_chains,
    extract_cliques,
    extract_cycles,
    extract_flowers,
    extract_petals,
    extract_stars,
    extract_trees,
    select_network_patterns,
)
from repro.truss import split_by_truss


@pytest.fixture(scope="module")
def network():
    return generate_network(NetworkConfig(nodes=300, cliques=8,
                                          petals=6, flowers=5), seed=2)


@pytest.fixture(scope="module")
def budget():
    return PatternBudget(6, min_size=4, max_size=9)


@pytest.fixture(scope="module")
def regions(network):
    return split_by_truss(network)


class TestExtractors:
    def test_chains_are_chains(self, regions, budget):
        _, g_o = regions
        for p in extract_chains(g_o, budget, random.Random(1)):
            assert classify_topology(p.graph) == TopologyClass.CHAIN

    def test_stars_are_stars(self, regions, budget):
        _, g_o = regions
        for p in extract_stars(g_o, budget, random.Random(1)):
            assert classify_topology(p.graph) == TopologyClass.STAR

    def test_trees_are_acyclic(self, regions, budget):
        _, g_o = regions
        for p in extract_trees(g_o, budget, random.Random(1)):
            assert classify_topology(p.graph).is_acyclic()

    def test_cycles_are_cycles(self, network, budget):
        # run on the full network: G_O may be cycle-poor
        for p in extract_cycles(network, budget, random.Random(1)):
            assert classify_topology(p.graph) == TopologyClass.CYCLE

    def test_cliques_are_cliques(self, regions, budget):
        g_t, _ = regions
        patterns = extract_cliques(g_t, budget, random.Random(1))
        assert patterns, "planted cliques should be found"
        for p in patterns:
            assert classify_topology(p.graph) in (
                TopologyClass.CLIQUE, TopologyClass.TRIANGLE)

    def test_petals_are_petals(self, regions, budget):
        g_t, _ = regions
        for p in extract_petals(g_t, budget, random.Random(1)):
            assert classify_topology(p.graph) == TopologyClass.PETAL

    def test_flowers_are_flowers(self, regions, budget):
        g_t, _ = regions
        for p in extract_flowers(g_t, budget, random.Random(1)):
            assert classify_topology(p.graph) == TopologyClass.FLOWER

    def test_candidates_within_budget(self, network, budget):
        by_class = extract_candidates(network, budget, TattooConfig(seed=1))
        for patterns in by_class.values():
            for p in patterns:
                assert budget.admits(p.graph)
                assert is_connected(p.graph)

    def test_empty_region_no_candidates(self, budget):
        empty = Graph()
        assert extract_chains(empty, budget, random.Random(0)) == []
        assert extract_cliques(empty, budget, random.Random(0)) == []
        assert extract_cycles(empty, budget, random.Random(0)) == []


class TestPipeline:
    def test_end_to_end(self, network, budget):
        result = select_network_patterns(network, budget,
                                         TattooConfig(seed=4))
        assert 0 < len(result.patterns) <= budget.max_patterns
        # every selected pattern actually occurs in the network
        for pattern in result.patterns:
            assert is_subgraph(pattern.graph, network)

    def test_regions_partition_edges(self, network, budget):
        result = select_network_patterns(network, budget,
                                         TattooConfig(seed=4))
        assert (result.truss_region.size()
                + result.oblivious_region.size()) == network.size()

    def test_class_restriction(self, network, budget):
        config = TattooConfig(seed=1, classes=[TopologyClass.CHAIN,
                                               TopologyClass.STAR])
        result = select_network_patterns(network, budget, config)
        for pattern in result.patterns:
            assert classify_topology(pattern.graph) in (
                TopologyClass.CHAIN, TopologyClass.STAR)

    def test_all_candidates_deduped(self, network, budget):
        result = select_network_patterns(network, budget,
                                         TattooConfig(seed=4))
        codes = [p.code for p in result.all_candidates()]
        assert len(codes) == len(set(codes))

    def test_empty_network_rejected(self, budget):
        with pytest.raises(PipelineError):
            select_network_patterns(Graph(), budget)

    def test_deterministic(self, network, budget):
        a = select_network_patterns(network, budget, TattooConfig(seed=9))
        b = select_network_patterns(network, budget, TattooConfig(seed=9))
        assert a.patterns.codes() == b.patterns.codes()

    def test_samples_scale(self, network, budget):
        small = extract_candidates(network, budget,
                                   TattooConfig(seed=1,
                                                samples_scale=0.3))
        large = extract_candidates(network, budget,
                                   TattooConfig(seed=1,
                                                samples_scale=1.0))
        assert (sum(len(v) for v in small.values())
                <= sum(len(v) for v in large.values()))
