"""Tests for subgraph similarity queries (edge relaxation)."""

import pytest

from repro.datasets import generate_chemical_repository
from repro.errors import GraphError
from repro.graph import (
    Graph,
    build_graph,
    complete_graph,
    cycle_graph,
    path_graph,
)
from repro.query import (
    SimilarityQueryEngine,
    query_relaxations,
)


class TestRelaxations:
    def test_distance_zero_is_query(self):
        q = cycle_graph(4, label="A")
        relaxations = query_relaxations(q, max_missing=0)
        assert len(relaxations) == 1
        assert relaxations[0][0] == 0
        assert relaxations[0][1] is q

    def test_cycle_relaxes_to_path(self):
        q = cycle_graph(4, label="A")
        relaxations = query_relaxations(q, max_missing=1)
        # C4 minus any edge = P4; all four deletions are isomorphic
        assert len(relaxations) == 2
        assert relaxations[1][0] == 1
        assert relaxations[1][1].size() == 3

    def test_disconnecting_relaxations_skipped(self):
        q = path_graph(3, label="A")
        relaxations = query_relaxations(q, max_missing=1)
        # removing either path edge isolates a node -> only d=0 remains
        assert len(relaxations) == 1

    def test_ordered_by_distance(self):
        q = complete_graph(4, label="A")
        relaxations = query_relaxations(q, max_missing=2)
        distances = [d for d, _ in relaxations]
        assert distances == sorted(distances)

    def test_isomorphic_relaxations_deduplicated(self):
        q = complete_graph(4, label="A")
        one_missing = [r for d, r in query_relaxations(q, 1) if d == 1]
        assert len(one_missing) == 1  # K4 minus any edge: one class

    def test_validation(self):
        with pytest.raises(GraphError):
            query_relaxations(Graph(), 1)
        with pytest.raises(GraphError):
            query_relaxations(path_graph(3), -1)


class TestSimilarityEngine:
    def repo(self):
        return [path_graph(4, label="A"),        # 0: chain
                cycle_graph(4, label="A"),       # 1: square
                complete_graph(4, label="A"),    # 2: clique
                path_graph(4, label="B")]        # 3: wrong labels

    def test_exact_match_distance_zero(self):
        engine = SimilarityQueryEngine(self.repo())
        matches = engine.run(cycle_graph(4, label="A"), max_missing=1)
        by_index = {m.graph_index: m.distance for m in matches}
        assert by_index[1] == 0   # the square itself
        assert by_index[2] == 0   # C4 embeds in K4
        assert by_index[0] == 1   # the chain needs one edge dropped
        assert 3 not in by_index  # labels still must match

    def test_minimum_distance_reported(self):
        engine = SimilarityQueryEngine(self.repo())
        matches = engine.run(complete_graph(4, label="A"),
                             max_missing=3)
        by_index = {m.graph_index: m.distance for m in matches}
        assert by_index[2] == 0
        assert by_index[1] == 2   # K4 -> C4 needs both chords gone
        assert by_index[0] == 3   # K4 -> P4 needs three edges gone

    def test_embedding_is_valid(self):
        engine = SimilarityQueryEngine(self.repo())
        for match in engine.run(cycle_graph(4, label="A"),
                                max_missing=1):
            # embedding maps all query nodes into the data graph
            assert len(match.embedding) == 4
            for target in match.embedding.values():
                assert match.graph.has_node(target)

    def test_max_matches(self):
        engine = SimilarityQueryEngine(self.repo())
        matches = engine.run(path_graph(3, label="A"), max_missing=0,
                             max_matches=2)
        assert len(matches) == 2

    def test_results_sorted(self):
        engine = SimilarityQueryEngine(self.repo())
        matches = engine.run(complete_graph(4, label="A"),
                             max_missing=3)
        distances = [m.distance for m in matches]
        assert distances == sorted(distances)

    def test_histogram(self):
        engine = SimilarityQueryEngine(self.repo())
        histogram = engine.distance_histogram(
            complete_graph(4, label="A"), max_missing=3)
        assert histogram == {0: 1, 2: 1, 3: 1}

    def test_on_generated_repository(self):
        repo = generate_chemical_repository(20, seed=13)
        engine = SimilarityQueryEngine(repo)
        # a benzene ring with one wrong chord: similarity finds rings
        q = cycle_graph(6, label="C")
        for i in range(6):
            q.set_edge_label(i, (i + 1) % 6, "1" if i % 2 else "2")
        q.add_edge(0, 3, label="1")
        exact = engine.run(q, max_missing=0)
        relaxed = engine.run(q, max_missing=1)
        assert len(relaxed) >= len(exact)
