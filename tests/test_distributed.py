"""Tests for distributed (partition-extract-merge) selection."""

import pytest

from repro.datasets import NetworkConfig, generate_network
from repro.errors import PipelineError
from repro.graph import Graph, induced_subgraph, is_connected
from repro.matching import is_subgraph
from repro.patterns import PatternBudget
from repro.tattoo import (
    TattooConfig,
    partition_network,
    partition_with_halo,
    select_patterns_distributed,
)


@pytest.fixture(scope="module")
def network():
    return generate_network(NetworkConfig(nodes=300, cliques=8,
                                          petals=6, flowers=4), seed=41)


@pytest.fixture(scope="module")
def budget():
    return PatternBudget(5, min_size=4, max_size=8)


class TestPartitioning:
    def test_partitions_cover_all_nodes(self, network):
        partitions = partition_network(network, 4, seed=1)
        union = set()
        for partition in partitions:
            assert not (partition & union), "partitions must be disjoint"
            union |= partition
        assert union == set(network.nodes())

    def test_partition_count(self, network):
        assert len(partition_network(network, 3, seed=2)) == 3

    def test_rough_balance(self, network):
        partitions = partition_network(network, 4, seed=3)
        sizes = sorted(len(p) for p in partitions)
        assert sizes[0] >= sizes[-1] * 0.2  # no starved partition

    def test_validation(self, network):
        with pytest.raises(PipelineError):
            partition_network(network, 0)
        small = induced_subgraph(network, list(network.nodes())[:3])
        with pytest.raises(PipelineError):
            partition_network(small, 10)

    def test_deterministic(self, network):
        a = partition_network(network, 4, seed=9)
        b = partition_network(network, 4, seed=9)
        assert a == b


class TestHalo:
    def test_halo_contains_partition(self, network):
        partition = partition_network(network, 4, seed=1)[0]
        view = partition_with_halo(network, partition, hops=1)
        assert partition <= set(view.nodes())

    def test_halo_is_neighborhood(self, network):
        partition = partition_network(network, 4, seed=1)[0]
        view = partition_with_halo(network, partition, hops=1)
        for node in view.nodes():
            if node in partition:
                continue
            assert any(network.has_edge(node, u) for u in partition)

    def test_zero_hops_is_partition(self, network):
        partition = partition_network(network, 4, seed=1)[0]
        view = partition_with_halo(network, partition, hops=0)
        assert set(view.nodes()) == partition


class TestDistributedSelection:
    def test_end_to_end(self, network, budget):
        result = select_patterns_distributed(network, budget, parts=3,
                                             config=TattooConfig(seed=1))
        assert 0 < len(result.patterns) <= budget.max_patterns
        assert len(result.workers) == 3
        # every selected pattern occurs in the full network
        for pattern in result.patterns:
            assert is_subgraph(pattern.graph, network)

    def test_shortlists_bound_communication(self, network, budget):
        result = select_patterns_distributed(
            network, budget, parts=3, config=TattooConfig(seed=1),
            shortlist_factor=2)
        for worker in result.workers:
            assert worker.candidates <= 2 * budget.max_patterns

    def test_profile_accounting(self, network, budget):
        result = select_patterns_distributed(network, budget, parts=3,
                                             config=TattooConfig(seed=1))
        assert result.makespan() <= result.sequential_work() + 1e-9
        assert result.candidate_unique <= result.candidate_total

    def test_single_partition_degenerates_gracefully(self, network,
                                                     budget):
        result = select_patterns_distributed(network, budget, parts=1,
                                             config=TattooConfig(seed=1))
        assert len(result.patterns) > 0

    def test_coordinator_sampling_path(self, network, budget):
        """Force the BFS-sample coordinator path with a tiny cap."""
        result = select_patterns_distributed(
            network, budget, parts=2, config=TattooConfig(seed=1),
            coverage_sample_nodes=50)
        assert len(result.patterns) > 0

    def test_validation(self, budget):
        with pytest.raises(PipelineError):
            select_patterns_distributed(Graph(), budget, parts=2)
        net = generate_network(NetworkConfig(nodes=50), seed=1)
        with pytest.raises(PipelineError):
            select_patterns_distributed(net, budget, parts=2,
                                        shortlist_factor=0)

    def test_quality_close_to_single_machine(self, network, budget):
        from repro.patterns import pattern_set_score
        from repro.tattoo import select_network_patterns
        single = select_network_patterns(network, budget,
                                         TattooConfig(seed=1))
        distributed = select_patterns_distributed(
            network, budget, parts=3, config=TattooConfig(seed=1))
        q_single = pattern_set_score(list(single.patterns), [network])
        q_distributed = pattern_set_score(list(distributed.patterns),
                                          [network])
        assert q_distributed >= q_single - 0.08


class TestDistributedResilience:
    """Worker-failure and partial-merge paths (see also the chaos
    matrix in tests/test_resilience.py)."""

    def test_stats_expose_resilience_fields(self, network, budget):
        result = select_patterns_distributed(network, budget, parts=3,
                                             config=TattooConfig(seed=1))
        assert result.degraded is False
        assert result.stats["failed_workers"] == 0
        completion = result.stats["completion"]
        for stage in ("workers", "merge", "select"):
            assert completion[stage]["complete"]

    def test_worker_failure_yields_partial_merge(self, network, budget):
        from repro.resilience import FaultPlan, FaultSpec, chaos
        plan = FaultPlan([FaultSpec("distributed.worker", keys=(0,),
                                    fail_attempts=99)])
        with chaos(plan):
            result = select_patterns_distributed(
                network, budget, parts=3, config=TattooConfig(seed=1))
        assert result.degraded
        assert result.stats["failed_workers"] == 1
        assert result.workers[0].failed
        assert result.workers[0].candidates == 0
        # the surviving workers' shortlists still produce a panel
        assert len(result.patterns) > 0
        for pattern in result.patterns:
            assert is_subgraph(pattern.graph, network)

    def test_merge_fault_drops_only_that_pool(self, network, budget):
        from repro.resilience import FaultPlan, FaultSpec, chaos
        plan = FaultPlan([FaultSpec("distributed.merge", keys=(2,),
                                    fail_attempts=99)])
        with chaos(plan):
            result = select_patterns_distributed(
                network, budget, parts=3, config=TattooConfig(seed=1))
        assert result.degraded
        merge = result.stats["completion"]["merge"]
        assert merge["done"] == merge["total"] - 1
        assert len(result.patterns) > 0

    def test_deadline_stops_after_first_worker(self, network, budget):
        config = TattooConfig(seed=1, deadline_s=1e-6)
        result = select_patterns_distributed(network, budget, parts=3,
                                             config=config)
        assert result.degraded
        workers = result.stats["completion"]["workers"]
        assert workers["done"] >= 1
        assert workers["done"] < workers["total"]
        assert len(result.patterns) > 0
