"""Tests for SVG rendering options and the rendering pipeline."""

import pytest

from repro.graph import complete_graph, cycle_graph, path_graph
from repro.patterns import Pattern
from repro.vqi import (
    render_graph_svg,
    render_pattern_panel_svg,
    visual_complexity,
)


def panel():
    return [Pattern(complete_graph(5, label="A")),
            Pattern(path_graph(4, label="B")),
            Pattern(cycle_graph(5, label="C"))]


class TestGraphSvg:
    def test_standalone_document(self):
        svg = render_graph_svg(cycle_graph(4, label="X"))
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")

    def test_fragment_mode(self):
        svg = render_graph_svg(cycle_graph(4), standalone=False)
        assert not svg.startswith("<svg")
        assert "<circle" in svg

    def test_custom_positions_used(self):
        g = path_graph(2)
        positions = {0: (0.0, 0.0), 1: (1.0, 1.0)}
        svg = render_graph_svg(g, width=100, height=100,
                               positions=positions)
        # node radius offsets corner coordinates to 12 and 88
        assert 'cx="12' in svg
        assert 'cx="88' in svg

    def test_edge_labels_rendered(self):
        g = path_graph(2)
        g.set_edge_label(0, 1, "bond")
        svg = render_graph_svg(g)
        assert ">bond<" in svg

    def test_shared_palette_consistent(self):
        palette = {}
        svg1 = render_graph_svg(path_graph(2, label="Z"),
                                palette_index=palette)
        color = palette["Z"]
        svg2 = render_graph_svg(cycle_graph(3, label="Z"),
                                palette_index=palette)
        assert color in svg1 and color in svg2


class TestPanelSvg:
    def test_grid_dimensions(self):
        svg = render_pattern_panel_svg(panel(), columns=2, cell=100)
        assert 'width="200"' in svg
        assert 'height="200"' in svg  # 3 patterns -> 2 rows

    def test_arrange_orders_by_complexity(self):
        patterns = panel()  # clique first (most complex)
        svg_plain = render_pattern_panel_svg(patterns, columns=3)
        svg_arranged = render_pattern_panel_svg(patterns, columns=3,
                                                arrange=True)
        # complexity order differs from input order -> different SVG
        complexities = [visual_complexity(p.graph) for p in patterns]
        assert complexities != sorted(complexities)
        assert svg_plain != svg_arranged

    def test_optimize_changes_layout(self):
        patterns = [Pattern(complete_graph(6, label="A"))]
        svg_plain = render_pattern_panel_svg(patterns)
        svg_optimized = render_pattern_panel_svg(patterns,
                                                 optimize=True)
        assert svg_plain != svg_optimized
        assert svg_optimized.count("<circle") == 6

    def test_single_column(self):
        svg = render_pattern_panel_svg(panel(), columns=1, cell=80)
        assert 'width="80"' in svg
        assert 'height="240"' in svg

    def test_columns_clamped(self):
        svg = render_pattern_panel_svg(panel(), columns=0)
        assert svg.startswith("<svg")
