"""Tests for layout and aesthetics metrics."""

import math

import pytest

from repro.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.vqi import (
    angular_resolution,
    berlyne_satisfaction,
    circular_layout,
    contour_congestion,
    edge_crossings,
    layout_graph,
    layout_quality,
    node_congestion,
    panel_aesthetics,
    render_graph_svg,
    render_pattern_panel_svg,
    spring_layout,
    visual_clutter,
    visual_complexity,
)
from repro.patterns import Pattern


class TestLayout:
    def test_positions_in_unit_square(self):
        g = complete_graph(8)
        for x, y in spring_layout(g, seed=1).values():
            assert 0.0 <= x <= 1.0
            assert 0.0 <= y <= 1.0

    def test_all_nodes_positioned(self):
        g = cycle_graph(7)
        assert set(layout_graph(g)) == set(g.nodes())

    def test_deterministic(self):
        g = cycle_graph(6)
        assert spring_layout(g, seed=5) == spring_layout(g, seed=5)

    def test_tiny_graphs(self):
        assert circular_layout(Graph()) == {}
        g = Graph()
        g.add_node(0)
        assert layout_graph(g) == {0: (0.5, 0.5)}
        g.add_node(1)
        g.add_edge(0, 1)
        assert len(layout_graph(g)) == 2

    def test_spring_separates_nodes(self):
        g = path_graph(5)
        positions = spring_layout(g, seed=2)
        values = list(positions.values())
        for i in range(len(values)):
            for j in range(i + 1, len(values)):
                assert math.dist(values[i], values[j]) > 0.01


class TestCrossings:
    def test_planar_straight_square(self):
        g = cycle_graph(4)
        square = {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (1.0, 1.0),
                  3: (0.0, 1.0)}
        assert edge_crossings(g, square) == 0

    def test_crossed_square(self):
        # same square but with the two diagonals
        g = cycle_graph(4)
        g.add_edge(0, 2)
        g.add_edge(1, 3)
        square = {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (1.0, 1.0),
                  3: (0.0, 1.0)}
        assert edge_crossings(g, square) == 1  # the diagonals cross

    def test_shared_endpoint_not_crossing(self):
        g = path_graph(3)
        positions = {0: (0.0, 0.0), 1: (0.5, 0.5), 2: (1.0, 0.0)}
        assert edge_crossings(g, positions) == 0


class TestMetrics:
    def test_node_congestion_detects_overlap(self):
        g = path_graph(3)
        stacked = {0: (0.5, 0.5), 1: (0.5, 0.51), 2: (0.9, 0.9)}
        spread = {0: (0.1, 0.1), 1: (0.5, 0.9), 2: (0.9, 0.1)}
        assert node_congestion(g, stacked) > node_congestion(g, spread)

    def test_angular_resolution_star(self):
        g = star_graph(4)
        # hub at centre, leaves at compass points: min angle pi/2
        positions = {0: (0.5, 0.5), 1: (1.0, 0.5), 2: (0.5, 1.0),
                     3: (0.0, 0.5), 4: (0.5, 0.0)}
        assert angular_resolution(g, positions) == pytest.approx(
            math.pi / 2)

    def test_visual_clutter_monotone_in_density(self):
        sparse = visual_clutter(path_graph(4))
        dense = visual_clutter(complete_graph(8))
        assert dense >= 0.0 and sparse >= 0.0

    def test_contour_congestion_range(self):
        assert 0.0 <= contour_congestion(complete_graph(6)) <= 1.0
        assert contour_congestion(path_graph(2)) == 0.0

    def test_layout_quality_range(self):
        for g in (path_graph(4), complete_graph(6), Graph()):
            assert 0.0 <= layout_quality(g) <= 1.0

    def test_complexity_ordering(self):
        assert (visual_complexity(complete_graph(7))
                > visual_complexity(path_graph(3)))

    def test_complexity_range(self):
        for g in (path_graph(2), complete_graph(9)):
            assert 0.0 <= visual_complexity(g) < 1.0


class TestBerlyne:
    def test_peak_at_optimum(self):
        from repro.vqi import BERLYNE_OPTIMUM
        assert berlyne_satisfaction(BERLYNE_OPTIMUM) == 1.0

    def test_inverted_u_shape(self):
        low = berlyne_satisfaction(0.05)
        mid = berlyne_satisfaction(0.45)
        high = berlyne_satisfaction(0.95)
        assert mid > low
        assert mid > high

    def test_symmetry(self):
        assert berlyne_satisfaction(0.35) == pytest.approx(
            berlyne_satisfaction(0.55))


class TestPanelAesthetics:
    def test_empty_panel(self):
        metrics = panel_aesthetics([])
        assert metrics["layout_quality"] == 1.0

    def test_keys_and_ranges(self):
        metrics = panel_aesthetics([path_graph(4), complete_graph(5)])
        assert 0.0 <= metrics["visual_complexity"] < 1.0
        assert 0.0 <= metrics["satisfaction"] <= 1.0


class TestRendering:
    def test_graph_svg_wellformed(self):
        g = cycle_graph(5, label="C")
        svg = render_graph_svg(g)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<circle") == 5
        assert svg.count("<line") == 5

    def test_labels_escaped(self):
        g = Graph()
        g.add_node(0, label="<&>")
        svg = render_graph_svg(g)
        assert "<&>" not in svg
        assert "&lt;" in svg

    def test_panel_grid(self):
        patterns = [Pattern(cycle_graph(n, label="A"))
                    for n in range(3, 8)]
        svg = render_pattern_panel_svg(patterns, columns=2)
        assert svg.count("<rect") == 1 + len(patterns)  # bg + cells

    def test_empty_panel_svg(self):
        svg = render_pattern_panel_svg([])
        assert svg.startswith("<svg")
