"""Tests for CoverageIndex, SetScorer, and greedy/exhaustive selection."""

import pytest

from repro.errors import BudgetError
from repro.graph import (
    build_graph,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.patterns import (
    CoverageIndex,
    Pattern,
    PatternBudget,
    ScoreWeights,
    SetScorer,
    exhaustive_select,
    greedy_select,
    pattern_set_score,
)


def repo():
    return [path_graph(5, label="A"), cycle_graph(5, label="A"),
            complete_graph(4, label="A"), star_graph(4, label="A")]


def patterns():
    return [Pattern(path_graph(4, label="A")),
            Pattern(cycle_graph(4, label="A")),
            Pattern(complete_graph(3, label="A")),
            Pattern(star_graph(3, label="A"))]


class TestCoverageIndex:
    def test_solo_coverage_range(self):
        index = CoverageIndex(repo())
        for p in patterns():
            assert 0.0 <= index.solo_coverage(p) <= 1.0

    def test_covered_graphs_inverted_index(self):
        index = CoverageIndex(repo())
        tri = Pattern(complete_graph(3, label="A"))
        # triangles occur only in K4
        assert index.covered_graphs(tri) == {2}

    def test_set_coverage_union(self):
        index = CoverageIndex(repo())
        p4 = Pattern(path_graph(4, label="A"))
        both = index.set_coverage([p4, Pattern(complete_graph(3,
                                                              label="A"))])
        assert both >= index.set_coverage([p4])

    def test_marginal_coverage_submodular(self):
        index = CoverageIndex(repo())
        p4 = Pattern(path_graph(4, label="A"))
        tri = Pattern(complete_graph(3, label="A"))
        star = Pattern(star_graph(3, label="A"))
        # gain of tri given more context can only shrink
        assert (index.marginal_coverage(tri, [p4, star])
                <= index.marginal_coverage(tri, [p4]) + 1e-12)

    def test_marginal_equals_difference(self):
        index = CoverageIndex(repo())
        p4 = Pattern(path_graph(4, label="A"))
        tri = Pattern(complete_graph(3, label="A"))
        diff = index.set_coverage([p4, tri]) - index.set_coverage([p4])
        assert index.marginal_coverage(tri, [p4]) == pytest.approx(diff)

    def test_empty_inputs(self):
        index = CoverageIndex([])
        assert index.set_coverage(patterns()) == 0.0
        index2 = CoverageIndex(repo())
        assert index2.set_coverage([]) == 0.0

    def test_add_pattern_idempotent(self):
        index = CoverageIndex(repo())
        p = patterns()[0]
        index.add_pattern(p)
        index.add_pattern(p)
        assert len(index) == 1

    def test_set_graph_coverage(self):
        index = CoverageIndex(repo())
        p4 = Pattern(path_graph(4, label="A"))
        # P4 embeds in P5, C5, K4 but not in the star (max path = 3)
        assert index.set_graph_coverage([p4]) == pytest.approx(0.75)
        p3 = Pattern(path_graph(3, label="A"))
        assert index.set_graph_coverage([p3]) == 1.0


class TestSetScorer:
    def test_score_matches_reference(self):
        """SetScorer agrees with pattern_set_score on the same sample."""
        sample = repo()
        index = CoverageIndex(sample, max_embeddings=50)
        scorer = SetScorer(index)
        pats = patterns()[:2]
        assert scorer.score(pats) == pytest.approx(
            pattern_set_score(pats, sample, max_embeddings=50))

    def test_empty_set(self):
        scorer = SetScorer(CoverageIndex(repo()))
        assert scorer.score([]) >= 0.0

    def test_diversity_cached_consistent(self):
        scorer = SetScorer(CoverageIndex(repo()))
        pats = patterns()
        first = scorer.diversity(pats)
        second = scorer.diversity(pats)
        assert first == second


class TestGreedySelect:
    def test_fills_budget(self):
        scorer = SetScorer(CoverageIndex(repo()))
        budget = PatternBudget(3, min_size=3, max_size=5)
        result = greedy_select(patterns(), budget, scorer)
        assert len(result.patterns) == 3

    def test_budget_size_filter(self):
        scorer = SetScorer(CoverageIndex(repo()))
        budget = PatternBudget(4, min_size=4, max_size=4)
        result = greedy_select(patterns(), budget, scorer)
        assert all(p.order() == 4 for p in result.patterns)

    def test_improve_only_stops_early(self):
        scorer = SetScorer(CoverageIndex(repo()))
        budget = PatternBudget(4, min_size=3, max_size=5)
        filled = greedy_select(patterns(), budget, scorer)
        improving = greedy_select(patterns(), budget, scorer,
                                  improve_only=True)
        assert len(improving.patterns) <= len(filled.patterns)

    def test_seed_patterns_kept(self):
        scorer = SetScorer(CoverageIndex(repo()))
        budget = PatternBudget(3, min_size=3, max_size=5)
        seed = [patterns()[0]]
        result = greedy_select(patterns()[1:], budget, scorer,
                               seed_patterns=seed)
        assert patterns()[0] in result.patterns

    def test_seed_overflow_rejected(self):
        scorer = SetScorer(CoverageIndex(repo()))
        budget = PatternBudget(1, min_size=3, max_size=5)
        with pytest.raises(BudgetError):
            greedy_select(patterns(), budget, scorer,
                          seed_patterns=patterns()[:2])

    def test_no_candidates(self):
        scorer = SetScorer(CoverageIndex(repo()))
        budget = PatternBudget(3, min_size=3, max_size=5)
        result = greedy_select([], budget, scorer)
        assert len(result.patterns) == 0

    def test_trajectory_length(self):
        scorer = SetScorer(CoverageIndex(repo()))
        budget = PatternBudget(2, min_size=3, max_size=5)
        result = greedy_select(patterns(), budget, scorer)
        assert len(result.trajectory) == len(result.patterns)


class TestExhaustiveSelect:
    def test_oracle_beats_or_ties_greedy(self):
        scorer = SetScorer(CoverageIndex(repo()))
        budget = PatternBudget(2, min_size=3, max_size=5)
        greedy = greedy_select(patterns(), budget, scorer,
                               improve_only=True)
        exact = exhaustive_select(patterns(), budget, scorer)
        assert exact.score >= greedy.score - 1e-12

    def test_greedy_within_approximation_bound(self):
        scorer = SetScorer(CoverageIndex(repo()))
        budget = PatternBudget(2, min_size=3, max_size=5)
        greedy = greedy_select(patterns(), budget, scorer)
        exact = exhaustive_select(patterns(), budget, scorer)
        best_seen = max(greedy.trajectory) if greedy.trajectory else 0.0
        assert best_seen >= exact.score / 2.718281828 - 1e-9

    def test_too_many_candidates_rejected(self):
        scorer = SetScorer(CoverageIndex(repo()))
        budget = PatternBudget(2, min_size=2, max_size=30)
        many = [Pattern(path_graph(n, label="A")) for n in range(2, 22)]
        with pytest.raises(BudgetError):
            exhaustive_select(many, budget, scorer)

    def test_dedups_isomorphic_candidates(self):
        scorer = SetScorer(CoverageIndex(repo()))
        budget = PatternBudget(2, min_size=3, max_size=5)
        doubled = patterns() + [Pattern(path_graph(4, label="A"))]
        result = exhaustive_select(doubled, budget, scorer)
        assert result.considered == len(patterns())
