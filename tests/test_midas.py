"""Tests for MIDAS: FCT index, swapping, and maintenance."""

import pytest

from repro.datasets import (
    EvolvingRepository,
    UpdateBatch,
    generate_chemical_repository,
    generate_molecule,
    generate_update_stream,
)
from repro.errors import MaintenanceError, PipelineError
from repro.graph import path_graph, star_graph
from repro.midas import FCTIndex, Midas, MidasConfig, multi_scan_swap
from repro.patterns import (
    CoverageIndex,
    Pattern,
    PatternBudget,
    SetScorer,
)

import random


@pytest.fixture(scope="module")
def repo():
    return generate_chemical_repository(40, seed=21)


@pytest.fixture(scope="module")
def budget():
    return PatternBudget(5, min_size=4, max_size=8)


class TestFCTIndex:
    def test_build_then_incremental_matches_rebuild(self, repo):
        """add/remove bookkeeping equals mining from scratch."""
        incremental = FCTIndex(min_support=2)
        incremental.build(repo[:30])
        for graph in repo[30:35]:
            incremental.add_graph(graph)
        for graph in repo[:5]:
            incremental.remove_graph(graph)

        fresh = FCTIndex(min_support=2)
        fresh.build(repo[5:35])

        inc = {t.code: t.support for t in incremental.frequent_trees()}
        ref = {t.code: t.support for t in fresh.frequent_trees()}
        assert inc == ref

    def test_closed_subset_of_frequent(self, repo):
        index = FCTIndex(min_support=2)
        index.build(repo[:20])
        frequent = {t.code for t in index.frequent_trees()}
        closed = {t.code for t in index.frequent_closed()}
        assert closed <= frequent
        assert closed  # chemical motifs recur

    def test_graph_count_tracked(self, repo):
        index = FCTIndex()
        index.build(repo[:10])
        assert index.graph_count == 10
        index.remove_graph(repo[0])
        assert index.graph_count == 9

    def test_support_lookup(self):
        index = FCTIndex(min_support=1)
        index.build([path_graph(2, label="A")])
        trees = index.frequent_trees()
        assert len(trees) == 1
        assert index.support(trees[0].code) == 1
        assert index.support("missing") == 0


class TestSwapping:
    def sample_repo(self):
        return [path_graph(5, label="A"), star_graph(4, label="A"),
                path_graph(6, label="A")]

    def test_score_never_decreases(self):
        scorer = SetScorer(CoverageIndex(self.sample_repo()))
        current = [Pattern(path_graph(4, label="B"))]  # covers nothing
        candidates = [Pattern(path_graph(4, label="A")),
                      Pattern(star_graph(3, label="A"))]
        swapped, stats = multi_scan_swap(current, candidates, scorer)
        assert stats.score_after >= stats.score_before - 1e-12

    def test_improving_swap_applied(self):
        scorer = SetScorer(CoverageIndex(self.sample_repo()))
        current = [Pattern(path_graph(4, label="Z"))]  # useless pattern
        candidates = [Pattern(path_graph(4, label="A"))]
        swapped, stats = multi_scan_swap(current, candidates, scorer)
        assert stats.swaps == 1
        assert swapped[0].code == candidates[0].code

    def test_no_candidates_noop(self):
        scorer = SetScorer(CoverageIndex(self.sample_repo()))
        current = [Pattern(path_graph(4, label="A"))]
        swapped, stats = multi_scan_swap(current, [], scorer)
        assert [p.code for p in swapped] == [p.code for p in current]
        assert stats.swaps == 0

    def test_pruning_reduces_considered_work(self):
        rng = random.Random(0)
        repo = generate_chemical_repository(15, seed=33)
        scorer = SetScorer(CoverageIndex(repo))
        current = [Pattern(path_graph(4, label="C")),
                   Pattern(path_graph(5, label="C"))]
        # junk candidates that cover nothing
        candidates = [Pattern(path_graph(4, label=f"X{i}"))
                      for i in range(5)]
        _, with_prune = multi_scan_swap(current, candidates, scorer,
                                        prune=True)
        assert with_prune.pruned == 5

    def test_prune_does_not_change_guarantee(self):
        repo = generate_chemical_repository(10, seed=34)
        scorer = SetScorer(CoverageIndex(repo))
        current = [Pattern(path_graph(4, label="C"))]
        candidates = [Pattern(star_graph(3, label="C")),
                      Pattern(path_graph(5, label="C"))]
        _, pruned = multi_scan_swap(current, candidates, scorer,
                                    prune=True)
        _, full = multi_scan_swap(current, candidates, scorer,
                                  prune=False)
        assert pruned.score_after >= pruned.score_before - 1e-12
        assert full.score_after >= full.score_before - 1e-12


class TestMidas:
    def test_initialization(self, repo, budget):
        midas = Midas(repo, budget, MidasConfig(seed=1))
        assert len(midas.patterns) <= budget.max_patterns
        assert len(midas.patterns) > 0
        assert midas.gfd()

    def test_empty_repo_rejected(self, budget):
        with pytest.raises(PipelineError):
            Midas([], budget)

    def test_unnamed_graphs_rejected(self, budget):
        anonymous = path_graph(4)
        anonymous.name = ""
        with pytest.raises(MaintenanceError):
            Midas([anonymous], budget)

    def test_minor_batch_keeps_patterns(self, repo, budget):
        midas = Midas(repo, budget, MidasConfig(seed=1,
                                                drift_threshold=0.5))
        before = midas.patterns.codes()
        rng = random.Random(5)
        batch = UpdateBatch(added=[generate_molecule(rng, name="new0")])
        report = midas.apply_batch(batch)
        assert report.kind == "minor"
        assert midas.patterns.codes() == before
        assert report.score_after == report.score_before

    def test_major_batch_never_degrades(self, repo, budget):
        midas = Midas(repo, budget, MidasConfig(seed=1,
                                                drift_threshold=0.0))
        rng = random.Random(6)
        batch = UpdateBatch(
            added=[generate_molecule(rng, name=f"n{i}",
                                     motif_weights=[0.1, 0.1, 0.1, 5.0])
                   for i in range(10)])
        report = midas.apply_batch(batch)
        assert report.kind == "major"
        assert report.score_after >= report.score_before - 1e-12

    def test_removal_tracked(self, repo, budget):
        midas = Midas(repo, budget, MidasConfig(seed=1))
        name = repo[0].name
        report = midas.apply_batch(UpdateBatch(removed=[name]))
        assert report.removed == 1
        assert name not in {g.name for g in midas.graphs()}

    def test_unknown_removal_quarantined(self, repo, budget):
        midas = Midas(repo, budget, MidasConfig(seed=1))
        before = {g.name for g in midas.graphs()}
        report = midas.apply_batch(UpdateBatch(removed=["nope"]))
        assert report.removed == 0
        assert {g.name for g in midas.graphs()} == before
        assert len(report.quarantine) == 1
        assert report.quarantine[0].op == "remove"
        assert report.quarantine[0].name == "nope"
        assert report.degraded

    def test_duplicate_addition_quarantined(self, repo, budget):
        midas = Midas(repo, budget, MidasConfig(seed=1))
        rng = random.Random(7)
        duplicate = generate_molecule(rng, name=repo[0].name)
        count = len(list(midas.graphs()))
        report = midas.apply_batch(UpdateBatch(added=[duplicate]))
        assert report.added == 0
        assert len(list(midas.graphs())) == count
        assert len(report.quarantine) == 1
        assert report.quarantine[0].op == "add"
        assert report.degraded

    def test_mixed_batch_applies_valid_ops(self, repo, budget):
        midas = Midas(repo, budget, MidasConfig(seed=1))
        rng = random.Random(8)
        fresh = generate_molecule(rng, name="fresh0")
        batch = UpdateBatch(added=[fresh],
                            removed=[repo[0].name, "missing"])
        report = midas.apply_batch(batch)
        assert report.added == 1
        assert report.removed == 1
        assert len(report.quarantine) == 1
        names = {g.name for g in midas.graphs()}
        assert "fresh0" in names
        assert repo[0].name not in names

    def test_drift_accumulates_until_major(self, repo, budget):
        midas = Midas(repo, budget, MidasConfig(seed=1,
                                                drift_threshold=0.012))
        evolving = EvolvingRepository([g.copy() for g in repo])
        stream = generate_update_stream(
            evolving, batches=8, batch_size=12, seed=9, drift_after=0,
            drift_weights=(0.05, 0.05, 0.05, 6.0))
        kinds = []
        for batch in stream:
            evolving.apply(batch)
            kinds.append(midas.apply_batch(batch).kind)
        assert "major" in kinds

    def test_batch_membership_assignment(self, repo, budget):
        midas = Midas(repo, budget, MidasConfig(seed=1))
        rng = random.Random(8)
        graph = generate_molecule(rng, name="assigned")
        midas.apply_batch(UpdateBatch(added=[graph]))
        assert "assigned" in midas.membership
