"""Tests for the FSG-style frequent subgraph miner."""

import pytest

from repro.datasets import generate_chemical_repository
from repro.errors import PipelineError
from repro.graph import build_graph, complete_graph, path_graph
from repro.matching import is_subgraph
from repro.mining import (
    mine_frequent_subgraphs,
    top_frequent_subgraphs,
)


def small_repo():
    """Three graphs sharing a triangle; one has a unique square."""
    tri = complete_graph(3, label="A")
    tri_plus = complete_graph(3, label="A")
    tri_plus.add_node(3, label="B")
    tri_plus.add_edge(0, 3)
    square = build_graph([(i, "A") for i in range(4)],
                         edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
    return [tri, tri_plus, square]


class TestMining:
    def test_supports_are_document_frequency(self):
        mined = mine_frequent_subgraphs(small_repo(), min_support=2,
                                        max_edges=3)
        by_code = {m.code: m for m in mined}
        from repro.matching import canonical_code
        tri_code = canonical_code(complete_graph(3, label="A"))
        assert tri_code in by_code
        assert by_code[tri_code].support == 2

    def test_all_results_frequent_and_valid(self):
        repo = small_repo()
        mined = mine_frequent_subgraphs(repo, min_support=2,
                                        max_edges=4)
        for m in mined:
            occurrences = sum(1 for g in repo
                              if is_subgraph(m.graph, g))
            assert occurrences == m.support
            assert m.support >= 2

    def test_no_isomorphic_duplicates(self):
        mined = mine_frequent_subgraphs(small_repo(), min_support=1,
                                        max_edges=3,
                                        max_patterns_per_level=None)
        codes = [m.code for m in mined]
        assert len(codes) == len(set(codes))

    def test_max_edges_respected(self):
        mined = mine_frequent_subgraphs(small_repo(), min_support=1,
                                        max_edges=2)
        assert all(m.size() <= 2 for m in mined)

    def test_anti_monotone_closure(self):
        """Every frequent subgraph's one-edge-smaller connected
        subgraphs are also in the result set (at >= its support)."""
        repo = small_repo()
        mined = mine_frequent_subgraphs(repo, min_support=2,
                                        max_edges=3,
                                        max_patterns_per_level=None)
        by_code = {m.code: m.support for m in mined}
        from repro.graph import edge_subgraph, is_connected
        from repro.matching import canonical_code
        for m in mined:
            if m.size() < 2:
                continue
            for u, v in m.graph.edges():
                remaining = [e for e in m.graph.edges()
                             if e != (u, v)]
                sub = edge_subgraph(m.graph, remaining)
                if not is_connected(sub) or sub.order() < m.graph.order() - 1:
                    continue
                code = canonical_code(sub)
                if sub.order() == m.graph.order():
                    continue  # dropped edge but kept both endpoints
                assert code in by_code
                assert by_code[code] >= m.support

    def test_validation(self):
        with pytest.raises(PipelineError):
            mine_frequent_subgraphs([], min_support=1)
        with pytest.raises(PipelineError):
            mine_frequent_subgraphs(small_repo(), min_support=0)

    def test_level_cap_bounds_work(self):
        repo = generate_chemical_repository(15, seed=7)
        capped = mine_frequent_subgraphs(repo, min_support=3,
                                         max_edges=3,
                                         max_patterns_per_level=10)
        assert capped  # still mines something


class TestTopFrequent:
    def test_count_and_window(self):
        repo = generate_chemical_repository(20, seed=8)
        top = top_frequent_subgraphs(repo, 5, min_nodes=3, max_nodes=5,
                                     min_support=2, max_edges=4)
        assert len(top) <= 5
        for m in top:
            assert 3 <= m.graph.order() <= 5

    def test_sorted_by_support(self):
        repo = generate_chemical_repository(20, seed=8)
        top = top_frequent_subgraphs(repo, 6, min_support=2,
                                     max_edges=3)
        supports = [m.support for m in top]
        assert supports == sorted(supports, reverse=True)
