"""Tests for the CATAPULT pipeline."""

import random

import pytest

from repro.catapult import (
    CatapultConfig,
    cluster_repository,
    default_cluster_count,
    generate_candidates,
    select_canned_patterns,
    summarize_clusters,
    walk_candidate,
)
from repro.datasets import generate_chemical_repository
from repro.errors import PipelineError
from repro.graph import is_connected, path_graph
from repro.matching import is_subgraph
from repro.patterns import PatternBudget
from repro.summary import build_summary


@pytest.fixture(scope="module")
def repo():
    return generate_chemical_repository(40, seed=11)


@pytest.fixture(scope="module")
def budget():
    return PatternBudget(5, min_size=4, max_size=8)


@pytest.fixture(scope="module")
def result(repo, budget):
    return select_canned_patterns(repo, budget,
                                  CatapultConfig(seed=7,
                                                 walks_per_cluster=30))


class TestClusterCount:
    def test_heuristic(self):
        assert default_cluster_count(0) == 1
        assert default_cluster_count(1) == 1
        assert default_cluster_count(50) == 5
        assert default_cluster_count(2) <= 2


class TestClustering:
    def test_every_graph_labeled(self, repo):
        clustering = cluster_repository(repo, CatapultConfig(seed=1))
        assert len(clustering.labels) == len(repo)

    def test_cluster_count_heuristic_used(self, repo):
        clustering = cluster_repository(repo, CatapultConfig(seed=1))
        assert len(clustering.medoids) == default_cluster_count(len(repo))

    def test_explicit_k(self, repo):
        clustering = cluster_repository(repo,
                                        CatapultConfig(seed=1, clusters=3))
        assert len(clustering.medoids) == 3

    def test_degenerate_repo_single_cluster(self):
        repo = [path_graph(2, label=f"L{i}") for i in range(4)]
        clustering = cluster_repository(repo, CatapultConfig(
            seed=0, min_tree_support=5))
        assert set(clustering.labels) == {0}


class TestSummaries:
    def test_one_summary_per_nonempty_cluster(self, repo):
        clustering = cluster_repository(repo, CatapultConfig(seed=1))
        summaries = summarize_clusters(repo, clustering)
        nonempty = [c for c in clustering.clusters() if c]
        assert len(summaries) == len(nonempty)
        for members, summary in zip(nonempty, summaries):
            assert summary.member_count == len(members)


class TestWalks:
    def test_walk_candidate_connected_and_sized(self, repo, budget):
        summary = build_summary(repo[:5])
        rng = random.Random(2)
        for _ in range(20):
            candidate = walk_candidate(summary, budget, rng)
            if candidate is None:
                continue
            assert is_connected(candidate)
            assert budget.min_size <= candidate.order()
            assert candidate.order() <= budget.max_size

    def test_generate_candidates_deduped(self, repo, budget):
        summary = build_summary(repo[:5])
        candidates = generate_candidates(summary, budget, 50,
                                         random.Random(3))
        codes = [p.code for p in candidates]
        assert len(codes) == len(set(codes))

    def test_validator_filters(self, repo, budget):
        summary = build_summary(repo[:5])
        candidates = generate_candidates(
            summary, budget, 50, random.Random(3),
            validator=lambda g: False)
        assert candidates == []

    def test_empty_summary(self, budget):
        from repro.summary import SummaryGraph
        assert walk_candidate(SummaryGraph(), budget,
                              random.Random(0)) is None


class TestEndToEnd:
    def test_budget_respected(self, result, budget):
        assert len(result.patterns) <= budget.max_patterns
        for pattern in result.patterns:
            assert budget.admits(pattern.graph)

    def test_patterns_occur_in_data(self, result, repo):
        """Validated candidates must embed in at least one data graph."""
        for pattern in result.patterns:
            assert any(is_subgraph(pattern.graph, g) for g in repo)

    def test_all_stage_timings_present(self, result):
        assert set(result.timings) == {"cluster", "summarize",
                                       "candidates", "select"}

    def test_selection_score_positive(self, result):
        assert result.selection.score > 0.0

    def test_deterministic(self, repo, budget):
        config = CatapultConfig(seed=7, walks_per_cluster=30)
        a = select_canned_patterns(repo, budget, config)
        b = select_canned_patterns(repo, budget, config)
        assert a.patterns.codes() == b.patterns.codes()

    def test_empty_repository_rejected(self, budget):
        with pytest.raises(PipelineError):
            select_canned_patterns([], budget)

    def test_patterns_are_canned_size(self, result):
        assert all(p.order() >= 4 for p in result.patterns)
