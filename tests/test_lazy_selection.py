"""Golden equivalence tests for the lazy-greedy (CELF) sweep.

``REPRO_SELECT=lazy`` (the default) and ``REPRO_SELECT=naive`` (the
quadratic oracle) must produce **byte-identical** selections — same
pattern codes, bitwise-equal scores and trajectories, same
``complete`` flag — on seeded random instances crossed with every
sweep variation: ``improve_only``, seed patterns, persistent injected
faults, and a pre-expired deadline.  A counter test then pins the
point of the whole exercise: the lazy sweep performs strictly fewer
candidate evaluations.

The deadline instances keep the candidate count below
``DEADLINE_POLL_EVERY / 2`` so both sweeps finish their first round
before the in-round poll can fire; divergence inside a partially
polled round is a wall-clock race, not a correctness property.  The
chaos instances use *persistent* faults (``fail_attempts`` larger
than any sweep) — a transient fault can legitimately diverge, because
the lazy sweep retries the recovered candidate within the same round
while the naive sweep has already finished it.
"""

import itertools
import os
import random
import unittest
from contextlib import contextmanager

from repro.datasets import generate_chemical_repository, \
    sample_connected_subgraph
from repro.obs import metrics
from repro.patterns import (
    CoverageIndex,
    Pattern,
    PatternBudget,
    SetScorer,
    exhaustive_select,
    greedy_select,
)
from repro.patterns.selection import (
    DEADLINE_POLL_EVERY,
    SELECT_ENV,
    SELECT_SITE,
)
from repro.resilience import Deadline
from repro.resilience.chaos import FaultPlan, FaultSpec, chaos

SEEDS = (0, 1, 2)
BUDGET = PatternBudget(5, min_size=3, max_size=8)


def make_instance(seed, repo_size=18, n_candidates=10):
    """A seeded repository plus distinct sampled candidate patterns."""
    repo = generate_chemical_repository(repo_size, seed=seed)
    rng = random.Random(seed * 7919 + 13)
    candidates = []
    seen = set()
    while len(candidates) < n_candidates:
        graph = rng.choice(repo)
        sub = sample_connected_subgraph(graph, rng.randint(3, 6), rng)
        if sub is None:
            continue
        pattern = Pattern(sub)
        if pattern.code not in seen:
            seen.add(pattern.code)
            candidates.append(pattern)
    return repo, candidates


@contextmanager
def select_mode(mode):
    previous = os.environ.get(SELECT_ENV)
    os.environ[SELECT_ENV] = mode
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(SELECT_ENV, None)
        else:
            os.environ[SELECT_ENV] = previous


def run_sweep(mode, repo, candidates, plan=None, **kwargs):
    """One greedy sweep in ``mode`` against fresh index/scorer state."""
    scorer = SetScorer(CoverageIndex(repo))
    with select_mode(mode):
        if plan is not None:
            with chaos(plan.fresh()):
                return greedy_select(candidates, BUDGET, scorer,
                                     **kwargs)
        return greedy_select(candidates, BUDGET, scorer, **kwargs)


class GoldenEquivalence(unittest.TestCase):
    """lazy == naive, bitwise, across the instance x variation grid."""

    def assert_equivalent(self, lazy, naive):
        self.assertEqual([p.code for p in naive.patterns],
                         [p.code for p in lazy.patterns])
        self.assertEqual(naive.score, lazy.score)  # bitwise, no approx
        self.assertEqual(naive.trajectory, lazy.trajectory)
        self.assertEqual(naive.complete, lazy.complete)
        if len(lazy.trajectory) > 1:
            # the bound-seeding pass amortises from round two on; a
            # single-round sweep may cost one extra evaluation
            self.assertLessEqual(lazy.evaluations, naive.evaluations)

    def test_plain_and_improve_only(self):
        for seed, improve_only in itertools.product(SEEDS,
                                                    (False, True)):
            with self.subTest(seed=seed, improve_only=improve_only):
                repo, candidates = make_instance(seed)
                lazy = run_sweep("lazy", repo, candidates,
                                 improve_only=improve_only)
                naive = run_sweep("naive", repo, candidates,
                                  improve_only=improve_only)
                self.assert_equivalent(lazy, naive)
                self.assertTrue(lazy.patterns)

    def test_seed_patterns(self):
        for seed in SEEDS:
            with self.subTest(seed=seed):
                repo, candidates = make_instance(seed)
                seeds = candidates[:2]
                rest = candidates[2:]
                lazy = run_sweep("lazy", repo, rest,
                                 seed_patterns=seeds)
                naive = run_sweep("naive", repo, rest,
                                  seed_patterns=seeds)
                self.assert_equivalent(lazy, naive)
                self.assertEqual(
                    [p.code for p in seeds],
                    [p.code for p in lazy.patterns[:2]])

    def test_persistent_chaos_faults(self):
        for seed in SEEDS:
            with self.subTest(seed=seed):
                repo, candidates = make_instance(seed)
                doomed = {candidates[0].code, candidates[3].code}
                plan = FaultPlan([FaultSpec(SELECT_SITE,
                                            keys=tuple(doomed),
                                            fail_attempts=10 ** 9)])
                lazy = run_sweep("lazy", repo, candidates, plan=plan)
                naive = run_sweep("naive", repo, candidates,
                                  plan=plan)
                self.assert_equivalent(lazy, naive)
                self.assertGreater(lazy.faults, 0)
                self.assertGreater(naive.faults, 0)
                chosen = {p.code for p in lazy.patterns}
                self.assertFalse(chosen & doomed)

    def test_pre_expired_deadline(self):
        for seed in SEEDS:
            with self.subTest(seed=seed):
                repo, candidates = make_instance(seed)
                self.assertLess(2 * len(candidates),
                                DEADLINE_POLL_EVERY)
                lazy = run_sweep("lazy", repo, candidates,
                                 deadline=Deadline(0.0))
                naive = run_sweep("naive", repo, candidates,
                                  deadline=Deadline(0.0))
                self.assert_equivalent(lazy, naive)
                self.assertFalse(lazy.complete)
                # the anytime contract: one round still lands
                self.assertEqual(1, len(lazy.patterns))

    def test_lazy_performs_strictly_fewer_evaluations(self):
        repo, candidates = make_instance(0, n_candidates=14)
        before = metrics.registry().counters.get(
            "patterns.greedy.lazy_hits", 0)
        lazy = run_sweep("lazy", repo, candidates)
        saved = metrics.registry().counters.get(
            "patterns.greedy.lazy_hits", 0) - before
        naive = run_sweep("naive", repo, candidates)
        self.assertLess(lazy.evaluations, naive.evaluations)
        self.assertGreater(saved, 0)
        self.assertEqual(lazy.evaluations + saved
                         - len(candidates),  # bound-seeding pass
                         naive.evaluations)


class IncrementalScorer(unittest.TestCase):
    """The commit/marginal layer is bitwise-faithful to the oracle."""

    def setUp(self):
        self.repo, self.candidates = make_instance(1)
        self.scorer = SetScorer(CoverageIndex(self.repo))

    def test_marginal_score_bitwise_equals_oracle(self):
        committed = []
        oracle = SetScorer(CoverageIndex(self.repo))
        for pattern in self.candidates[:4]:
            for candidate in self.candidates:
                self.assertEqual(
                    oracle.score(committed + [candidate]),
                    self.scorer.marginal_score(candidate))
            self.scorer.commit(pattern)
            committed.append(pattern)
            self.assertEqual(oracle.score(committed),
                             self.scorer.committed_score())

    def test_commit_rollback_is_exact(self):
        for pattern in self.candidates[:3]:
            self.scorer.commit(pattern)
        reference = [self.scorer.marginal_score(c)
                     for c in self.candidates]
        score_before = self.scorer.committed_score()
        self.scorer.commit(self.candidates[5])
        rolled = self.scorer.rollback()
        self.assertIs(self.candidates[5], rolled)
        self.assertEqual(score_before, self.scorer.committed_score())
        self.assertEqual(reference, [self.scorer.marginal_score(c)
                                     for c in self.candidates])

    def test_rollback_on_empty_state_raises(self):
        from repro.errors import BudgetError
        with self.assertRaises(BudgetError):
            self.scorer.rollback()

    def test_reset_clears_committed_state(self):
        solo = self.scorer.marginal_score(self.candidates[0])
        self.scorer.commit(self.candidates[1])
        self.scorer.reset()
        self.assertEqual((), self.scorer.committed)
        self.assertEqual(solo,
                         self.scorer.marginal_score(self.candidates[0]))

    def test_sim_cache_is_lru_bounded(self):
        scorer = SetScorer(CoverageIndex(self.repo),
                           sim_cache_entries=4)
        scorer.score(self.candidates[:6])  # 15 pairs >> 4 slots
        stats = scorer.sim_cache_stats()
        self.assertLessEqual(stats["entries"], 4)
        self.assertGreater(stats["evictions"], 0)
        self.assertEqual(stats["misses"] - stats["entries"],
                         stats["evictions"])

    def test_greedy_publishes_sim_cache_gauges(self):
        run_sweep("lazy", self.repo, self.candidates)
        gauges = metrics.registry().gauges
        self.assertIn("patterns.scorer.sim_cache.size", gauges)
        self.assertIn("patterns.scorer.sim_cache.evictions", gauges)


class ExhaustiveIncremental(unittest.TestCase):
    """exhaustive_select walks the incremental path, same optimum."""

    def test_matches_stateless_enumeration(self):
        repo, candidates = make_instance(2, n_candidates=6)
        budget = PatternBudget(3, min_size=3, max_size=8)
        before = metrics.registry().counters.get(
            "patterns.exhaustive.calls", 0)
        result = exhaustive_select(candidates, budget,
                                   SetScorer(CoverageIndex(repo)))
        calls = metrics.registry().counters.get(
            "patterns.exhaustive.calls", 0)
        self.assertEqual(before + 1, calls)
        oracle = SetScorer(CoverageIndex(repo))
        best_score = 0.0
        best = ()
        for k in range(1, budget.max_patterns + 1):
            for combo in itertools.combinations(candidates, k):
                score = oracle.score(combo)
                if score > best_score:
                    best_score = score
                    best = combo
        self.assertEqual(best_score, result.score)
        self.assertEqual([p.code for p in best],
                         [p.code for p in result.patterns])

    def test_scorer_state_is_clean_afterwards(self):
        repo, candidates = make_instance(2, n_candidates=5)
        scorer = SetScorer(CoverageIndex(repo))
        exhaustive_select(candidates, PatternBudget(2, min_size=3,
                                                    max_size=8),
                          scorer)
        self.assertEqual((), scorer.committed)


class SeededCovers(unittest.TestCase):
    """CoverageIndex.seed_cover: synthetic covers without matching."""

    def test_seeded_cover_is_used_verbatim(self):
        repo, _ = make_instance(0, repo_size=4, n_candidates=1)
        index = CoverageIndex(repo)
        pattern = Pattern(repo[0])
        edges = frozenset(list(repo[0].edges())[:2])
        index.seed_cover(pattern, {1: edges})
        self.assertEqual({1: edges}, index.cover_of(pattern))
        self.assertTrue(index.is_indexed(pattern))

    def test_seeding_is_idempotent_like_add_pattern(self):
        repo, _ = make_instance(0, repo_size=4, n_candidates=1)
        index = CoverageIndex(repo)
        pattern = Pattern(repo[0])
        edges = frozenset(list(repo[0].edges())[:2])
        index.seed_cover(pattern, {1: edges})
        index.seed_cover(pattern, {2: edges})  # ignored: already in
        index.add_pattern(pattern)             # ignored: already in
        self.assertEqual({1: edges}, index.cover_of(pattern))


if __name__ == "__main__":
    unittest.main()
