"""Tests for modelled preference measures."""

import pytest

from repro.datasets import generate_chemical_repository, generate_workload
from repro.graph import complete_graph, path_graph
from repro.patterns import Pattern, default_basic_patterns
from repro.usability import (
    CRITERIA,
    PreferenceProfile,
    StudyCondition,
    evaluate_preferences,
    preference_table,
    run_study,
)
from repro.usability.metrics import FormulationOutcome


def outcome(steps=10, seconds=12.0, errors=0, pattern_uses=0):
    return FormulationOutcome(steps, seconds, errors, pattern_uses, {})


class TestProfile:
    def test_requires_all_criteria(self):
        with pytest.raises(ValueError):
            PreferenceProfile({"efficiency": 1.0})

    def test_scores_clamped(self):
        profile = PreferenceProfile(
            {c: 2.0 for c in CRITERIA})
        assert all(profile[c] == 1.0 for c in CRITERIA)

    def test_composite_mean(self):
        profile = PreferenceProfile({c: 0.5 for c in CRITERIA})
        assert profile.composite() == pytest.approx(0.5)


class TestEvaluate:
    def test_all_scores_in_range(self):
        profile = evaluate_preferences(
            [outcome()], default_basic_patterns(), baseline_seconds=15.0)
        for criterion in CRITERIA:
            assert 0.0 <= profile[criterion] <= 1.0

    def test_faster_is_more_efficient(self):
        fast = evaluate_preferences([outcome(seconds=8.0)], [],
                                    baseline_seconds=16.0)
        slow = evaluate_preferences([outcome(seconds=16.0)], [],
                                    baseline_seconds=16.0)
        assert fast["efficiency"] > slow["efficiency"]

    def test_errors_hurt(self):
        clean = evaluate_preferences([outcome(errors=0)], [],
                                     baseline_seconds=12.0)
        sloppy = evaluate_preferences([outcome(errors=2)], [],
                                      baseline_seconds=12.0)
        assert clean["errors"] > sloppy["errors"]
        assert clean["robustness"] > sloppy["robustness"]

    def test_panel_raises_flexibility(self):
        with_panel = evaluate_preferences(
            [outcome(pattern_uses=1)], default_basic_patterns(),
            baseline_seconds=12.0)
        without = evaluate_preferences([outcome()], [],
                                       baseline_seconds=12.0)
        assert with_panel["flexibility"] > without["flexibility"]

    def test_heavy_panel_hurts_learnability(self):
        light = [Pattern(path_graph(4, label="A"))]
        heavy = [Pattern(complete_graph(8, label="A"))]
        profile_light = evaluate_preferences([outcome()], light,
                                             baseline_seconds=12.0)
        profile_heavy = evaluate_preferences([outcome()], heavy,
                                             baseline_seconds=12.0)
        assert (profile_light["learnability"]
                > profile_heavy["learnability"])
        assert (profile_light["memorability"]
                > profile_heavy["memorability"])

    def test_many_steps_frustrate(self):
        relaxed = evaluate_preferences(
            [outcome(steps=5)], default_basic_patterns(),
            baseline_seconds=12.0)
        frustrated = evaluate_preferences(
            [outcome(steps=30)], default_basic_patterns(),
            baseline_seconds=12.0)
        assert relaxed["satisfaction"] > frustrated["satisfaction"]

    def test_deterministic(self):
        a = evaluate_preferences([outcome()], [], baseline_seconds=10.0)
        b = evaluate_preferences([outcome()], [], baseline_seconds=10.0)
        assert a.scores == b.scores

    def test_zero_baseline_safe(self):
        profile = evaluate_preferences([outcome()], [],
                                       baseline_seconds=0.0)
        assert profile["efficiency"] == 0.5


class TestStudyIntegration:
    def test_data_driven_preferred_overall(self):
        """The paper's preference claim: the data-driven VQI provides
        a superior experience."""
        repo = generate_chemical_repository(25, seed=61)
        workload = list(generate_workload(repo, 12, seed=62))
        from repro.catapult import CatapultConfig, select_canned_patterns
        from repro.patterns import PatternBudget
        selection = select_canned_patterns(
            repo, PatternBudget(5, min_size=4, max_size=8),
            CatapultConfig(seed=1))
        panel = default_basic_patterns() + list(selection.patterns)
        study = run_study(workload, [
            StudyCondition("manual", []),
            StudyCondition("data-driven", panel),
        ], error_probability=0.03, seed=63)
        baseline = study.by_name("manual").summary["mean_seconds"]
        manual = evaluate_preferences(
            study.by_name("manual").outcomes, [], baseline)
        data_driven = evaluate_preferences(
            study.by_name("data-driven").outcomes, panel, baseline)
        assert data_driven.composite() > manual.composite()
        assert data_driven["flexibility"] > manual["flexibility"]
        assert data_driven["satisfaction"] > manual["satisfaction"]

    def test_table_shape(self):
        profile = PreferenceProfile({c: 0.5 for c in CRITERIA})
        rows = preference_table({"x": profile})
        assert len(rows) == 1
        assert len(rows[0]) == 1 + len(CRITERIA) + 1
