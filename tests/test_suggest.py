"""Tests for data-driven query auto-suggestion."""

import pytest

from repro.datasets import generate_chemical_repository
from repro.errors import GraphError
from repro.graph import build_graph
from repro.query import QueryBuilder, QuerySuggester


def tiny_data():
    """Two graphs with known triple frequencies."""
    g1 = build_graph([(0, "A"), (1, "B"), (2, "C")],
                     labeled_edges=[(0, 1, "x"), (1, 2, "y")])
    g2 = build_graph([(0, "A"), (1, "B")],
                     labeled_edges=[(0, 1, "x")])
    return [g1, g2]


class TestTripleMining:
    def test_counts(self):
        s = QuerySuggester(tiny_data())
        assert s.triple_count("A", "x", "B") == 2
        assert s.triple_count("B", "x", "A") == 2  # symmetric
        assert s.triple_count("B", "y", "C") == 1
        assert s.triple_count("A", "y", "C") == 0

    def test_same_label_counted_once_per_edge(self):
        g = build_graph([(0, "A"), (1, "A")],
                        labeled_edges=[(0, 1, "e")])
        s = QuerySuggester([g])
        assert s.triple_count("A", "e", "A") == 1

    def test_empty_data_rejected(self):
        with pytest.raises(GraphError):
            QuerySuggester([])


class TestSuggestions:
    def test_ranked_by_frequency(self):
        s = QuerySuggester(tiny_data())
        suggestions = s.suggest_extensions("B")
        assert suggestions[0][:2] == ("x", "A")  # count 2 beats count 1
        assert suggestions[1][:2] == ("y", "C")

    def test_top_k(self):
        repo = generate_chemical_repository(20, seed=3)
        s = QuerySuggester(repo)
        assert len(s.suggest_extensions("C", top_k=2)) == 2

    def test_unknown_label_no_suggestions(self):
        s = QuerySuggester(tiny_data())
        assert s.suggest_extensions("ZZZ") == []

    def test_suggest_for_query_node(self):
        s = QuerySuggester(tiny_data())
        qb = QueryBuilder()
        node = qb.add_node("A")
        suggestions = s.suggest_for_query(qb, node)
        assert suggestions[0][:2] == ("x", "B")

    def test_missing_query_node_rejected(self):
        s = QuerySuggester(tiny_data())
        qb = QueryBuilder()
        with pytest.raises(GraphError):
            s.suggest_for_query(qb, 7)

    def test_answerable_only_filters(self):
        # "A-x-B" then extending B with another "x"-edge to A exists
        # only in no graph (each graph has one A); the unverified list
        # would still suggest it.
        s = QuerySuggester(tiny_data())
        qb = QueryBuilder()
        a = qb.add_node("A")
        b = qb.add_node("B")
        qb.add_edge(a, b, "x")
        unverified = s.suggest_for_query(qb, b, top_k=5)
        verified = s.suggest_for_query(qb, b, top_k=5,
                                       answerable_only=True)
        assert ("x", "A", 2) in unverified
        assert ("x", "A", 2) not in verified
        assert ("y", "C", 1) in verified

    def test_apply_suggestion(self):
        s = QuerySuggester(tiny_data())
        qb = QueryBuilder()
        node = qb.add_node("A")
        suggestion = s.suggest_for_query(qb, node)[0]
        new_node = s.apply_suggestion(qb, node, suggestion)
        assert qb.query.node_label(new_node) == "B"
        assert qb.query.edge_label(node, new_node) == "x"
        assert qb.step_count() == 3  # add A, add B, add edge

    def test_answerable_suggestions_truly_answerable(self):
        from repro.matching import is_subgraph
        repo = generate_chemical_repository(15, seed=9)
        s = QuerySuggester(repo)
        qb = QueryBuilder()
        node = qb.add_node("C")
        for suggestion in s.suggest_for_query(qb, node, top_k=3,
                                              answerable_only=True):
            trial = QueryBuilder()
            n0 = trial.add_node("C")
            s.apply_suggestion(trial, n0, suggestion)
            assert any(is_subgraph(trial.query, g) for g in repo)
