"""Unit tests for the reprolint whole-program analysis engine.

Covers the three passes behind rules R011-R015 directly — the symbol
table (import-chain resolution, re-export canonicalisation), the call
graph (method edges, ``functools.partial`` references, reachability),
and the per-function dataflow helpers (def-use, attribute mutations,
closure capture, all-paths restore) — plus the ``ProjectAnalysis``
facade and the content-addressed AST cache used by ``--project``.
"""

import ast
import os
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOLS_DIR = REPO_ROOT / "tools"
SRC_TREE = REPO_ROOT / "src" / "repro"

sys.path.insert(0, str(TOOLS_DIR))

from reprolint.analysis.callgraph import CallGraph  # noqa: E402
from reprolint.analysis.dataflow import (  # noqa: E402
    attribute_mutations, closure_captures, def_use,
    mutations_missing_restore, shallow_walk)
from reprolint.analysis.modules import (  # noqa: E402
    SymbolTable, module_name_for_path)
from reprolint.analysis.project import (  # noqa: E402
    ANALYSIS_PASSES, AstCache, ProjectAnalysis)

PKG_FILES = {
    "pkg/__init__.py": "from .core import run\n",
    "pkg/core.py": (
        "import functools\n"
        "from .sub.util import helper as util_helper\n"
        "\n"
        "def run(items):\n"
        "    return [util_helper(i) for i in items]\n"
        "\n"
        "def sched():\n"
        "    return functools.partial(util_helper, 1)\n"
        "\n"
        "class Engine:\n"
        "    def __init__(self):\n"
        "        self._cache = {}\n"
        "        self._version = 0\n"
        "\n"
        "    def step(self):\n"
        "        self.refresh()\n"
        "\n"
        "    def refresh(self):\n"
        "        self._cache.clear()\n"
        "        self._version += 1\n"
    ),
    "pkg/sub/__init__.py": "",
    "pkg/sub/util.py": (
        "def helper(x):\n"
        "    return x + 1\n"
        "\n"
        "def lonely():\n"
        "    return 0\n"
    ),
}


def write_pkg(root):
    for rel, source in PKG_FILES.items():
        path = Path(root) / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")


def build_table(root):
    table = SymbolTable()
    for rel in sorted(PKG_FILES):
        path = Path(root) / rel
        table.add_file(str(path), ast.parse(path.read_text()))
    return table


def parse_func(source):
    """The first function definition in ``source``."""
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            return node
    raise AssertionError("no function in snippet")


class TestModuleNaming(unittest.TestCase):
    def test_packaged_file_walks_init_chain(self):
        self.assertEqual(
            "repro.graph.graph",
            module_name_for_path(str(SRC_TREE / "graph" / "graph.py")))

    def test_package_init_names_the_package(self):
        self.assertEqual(
            "repro.perf",
            module_name_for_path(str(SRC_TREE / "perf" / "__init__.py")))

    def test_loose_file_uses_bare_stem(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "fixture.py")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("x = 1\n")
            self.assertEqual("fixture", module_name_for_path(path))


class TestSymbolTable(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)
        write_pkg(self._tmp.name)
        self.table = build_table(self._tmp.name)

    def test_aliased_relative_import_resolves(self):
        self.assertEqual(
            "pkg.sub.util.helper",
            self.table.resolve("pkg.core", "util_helper"))

    def test_reexport_canonicalises_through_package_init(self):
        # pkg/__init__.py re-exports run via a *relative* import
        self.assertEqual("pkg.core.run",
                         self.table.canonical("pkg.run"))

    def test_method_symbols_carry_owner_class(self):
        symbol = self.table.function("pkg.core.Engine.step")
        self.assertIsNotNone(symbol)
        self.assertEqual("pkg.core.Engine", symbol.owner_class)
        self.assertTrue(symbol.is_method)

    def test_class_attributes_collected_from_self_writes(self):
        cls = self.table.cls("pkg.core.Engine")
        self.assertEqual(("_cache", "_version"), cls.attributes)

    def test_functions_named_finds_every_terminal_match(self):
        dotted = {s.dotted for s in self.table.functions_named("run")}
        self.assertEqual({"pkg.core.run"}, dotted)

    def test_unknown_name_resolves_to_none(self):
        self.assertIsNone(self.table.resolve("pkg.core", "nonesuch"))

    def test_real_tree_reexport(self):
        analysis = ProjectAnalysis()
        for path in sorted(SRC_TREE.rglob("*.py")):
            analysis.add_file(str(path),
                              ast.parse(path.read_text()))
        self.assertEqual(
            "repro.perf.executor.pmap",
            analysis.symbols.canonical("repro.perf.pmap"))


class TestCallGraph(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)
        write_pkg(self._tmp.name)
        self.graph = CallGraph(build_table(self._tmp.name))

    def test_direct_call_edge_through_aliased_import(self):
        self.assertIn("pkg.sub.util.helper",
                      self.graph.callees("pkg.core.run"))

    def test_functools_partial_creates_reference_edge(self):
        self.assertIn("pkg.sub.util.helper",
                      self.graph.callees("pkg.core.sched"))

    def test_self_method_call_edge(self):
        self.assertIn("pkg.core.Engine.refresh",
                      self.graph.callees("pkg.core.Engine.step"))

    def test_callers_is_the_reverse_view(self):
        self.assertIn("pkg.core.run",
                      self.graph.callers("pkg.sub.util.helper"))

    def test_reachable_from_excludes_unreferenced(self):
        reachable = self.graph.reachable_from(["pkg.core.run"])
        self.assertIn("pkg.sub.util.helper", reachable)
        self.assertNotIn("pkg.sub.util.lonely", reachable)

    def test_reaches_exact_and_prefix_targets(self):
        self.assertTrue(self.graph.reaches(
            "pkg.core.run", frozenset({"pkg.sub.util.helper"})))
        self.assertTrue(self.graph.reaches(
            "pkg.core.run", frozenset({"pkg.sub."})))
        self.assertFalse(self.graph.reaches(
            "pkg.core.run", frozenset({"pkg.sub.util.lonely"})))


class TestDataflow(unittest.TestCase):
    def test_def_use_tracks_rebindings(self):
        func = parse_func("def f(x):\n"
                          "    y = x + 1\n"
                          "    y = y * 2\n"
                          "    return y\n")
        flow = def_use(func)
        self.assertEqual(2, len(flow.bindings_of("y")))
        self.assertEqual([], flow.bindings_of("z"))

    def test_shallow_walk_skips_nested_scopes(self):
        func = parse_func("def f():\n"
                          "    a = 1\n"
                          "    def g():\n"
                          "        b = 2\n"
                          "    return a\n")
        stores = [n.id for n in shallow_walk(func)
                  if isinstance(n, ast.Name)
                  and isinstance(n.ctx, ast.Store)]
        self.assertIn("a", stores)
        self.assertNotIn("b", stores)

    def test_attribute_mutation_kinds(self):
        func = parse_func("def f(self, k):\n"
                          "    self._adj[k] = set()\n"
                          "    self._count += 1\n"
                          "    del self._labels[k]\n"
                          "    self._queue.append(k)\n")
        kinds = [(m.attr, m.kind)
                 for m in attribute_mutations(func)]
        self.assertEqual([("_adj", "subscript"),
                          ("_count", "augassign"),
                          ("_labels", "delete"),
                          ("_queue", "append")], kinds)

    def test_closure_captures_lists_enclosing_names(self):
        func = parse_func("def f(items, scale):\n"
                          "    def worker(item):\n"
                          "        return item * scale\n"
                          "    return worker\n")
        captures = closure_captures(func)
        self.assertEqual(1, len(captures))
        self.assertEqual(("scale",), captures[0][1])

    def test_module_level_reference_is_not_a_capture(self):
        func = parse_func("LIMIT = 3\n"
                          "def f(items):\n"
                          "    def worker(item):\n"
                          "        return item * LIMIT\n"
                          "    return worker\n")
        captures = closure_captures(func)
        self.assertEqual(1, len(captures))
        self.assertEqual((), captures[0][1])

    def mutation_callbacks(self):
        def mutates(stmt):
            if isinstance(stmt, ast.Assign) \
                    and isinstance(stmt.targets[0], ast.Subscript):
                return [stmt]
            return []

        def restores(stmt):
            return isinstance(stmt, ast.AugAssign) \
                and isinstance(stmt.target, ast.Attribute) \
                and stmt.target.attr == "_version"

        return mutates, restores

    def test_restore_on_one_branch_only_leaks(self):
        func = parse_func("def f(self, flag):\n"
                          "    self._adj[1] = 2\n"
                          "    if flag:\n"
                          "        self._version += 1\n")
        leaked = mutations_missing_restore(
            func, *self.mutation_callbacks())
        self.assertEqual(1, len(leaked))

    def test_restore_on_every_path_is_clean(self):
        func = parse_func("def f(self, flag):\n"
                          "    self._adj[1] = 2\n"
                          "    if flag:\n"
                          "        self._version += 1\n"
                          "    else:\n"
                          "        self._version += 1\n")
        self.assertEqual([], mutations_missing_restore(
            func, *self.mutation_callbacks()))

    def test_raise_paths_are_exempt(self):
        func = parse_func("def f(self, flag):\n"
                          "    if flag:\n"
                          "        self._adj[1] = 2\n"
                          "        raise ValueError('boom')\n"
                          "    self._version += 1\n")
        self.assertEqual([], mutations_missing_restore(
            func, *self.mutation_callbacks()))

    def test_loop_body_mutation_needs_restore_after_zero_trips(self):
        # the loop may run zero times, but the mutation inside it
        # still needs a restore on the fall-through path
        func = parse_func("def f(self, items):\n"
                          "    for item in items:\n"
                          "        self._adj[item] = set()\n")
        leaked = mutations_missing_restore(
            func, *self.mutation_callbacks())
        self.assertEqual(1, len(leaked))


class TestProjectAnalysis(unittest.TestCase):
    def analysis(self, root):
        analysis = ProjectAnalysis()
        for rel in sorted(PKG_FILES):
            path = Path(root) / rel
            analysis.add_file(str(path), ast.parse(path.read_text()))
        return analysis

    def test_build_records_pass_timings(self):
        with tempfile.TemporaryDirectory() as tmp:
            write_pkg(tmp)
            analysis = self.analysis(tmp)
            analysis.build(ANALYSIS_PASSES)
            self.assertEqual({"symbols", "callgraph"},
                             set(analysis.pass_timings))

    def test_unknown_pass_is_an_error(self):
        with self.assertRaises(ValueError):
            ProjectAnalysis().build(["typestate"])

    def test_add_file_after_build_is_an_error(self):
        with tempfile.TemporaryDirectory() as tmp:
            write_pkg(tmp)
            analysis = self.analysis(tmp)
            analysis.build(["symbols"])
            with self.assertRaises(RuntimeError):
                analysis.add_file("late.py", ast.parse("x = 1\n"))

    def test_module_for_maps_paths_back(self):
        with tempfile.TemporaryDirectory() as tmp:
            write_pkg(tmp)
            analysis = self.analysis(tmp)
            info = analysis.module_for(
                str(Path(tmp) / "pkg" / "core.py"))
            self.assertEqual("pkg.core", info.name)


class TestAstCache(unittest.TestCase):
    SOURCE = "def f():\n    return 1\n"

    def test_second_parse_hits(self):
        with tempfile.TemporaryDirectory() as tmp:
            cache = AstCache(tmp)
            first = cache.parse("a.py", self.SOURCE)
            second = cache.parse("a.py", self.SOURCE)
        self.assertIsInstance(first, ast.Module)
        self.assertIsInstance(second, ast.Module)
        self.assertEqual(1, cache.misses)
        self.assertEqual(1, cache.hits)

    def test_changed_source_misses(self):
        with tempfile.TemporaryDirectory() as tmp:
            cache = AstCache(tmp)
            cache.parse("a.py", self.SOURCE)
            cache.parse("a.py", self.SOURCE + "\nx = 2\n")
        self.assertEqual(2, cache.misses)
        self.assertEqual(0, cache.hits)

    def test_corrupt_entry_falls_back_to_fresh_parse(self):
        with tempfile.TemporaryDirectory() as tmp:
            cache = AstCache(tmp)
            cache.parse("a.py", self.SOURCE)
            (entry,) = os.listdir(tmp)
            with open(os.path.join(tmp, entry), "wb") as handle:
                handle.write(b"not a pickle")
            fresh = AstCache(tmp)
            tree = fresh.parse("a.py", self.SOURCE)
        self.assertIsInstance(tree, ast.Module)
        self.assertEqual(1, fresh.misses)

    def test_unwritable_directory_degrades_silently(self):
        cache = AstCache(os.path.join(os.sep, "proc", "no-such-dir"))
        tree = cache.parse("a.py", self.SOURCE)
        self.assertIsInstance(tree, ast.Module)

    def test_digest_is_stable(self):
        self.assertEqual(AstCache.digest(self.SOURCE),
                         AstCache.digest(self.SOURCE))
        self.assertNotEqual(AstCache.digest(self.SOURCE),
                            AstCache.digest(self.SOURCE + " "))


if __name__ == "__main__":
    unittest.main()
