"""White-box tests for MIDAS's incrementally-maintained state."""

import random

import pytest

from repro.datasets import (
    UpdateBatch,
    generate_chemical_repository,
    generate_molecule,
)
from repro.graphlets import repository_gfd
from repro.midas import Midas, MidasConfig
from repro.patterns import PatternBudget


@pytest.fixture(scope="module")
def midas():
    repo = generate_chemical_repository(30, seed=81)
    return Midas(repo, PatternBudget(4, min_size=4, max_size=8),
                 MidasConfig(seed=1, drift_threshold=0.5))


class TestGfdBookkeeping:
    def test_initial_gfd_matches_batch_recomputation(self, midas):
        assert midas.gfd() == pytest.approx(
            repository_gfd(midas.graphs()))

    def test_gfd_stays_exact_across_batches(self, midas):
        rng = random.Random(2)
        batch = UpdateBatch(
            added=[generate_molecule(rng, name=f"gfd{i}")
                   for i in range(4)],
            removed=[midas.graphs()[0].name])
        midas.apply_batch(batch)
        incremental = midas.gfd()
        recomputed = repository_gfd(midas.graphs())
        for key, value in recomputed.items():
            assert incremental[key] == pytest.approx(value)


class TestClusterBookkeeping:
    def test_every_graph_has_a_cluster(self, midas):
        names = {g.name for g in midas.graphs()}
        assert set(midas.membership) == names

    def test_summaries_cover_nonempty_clusters(self, midas):
        populated = set(midas.membership.values())
        assert populated <= set(midas.summaries)

    def test_summary_membership_counts(self, midas):
        from collections import Counter
        counts = Counter(midas.membership.values())
        for cluster, summary in midas.summaries.items():
            assert summary.member_count == counts[cluster]


class TestVocabulary:
    def test_vocabulary_is_closed_set(self, midas):
        from repro.clustering import closed_frequent_trees
        vocabulary = midas.fct.frequent_closed()
        # closedness is idempotent
        assert len(closed_frequent_trees(vocabulary)) == len(vocabulary)

    def test_fct_counts_match_repository(self, midas):
        assert midas.fct.graph_count == len(midas.graphs())
