"""Tests for the consolidated usability report."""

import pytest

from repro.catapult import CatapultConfig, select_canned_patterns
from repro.datasets import generate_chemical_repository, generate_workload
from repro.patterns import PatternBudget
from repro.usability import usability_report


@pytest.fixture(scope="module")
def report():
    repo = generate_chemical_repository(20, seed=91)
    workload = list(generate_workload(repo, 8, seed=92))
    selection = select_canned_patterns(
        repo, PatternBudget(4, min_size=4, max_size=8),
        CatapultConfig(seed=1))
    return usability_report(workload, list(selection.patterns),
                            title="Test report", seed=3)


class TestUsabilityReport:
    def test_sections_present(self, report):
        assert "# Test report" in report.markdown
        assert "## Performance measures" in report.markdown
        assert "## Preference measures" in report.markdown
        assert "## Learning curve" in report.markdown

    def test_tables_well_formed(self, report):
        lines = [l for l in report.markdown.splitlines()
                 if l.startswith("|")]
        assert lines
        for line in lines:
            assert line.endswith("|")

    def test_raw_numbers_attached(self, report):
        assert report.study.by_name("manual")
        assert "data-driven" in report.preferences
        assert report.learning_curve.session_seconds

    def test_headline_claims_in_text(self, report):
        assert "fewer" in report.markdown
        assert "faster" in report.markdown

    def test_save(self, report, tmp_path):
        path = tmp_path / "report.md"
        report.save(str(path))
        assert path.read_text().startswith("# Test report")
