"""Planted R017 violations: stateless score() on a committed scorer.

``SetScorer.score(patterns)`` rebuilds the fold from scratch for the
set it is handed and silently ignores everything ``commit()`` folded
into the incremental state — calling it with commits pending almost
always means the caller thinks the committed patterns are included.
"""


def score_after_commit(scorer, first, rest):
    scorer.commit(first)
    return scorer.score(rest)  # expect: R017


def reset_then_commit_again(scorer, pattern, others):
    scorer.commit(pattern)
    scorer.reset()
    scorer.commit(pattern)
    best = scorer.score(others)  # expect: R017
    return best
