"""Fixture: the compliant ways to call rng-consuming helpers (R005)."""

import random


def sample_nodes(graph, rng=None):
    rng = rng or random.Random(0)
    nodes = sorted(graph)
    return nodes[: rng.randint(1, max(len(nodes), 1))]


def summarize(graph, rng=None):
    # caller exposes rng itself and threads it through
    return sample_nodes(graph, rng=rng)


def digest(graph, seed=0):
    # exposing a seed parameter is equally acceptable
    return sample_nodes(graph, random.Random(seed))


def _internal_probe(graph):
    # private helpers are trusted; their public callers are checked
    return sample_nodes(graph)


def replay(graph):
    # passing an explicitly seeded rng is deterministic
    return sample_nodes(graph, rng=random.Random(7))
