"""Deliberate R019 violations: this file sits under a store/ dir.

Each function takes a durable-write action without the fsync
discipline the store package promises.
"""

import os


def bare_append(path, payload):
    with open(path, "ab") as handle:
        handle.write(payload)  # expect: R019
        handle.flush()
    return len(payload)


def rename_then_sync(path, data):
    temp = path + ".tmp"
    with open(temp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.replace(temp, path)  # expect: R019
        os.fsync(handle.fileno())


def outer_write_inner_sync(path, data):
    with open(path, "wb") as handle:
        handle.write(data)  # expect: R019

        def finish():
            os.fsync(handle.fileno())

        return finish
