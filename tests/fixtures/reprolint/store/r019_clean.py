"""In-scope clean fixture for R019: durable writes done right.

Every write is followed by flush + fsync, and renames only happen
after the temp file's bytes are on disk.
"""

import os


def durable_append(path, payload):
    with open(path, "ab") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    return len(payload)


def atomic_write(path, data):
    temp = path + ".tmp"
    with open(temp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)


def helper_sync(directory, path, data):
    with open(path, "wb") as handle:
        handle.write(data)
        handle.flush()
        fsync_dir(directory)


def fsync_dir(directory):
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def read_only(path):
    with open(path, "rb") as handle:
        return handle.read()


def rename_without_write(path):
    os.replace(path, path + ".quarantined")
