"""Fixture: every spelling of nondeterministic RNG use (R001)."""

import random
from random import choice


def jitter(values):
    rng = random.Random()  # expect: R001
    noisy = [v + rng.random() for v in values]
    pick = random.choice(noisy)  # expect: R001
    other = choice(noisy)  # expect: R001
    random.shuffle(noisy)  # expect: R001
    return pick, other, noisy
