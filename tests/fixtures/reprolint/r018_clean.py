"""Clean for R018: stats read through the consolidated endpoint, and
same-named *methods* (which never resolve through an import) stay
allowed."""

from repro.obs import matching_snapshot, snapshot


def poll_consolidated():
    return snapshot()["matching"], matching_snapshot()


def poll_index(index, engine):
    # CoverageIndex.cache_stats() / Midas.cache_stats() are methods,
    # not the deprecated module-level aliases.
    return index.cache_stats(), engine.cache_stats()
