"""Fixture: enumeration call sites missing an explicit cap (R003)."""


def score_pattern(matcher, pattern, target, patterns, graph, vqi,
                  count_embeddings, covered_edges, set_covered_edges):
    mappings = list(matcher.iter_embeddings())  # expect: R003
    total = count_embeddings(pattern, target)  # expect: R003
    edges = covered_edges(pattern, target)  # expect: R003
    union = set_covered_edges(patterns, graph)  # expect: R003
    results = vqi.execute()  # expect: R003
    return mappings, total, edges, union, results
