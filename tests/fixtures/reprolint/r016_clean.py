"""Out-of-scope for R016: not under a matching/ or truss/ directory.

Mixing a compact view with dict-path adjacency is only a hot-loop
concern inside the kernels; pipeline and test code may do both.
"""


def mixed_outside_kernels(graph, u):
    c = graph.compact()
    return c.order() + sum(1 for _ in graph.neighbors(u))
