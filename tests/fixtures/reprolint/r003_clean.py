"""Fixture: every enumeration call carries its cap (R003)."""


def score_pattern(matcher, pattern, target, patterns, graph, vqi,
                  count_embeddings, covered_edges, set_covered_edges,
                  forwarded_args, forwarded_kwargs):
    mappings = list(matcher.iter_embeddings(max_results=10))
    explicit_none = list(matcher.iter_embeddings(max_results=None))
    total = count_embeddings(pattern, target, cap=50)
    edges = covered_edges(pattern, target, 200)
    union = set_covered_edges(patterns, graph, max_embeddings=100)
    results = vqi.execute(max_embeddings=10)
    forwarded = covered_edges(*forwarded_args)
    expanded = vqi.execute(**forwarded_kwargs)
    return (mappings, explicit_none, total, edges, union, results,
            forwarded, expanded)
