"""Out-of-scope for R019: not under a store/ directory.

fsync discipline is a durability contract of the store package;
ordinary file writing elsewhere (reports, exports, request logs with
their own policy) is not constrained by this rule.
"""

import os


def plain_write(path, text):
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def rename_first(path, data):
    temp = path + ".tmp"
    with open(temp, "wb") as handle:
        handle.write(data)
        os.replace(temp, path)
