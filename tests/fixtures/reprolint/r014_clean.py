"""R014 clean fixture: monotonic duration timing is allowed anywhere,
and set iteration is fine once sorted (or when it cannot feed the
returned ordering)."""

import time


def run_catapult(repos):
    started = time.perf_counter()
    names = {repo.name for repo in repos}
    ordered = []
    for name in sorted(names):
        ordered.append(name)
    elapsed = time.perf_counter() - started
    return ordered, elapsed


def run_selection(candidates):
    pool = set(candidates)
    total = 0
    # order-independent reduction over a set: nothing ordered leaks
    for candidate in pool:
        total += 1
    return [total]


def helper_outside_result_paths(items):
    # not reachable from a result root: set iteration is unchecked
    out = []
    for item in {i for i in items}:
        out.append(item)
    return out
