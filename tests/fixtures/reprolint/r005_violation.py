"""Fixture: public API hiding a randomized helper (R005)."""

import random


def sample_nodes(graph, rng=None):
    rng = rng or random.Random(0)
    nodes = sorted(graph)
    return nodes[: rng.randint(1, max(len(nodes), 1))]


def perturb(values, *, seed=0):
    rng = random.Random(seed)
    return [v + rng.random() for v in values]


def summarize(graph):
    sample = sample_nodes(graph)  # expect: R005
    weights = perturb([1.0, 2.0])  # expect: R005
    return sample, weights
