"""R012 fixture: unpicklable pmap payloads — lambda, closure, bound
method, and process-local state riding a functools.partial."""

import functools
import threading

from repro.perf import pmap


def scale_all(items, factor):
    doubled = pmap(lambda x: x * factor, items)  # expect: R012

    def scale(x):
        return x * factor

    scaled = pmap(scale, items)  # expect: R012
    return doubled + scaled


class Runner:
    def work(self, item):
        return item

    def run(self, items):
        return pmap(self.work, items)  # expect: R012


def locked_run(items):
    lock = threading.Lock()
    worker = functools.partial(guarded, lock)  # expect: R012
    return pmap(worker, items)


def guarded(lock, item):
    with lock:
        return item


def partial_run(items):
    return pmap(
        functools.partial(guarded, threading.Lock()),  # expect: R012
        items)
