"""R011 clean fixture: every guarded mutation bumps on every path,
the version-tagged cache write is exempt, raise paths are exempt, and
callers copy views before mutating."""


class DuplicateNodeError(Exception):
    pass


class Graph:
    def __init__(self):
        self._adj = {}
        self._edge_labels = {}
        self._version = 0
        self._views = (0, {})

    def add_node(self, node):
        if node in self._adj:
            raise DuplicateNodeError(node)
        self._adj[node] = set()
        self._version += 1

    def prune(self, node):
        # both branches restore the invariant before exiting
        if node in self._adj:
            self._adj.pop(node)
            self._version += 1
            return True
        return False

    def clear(self):
        # delegation: _reset bumps for us
        self._adj.update({})
        self._reset()

    def _reset(self):
        self._adj.clear()
        self._version += 1

    def _view_cache(self):
        # the version-tagged cache write IS the invalidation scheme
        if self._views[0] != self._version:
            self._views = (self._version, {})
        return self._views[1]


def merge_neighbors(graph, u, v):
    # copying the view de-classifies the local: mutation is fine
    adj = dict(graph.adjacency_sets())
    adj[u] = set(adj.get(u, ())) | {v}
    return adj
