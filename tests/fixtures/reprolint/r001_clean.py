"""Fixture: deterministic RNG use that R001 must not flag."""

import random
from random import Random


def jitter(values, rng: random.Random):
    noisy = [v + rng.random() for v in values]
    rng.shuffle(noisy)
    return noisy


def replay(seed: int):
    rng = random.Random(seed)
    fallback = Random(0)
    return rng.random(), fallback.random()
