"""R013 clean fixture: every expensive stage loop polls, delegates,
or inherits coverage from an enclosing polled loop."""

from repro.matching import count_embeddings
from repro.patterns import greedy_select
from repro.resilience import Deadline


def extract_candidates(patterns, repos, deadline):
    found = []
    for repo in repos:
        if found and deadline.check("fixture.extract"):
            break
        for pattern in patterns:
            # inherits coverage from the enclosing polled loop
            found.append(count_embeddings(pattern, repo, False, cap=9))
    return found


def apply_batch(candidates, budget, deadline):
    picked = []
    while candidates:
        # delegation: the callee receives the deadline and polls it
        picked.append(greedy_select(candidates, budget,
                                    deadline=deadline))
        candidates = candidates[1:]
    return picked


def summarize_clusters(clusters):
    # no deadline in scope: the caller owns the budget, not us
    sizes = []
    for cluster in clusters:
        sizes.append(count_embeddings(cluster, cluster, False, cap=5))
    return sizes


def cheap_stage(repos, deadline):
    # cheap bookkeeping loops need no poll
    names = []
    for repo in repos:
        names.append(str(repo))
    return names
