"""Fixture: mutable default arguments (R004)."""

from collections import defaultdict


def accumulate(item, acc=[]):  # expect: R004
    acc.append(item)
    return acc


def register(name, table={}):  # expect: R004
    table[name] = True
    return table


def collect(*items, seen=set()):  # expect: R004
    seen.update(items)
    return seen


def bucketize(pairs, buckets=defaultdict(list)):  # expect: R004
    for key, value in pairs:
        buckets[key].append(value)
    return buckets
