"""Planted R018 violations: new internal callers of the deprecated
stats aliases.  All three spellings — package re-export, defining
module, aliased import — resolve to the same deprecated endpoints."""

from repro.matching import canonical_memo_stats, kernel_stats
from repro.perf import cache_stats
from repro.perf.cache import cache_stats as flat_stats


def poll_cache():
    return cache_stats()["hits"]  # expect: R018


def poll_kernel():
    checks = kernel_stats()  # expect: R018
    memo = canonical_memo_stats()  # expect: R018
    return checks, memo


def poll_aliased():
    return flat_stats()  # expect: R018
