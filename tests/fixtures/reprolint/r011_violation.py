"""R011 fixture: version-guarded mutations that skip the bump, and a
caller that mutates a cached-view return in place."""


class Graph:
    """Minimal version-guarded class (writes self._version)."""

    def __init__(self):
        self._adj = {}
        self._edge_labels = {}
        self._version = 0
        self._views = (0, {})

    def add_node(self, node):
        self._adj[node] = set()
        self._version += 1

    def prune(self, node):
        # early return path never bumps the version
        if node in self._adj:
            self._adj.pop(node)  # expect: R011
            return True
        return False

    def relabel(self, key, label):
        self._edge_labels[key] = label  # expect: R011
        # falls through without bumping


def merge_neighbors(graph, u, v):
    adj = graph.adjacency_sets()
    adj[u].add(v)  # expect: R011
    return adj
