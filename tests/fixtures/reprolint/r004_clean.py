"""Fixture: safe defaults — None sentinels and immutables (R004)."""


def accumulate(item, acc=None):
    acc = list(acc) if acc is not None else []
    acc.append(item)
    return acc


def register(name, table=None, label="", weights=(1.0, 2.0)):
    table = dict(table) if table is not None else {}
    table[name] = label or None
    return table, weights


def windowed(values, size=3, fill=frozenset()):
    return [values[i:i + size] for i in range(len(values))], fill
