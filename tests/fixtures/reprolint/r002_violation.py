"""Fixture: forbidden oracle dependencies in library code (R002)."""

import importlib

import networkx  # expect: R002
from scipy import sparse  # expect: R002
import scipy.sparse.linalg  # expect: R002


def oracle_check(graph):
    algorithms = importlib.import_module("networkx.algorithms")  # expect: R002
    dynamic = __import__("scipy")  # expect: R002
    return networkx, sparse, algorithms, dynamic
