"""R015 clean fixture: complete forwarding (literal tuple and
constant-iteration forms) and a shim that keeps its config branch."""

import warnings

SHARED_PIPELINE_FIELDS = ("seed", "workers", "use_cache")


class PipelineConfig:
    seed: int = 0
    workers: int = 1
    use_cache: bool = True


class LiteralConfig:
    @classmethod
    def from_pipeline(cls, pipeline, **kwargs):
        for name in ("seed", "workers", "use_cache"):
            kwargs.setdefault(name, getattr(pipeline, name))
        return cls(**kwargs)


class ConstantConfig:
    @classmethod
    def from_pipeline(cls, pipeline, **kwargs):
        # iterating the shared constant can never drift
        for name in SHARED_PIPELINE_FIELDS:
            kwargs.setdefault(name, getattr(pipeline, name))
        return cls(**kwargs)


def select_canned_patterns(repos, budget):
    warnings.warn("use run_catapult(PipelineConfig(...))",
                  DeprecationWarning, stacklevel=2)
    if isinstance(budget, PipelineConfig):
        return list(repos)[: budget.workers]
    return list(repos)[:budget]
