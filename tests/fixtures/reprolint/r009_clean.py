"""R009 out-of-scope fixture: stage-shaped code outside the pipeline
packages (catapult/tattoo/midas) needs no spans."""

from repro.perf import pmap


def cluster_repository(repository, config):
    return [g for g in repository if g]


def apply_batch(self, batch):
    return len(batch.added)


def _bump(item):
    return item + 1


def _fan_out(items):
    return pmap(_bump, items)
