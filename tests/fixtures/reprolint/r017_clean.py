"""Clean under R017: scorer oracle and incremental paths kept apart.

score() before any commit, score() after an intervening reset(),
the incremental marginal_score()/committed_score() accessors, and
commits on a *different* scorer are all fine.
"""


def score_before_commit(scorer, candidate, rest):
    baseline = scorer.score(rest)
    scorer.commit(candidate)
    return baseline


def reset_between(scorer, candidate, rest):
    scorer.commit(candidate)
    scorer.reset()
    return scorer.score(rest)


def incremental_only(scorer, candidate):
    scorer.commit(candidate)
    return scorer.marginal_score(candidate), scorer.committed_score()


def distinct_receivers(lazy_scorer, oracle_scorer, candidate, rest):
    lazy_scorer.commit(candidate)
    return oracle_scorer.score(rest)


def nested_defs_are_separate_scopes(scorer, candidate, rest):
    scorer.commit(candidate)

    def oracle(scorer):
        # shadows the outer name with a fresh scorer: separate scope
        return scorer.score(rest)

    return oracle
