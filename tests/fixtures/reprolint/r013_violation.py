"""R013 fixture: stage-reachable loops running expensive work without
polling the in-scope deadline."""

from repro.matching import count_embeddings
from repro.resilience import Deadline


def match_pair(pattern, repo):
    return count_embeddings(pattern, repo, False, cap=100)


def extract_candidates(pattern, repos, deadline):
    found = []
    for repo in repos:  # expect: R013
        found.append(match_pair(pattern, repo))
    return _score_all(found, deadline)


def _score_all(found, deadline):
    # reachable from the stage above; its loop must poll too
    scores = []
    while found:  # expect: R013
        item = found.pop()
        scores.append(count_embeddings(item, item, False, cap=10))
    return scores
