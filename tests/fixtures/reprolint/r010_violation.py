"""Fixture: raise sites that leak builtin exceptions (R010)."""
import builtins


def pick_metric(metric):
    if metric not in ("cosine", "jaccard"):
        raise ValueError(f"unknown metric {metric!r}")  # expect: R010
    return metric


def lookup_stage(stages, name):
    if name not in stages:
        raise KeyError(name)  # expect: R010
    return stages[name]


def merge_shards(shards):
    if not shards:
        raise RuntimeError("no shards to merge")  # expect: R010
    if len(shards) == 1:
        raise builtins.IndexError("need two shards")  # expect: R010
    return shards[0] + shards[1]


def check_budget(budget):
    if budget.max_patterns < 1:
        raise Exception("bad budget")  # expect: R010
