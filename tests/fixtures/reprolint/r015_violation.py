"""R015 fixture: from_pipeline drift (missing and phantom fields) and
a deprecated shim that lost its PipelineConfig branch."""

import warnings

SHARED_PIPELINE_FIELDS = ("seed", "workers", "use_cache")


class PipelineConfig:
    seed: int = 0
    workers: int = 1
    use_cache: bool = True


class DriftedConfig:
    @classmethod
    def from_pipeline(cls, pipeline, **kwargs):  # expect: R015
        # "use_cache" is missing: configs silently drop the knob
        for name in ("seed", "workers"):
            kwargs.setdefault(name, getattr(pipeline, name))
        return cls(**kwargs)


class PhantomConfig:
    @classmethod
    def from_pipeline(cls, pipeline, **kwargs):  # expect: R015
        for name in ("seed", "workers", "use_cache", "shard_count"):
            kwargs.setdefault(name, getattr(pipeline, name))
        return cls(**kwargs)


def select_canned_patterns(repos, budget):  # expect: R015
    warnings.warn("use run_catapult(PipelineConfig(...))",
                  DeprecationWarning, stacklevel=2)
    return list(repos)[:budget]
