"""R014 fixture: wall-clock outside the clock-owning layers, and set
iteration feeding the ordering of a pipeline result."""

import time


def run_catapult(repos):
    stamp = time.time()  # expect: R014
    names = {repo.name for repo in repos}
    ordered = []
    for name in names:  # expect: R014
        ordered.append((name, stamp))
    return ordered


def run_selection(candidates):
    pool = set(candidates)
    return [c.score for c in pool]  # expect: R014
