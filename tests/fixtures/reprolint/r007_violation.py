"""Fixture: ad-hoc worker pools outside repro/perf (R007)."""

import importlib

import multiprocessing  # expect: R007
import multiprocessing.pool  # expect: R007
from concurrent.futures import ProcessPoolExecutor  # expect: R007
from concurrent import futures  # expect: R007


def rogue_pool(items):
    mp = importlib.import_module("multiprocessing")  # expect: R007
    dynamic = __import__("concurrent.futures")  # expect: R007
    with ProcessPoolExecutor(max_workers=4) as pool:
        return list(pool.map(str, items)), multiprocessing, futures, mp, dynamic
