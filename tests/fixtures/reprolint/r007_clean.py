"""Fixture: parallelism routed through the sanctioned facade (R007)."""

from repro.perf import derive_seeds, pmap, resolve_workers


def fan_out(fn, items, workers=None):
    seeds = derive_seeds(17, len(items))
    tasks = list(zip(items, seeds))
    return pmap(fn, tasks, workers=resolve_workers(workers))
