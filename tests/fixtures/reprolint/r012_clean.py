"""R012 clean fixture: module-level payloads and picklable bound
state pass the pmap contract."""

import functools

from repro.perf import pmap


def double(x):
    return x * 2


def scale(factor, x):
    return x * factor


def run(items):
    doubled = pmap(double, items)
    # partial over a module-level function with plain-data state
    tripled = pmap(functools.partial(scale, 3), items)
    return doubled + tripled


def run_named(items, factor):
    worker = functools.partial(scale, factor)
    return pmap(worker, items, workers=2)
