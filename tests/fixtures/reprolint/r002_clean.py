"""Fixture: permitted imports — stdlib plus numpy (R002)."""

import importlib
import json
import math

import numpy


def allowed(values):
    stats = importlib.import_module("statistics")
    return json.dumps([math.sqrt(v) for v in values]), numpy, stats
