"""R009 fixtures: pipeline stages without spans (in scope)."""

from repro.perf import pmap


def cluster_repository(repository, config):  # expect: R009
    return [g for g in repository if g]


def apply_batch(self, batch):  # expect: R009
    added = len(batch.added)
    return added


def _fan_out(items):  # expect: R009
    return pmap(lambda item: item + 1, items)


def _nested_span_does_not_count(items):  # expect: R009
    def helper(item):
        from repro.obs import span
        with span("helper"):
            return item
    return pmap(helper, items)


def _not_a_stage(items):
    # neither a known stage name nor a pmap caller: out of scope
    return [item for item in items]
