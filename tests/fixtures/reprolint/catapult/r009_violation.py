"""R009 fixtures: pipeline stages without spans (in scope)."""

from repro.perf import pmap


def cluster_repository(repository, config):  # expect: R009
    return [g for g in repository if g]


def apply_batch(self, batch):  # expect: R009
    added = len(batch.added)
    return added


def _bump(item):
    return item + 1


def _fan_out(items):  # expect: R009
    return pmap(_bump, items)


def _helper_with_span(item):
    from repro.obs import span
    with span("helper"):
        return item


def _callee_span_does_not_count(items):  # expect: R009
    return pmap(_helper_with_span, items)


def _not_a_stage(items):
    # neither a known stage name nor a pmap caller: out of scope
    return [item for item in items]
