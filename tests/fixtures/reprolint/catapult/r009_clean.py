"""R009 fixtures: properly instrumented stages (in scope)."""

from repro.obs import capture, span
from repro.perf import pmap


def cluster_repository(repository, config):
    with span("catapult.cluster", graphs=len(repository)):
        return [g for g in repository if g]


def apply_batch(self, batch):
    with capture("midas.apply_batch", force=True) as run:
        added = len(batch.added)
        run.add("added", added)
    return added


def _bump(item):
    return item + 1


def _fan_out(items):
    with span("fixture.fan_out"):
        return pmap(_bump, items)


def _not_a_stage(items):
    # neither a known stage name nor a pmap caller: needs no span
    return [item for item in items]
