"""Fixture: raise sites that stay inside the taxonomy (R010)."""
from repro.errors import OptionError, PipelineError, UnknownNameError


def pick_metric(metric):
    if metric not in ("cosine", "jaccard"):
        raise OptionError(f"unknown metric {metric!r}")
    return metric


def lookup_stage(stages, name):
    if name not in stages:
        raise UnknownNameError(name)
    return stages[name]


def merge_shards(shards, log):
    try:
        return shards[0] + shards[1]
    except IndexError as exc:
        log.append(f"merge failed: {exc}")
        raise  # bare re-raise is fine


def run_stage(stage):
    try:
        return stage.run()
    except OptionError as exc:
        raise PipelineError(f"stage misconfigured: {exc}") from exc


class Template:
    def render(self):
        raise NotImplementedError  # abstract-method marker is exempt
