"""Deliberate R016 violations: this file sits under a matching/ dir.

Each function takes a compact view of a graph, then slides back onto
the dict-of-dict adjacency of that same graph.
"""


def mixed_scan(graph, u):
    c = graph.compact()
    offsets = c.offsets
    total = offsets[c.index()[u] + 1] - offsets[c.index()[u]]
    for w in graph.neighbors(u):  # expect: R016
        total += w
    return total


def mixed_sets(target, u, v):
    positions = target.compact().index()
    adj = target.adjacency_sets()  # expect: R016
    return len(adj[u] & adj[v]) + positions[u]


def private_store(graph):
    c = graph.compact()
    return len(graph._adj) + c.order()  # expect: R016


class Kernel:
    def pools(self):
        c = self.target.compact()
        pool = list(range(c.order()))
        for w in self.target.neighbors(pool[0]):  # expect: R016
            pool.append(w)
        return pool
