"""Clean compact-view usage: R016 has nothing to flag.

A function that holds a compact view stays on the CSR arrays for that
graph; dict-path access is fine on *other* graphs (the pattern side)
or in functions that never take a compact view (the legacy kernel).
"""


def csr_scan(graph, u):
    c = graph.compact()
    offsets = c.offsets
    p = c.index()[u]
    return sum(c.neighbors[slot] for slot in range(offsets[p],
                                                   offsets[p + 1]))


def target_compact_pattern_dicts(pattern, target, u):
    c = target.compact()
    placed = [w for w in pattern.neighbors(u)]  # pattern side: allowed
    return len(placed) + c.order()


def legacy_kernel(graph, u, v):
    adj = graph.adjacency_sets()  # no compact view in scope: allowed
    return len(adj[u] & adj[v])
