"""Clean kernel-style adjacency access: R008 has nothing to flag.

Set operations go through the cached ``adjacency_sets()`` view;
single-pass iteration over ``neighbors()`` (plain loop or
comprehension) allocates nothing and stays allowed.
"""


def triangle_count(graph, u, v):
    adj = graph.adjacency_sets()
    return len(adj[u] & adj[v])


def frontier(graph, node):
    return graph.adjacency_sets()[node]


def degree_sum(graph, node):
    return sum(1 for _ in graph.neighbors(node))


def sorted_neighbors(graph, node):
    return sorted(graph.neighbors(node))
