"""Deliberate R008 violations: this file sits under a matching/ dir."""


def triangle_count(graph, u, v):
    common = 0
    for w in list(graph.neighbors(u)):  # expect: R008
        if w in graph.neighbors(v):  # expect: R008
            common += 1
    return common


def frontier(graph, node):
    return set(graph.neighbors(node))  # expect: R008


def non_neighbors(graph, u, candidates):
    return [t for t in candidates
            if t not in graph.neighbors(u)]  # expect: R008
