"""Fixture: acceptable exception handling (R006)."""


def load_stage(path, log):
    try:
        with open(path) as handle:
            return handle.read()
    except OSError as exc:
        log.append(f"load failed: {exc}")
        raise


def optional_accelerator():
    try:
        import numpy  # noqa: F401
    except ImportError:
        pass  # gating an optional dependency is the accepted idiom
    return None


def run_stage(stage, fallback):
    try:
        return stage.run()
    except ValueError as exc:
        return fallback(exc)
