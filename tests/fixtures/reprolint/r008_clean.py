"""Clean for R008: the rule is scoped to matching/truss packages.

This file is *outside* any matching/ or truss/ directory, so even the
exact spellings R008 flags in kernel code are allowed here — cold
paths may trade the allocation for readability.
"""


def neighbor_list(graph, node):
    return list(graph.neighbors(node))


def is_adjacent(graph, u, v):
    return v in graph.neighbors(u)
