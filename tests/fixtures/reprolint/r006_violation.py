"""Fixture: exception handling that swallows pipeline errors (R006)."""


def load_stage(path):
    try:
        with open(path) as handle:
            return handle.read()
    except:  # expect: R006
        return None


def run_stage(stage):
    try:
        stage.run()
    except ValueError:  # expect: R006
        pass


def merge_shards(shards):
    merged = []
    for shard in shards:
        try:
            merged.extend(shard.results())
        except (KeyError, RuntimeError):  # expect: R006
            ...
    return merged
