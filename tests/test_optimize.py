"""Tests for aesthetics-aware layout optimization and panel arrangement."""

import random

import pytest

from repro.graph import (
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    path_graph,
)
from repro.patterns import Pattern
from repro.vqi import (
    LayoutObjective,
    arrange_panel,
    circular_layout,
    layout_cost,
    layout_graph,
    optimize_layout,
    panel_scan_cost,
    edge_crossings,
    visual_complexity,
)


class TestObjective:
    def test_crossings_dominate(self):
        g = cycle_graph(4)
        g.add_edge(0, 2)
        g.add_edge(1, 3)
        square = {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (1.0, 1.0),
                  3: (0.0, 1.0)}
        planar = {0: (0.0, 0.5), 1: (0.5, 0.0), 2: (1.0, 0.5),
                  3: (0.5, 1.0)}
        # planar has fewer crossings than the crossed-diagonal square
        assert (edge_crossings(g, planar)
                <= edge_crossings(g, square))

    def test_cost_non_negative(self):
        g = gnm_random_graph(8, 12, random.Random(1))
        assert layout_cost(g, layout_graph(g)) >= 0.0

    def test_custom_weights(self):
        g = complete_graph(5)
        positions = circular_layout(g)
        heavy = LayoutObjective(crossing_weight=100.0)
        light = LayoutObjective(crossing_weight=0.0)
        assert heavy.cost(g, positions) > light.cost(g, positions)


class TestOptimizeLayout:
    def test_never_worse_than_initial(self):
        for seed in range(3):
            g = gnm_random_graph(9, 14, random.Random(seed))
            initial = circular_layout(g)
            optimized = optimize_layout(g, seed=seed, iterations=150,
                                        initial=initial)
            assert (layout_cost(g, optimized)
                    <= layout_cost(g, initial) + 1e-9)

    def test_improves_bad_layout(self):
        g = gnm_random_graph(10, 16, random.Random(2))
        initial = circular_layout(g)
        optimized = optimize_layout(g, seed=1, iterations=400,
                                    initial=initial)
        assert layout_cost(g, optimized) < layout_cost(g, initial)

    def test_positions_stay_in_unit_square(self):
        g = complete_graph(6)
        for x, y in optimize_layout(g, seed=3, iterations=100).values():
            assert 0.0 <= x <= 1.0
            assert 0.0 <= y <= 1.0

    def test_tiny_graphs(self):
        g = path_graph(1)
        assert optimize_layout(g) == layout_graph(g)

    def test_deterministic(self):
        g = gnm_random_graph(8, 12, random.Random(4))
        a = optimize_layout(g, seed=9, iterations=100)
        b = optimize_layout(g, seed=9, iterations=100)
        assert a == b


class TestPanelArrangement:
    def panel(self):
        return [Pattern(complete_graph(6, label="A")),
                Pattern(path_graph(4, label="A")),
                Pattern(cycle_graph(5, label="A")),
                Pattern(path_graph(2, label="A"))]

    def test_arranged_by_complexity(self):
        arranged = arrange_panel(self.panel())
        complexities = [visual_complexity(p.graph) for p in arranged]
        assert complexities == sorted(complexities)

    def test_arrangement_lowers_scan_cost(self):
        shuffled = self.panel()
        random.Random(0).shuffle(shuffled)
        # worst case: most complex first
        worst = list(reversed(arrange_panel(shuffled)))
        assert (panel_scan_cost(arrange_panel(shuffled))
                <= panel_scan_cost(worst))

    def test_scan_cost_empty(self):
        assert panel_scan_cost([]) == 0.0

    def test_arrangement_stable_for_ties(self):
        panel = [Pattern(path_graph(3, label="A")),
                 Pattern(path_graph(3, label="B"))]
        assert arrange_panel(panel) == arrange_panel(panel)
