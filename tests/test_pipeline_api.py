"""Tests for the unified pipeline API (repro.core.pipeline).

Every selection pipeline is reachable through one configuration
surface (:class:`PipelineConfig`) and returns an object satisfying
one protocol (:class:`PipelineResult`: ``.patterns`` / ``.stats`` /
``.trace``).  The old per-pipeline keyword signatures keep working —
byte-identical results — but warn with ``DeprecationWarning``.
"""

import warnings

import pytest

from repro.catapult import CatapultConfig, select_canned_patterns
from repro.core import (
    PipelineConfig,
    PipelineResult,
    run_catapult,
    run_midas,
    run_selection,
    run_tattoo,
)
from repro.datasets import (
    NetworkConfig,
    generate_chemical_repository,
    generate_network,
)
from repro.errors import PipelineError
from repro.midas import Midas, MidasConfig
from repro.patterns import PatternBudget
from repro.tattoo import TattooConfig, select_network_patterns
from repro.tattoo.distributed import select_patterns_distributed


@pytest.fixture(scope="module")
def repo():
    return generate_chemical_repository(10, seed=5)


@pytest.fixture(scope="module")
def network():
    return generate_network(NetworkConfig(nodes=80, cliques=3,
                                          petals=2, flowers=2), seed=4)


@pytest.fixture(scope="module")
def budget():
    return PatternBudget(4, min_size=3, max_size=6)


class TestPipelineConfig:
    def test_defaults_and_immutability(self):
        config = PipelineConfig()
        assert config.budget is None
        assert config.seed == 0
        assert config.use_cache is True
        assert config.trace is False
        with pytest.raises(Exception):
            config.seed = 3  # frozen dataclass

    def test_require_budget(self, budget):
        assert PipelineConfig(budget=budget).require_budget() is budget
        with pytest.raises(PipelineError):
            PipelineConfig().require_budget()

    def test_with_options_merges(self, budget):
        config = PipelineConfig(budget=budget,
                                options={"walks_per_cluster": 5})
        merged = config.with_options(samples_scale=2)
        assert merged.options == {"walks_per_cluster": 5,
                                  "samples_scale": 2}
        assert config.options == {"walks_per_cluster": 5}
        assert merged.budget is budget

    def test_pipeline_options_reach_the_pipeline_config(self, budget):
        config = PipelineConfig(budget=budget, seed=9, workers=2,
                                options={"walks_per_cluster": 7})
        catapult = CatapultConfig.from_pipeline(config)
        assert catapult.seed == 9
        assert catapult.workers == 2
        assert catapult.walks_per_cluster == 7
        tattoo = TattooConfig.from_pipeline(
            PipelineConfig(budget=budget, seed=9,
                           options={"truss_threshold": 3}))
        assert tattoo.seed == 9
        assert tattoo.truss_threshold == 3

    def test_unknown_option_raises(self, budget):
        config = PipelineConfig(budget=budget,
                                options={"no_such_knob": 1})
        for impl in (CatapultConfig, TattooConfig, MidasConfig):
            with pytest.raises(PipelineError):
                impl.from_pipeline(config)


class TestUnifiedRunners:
    def test_run_catapult_satisfies_the_protocol(self, repo, budget):
        result = run_catapult(repo, PipelineConfig(budget=budget,
                                                   seed=1))
        assert isinstance(result, PipelineResult)
        assert len(result.patterns) > 0
        assert result.stats["pipeline"] == "catapult"
        assert result.stats["patterns"] == len(result.patterns)
        assert result.trace is None  # tracing off by default

    def test_run_tattoo_satisfies_the_protocol(self, network, budget):
        result = run_tattoo(network, PipelineConfig(budget=budget,
                                                    seed=1))
        assert isinstance(result, PipelineResult)
        assert result.stats["pipeline"] == "tattoo"
        assert result.trace is None

    def test_run_midas_returns_a_live_maintainer(self, repo, budget):
        midas = run_midas(repo, PipelineConfig(budget=budget, seed=2))
        assert isinstance(midas, Midas)
        assert isinstance(midas, PipelineResult)
        assert midas.stats["pipeline"] == "midas"
        assert midas.stats["batches"] == 0

    def test_run_selection_dispatches_on_data_shape(self, repo,
                                                    network, budget):
        config = PipelineConfig(budget=budget, seed=1)
        from_repo = run_selection(repo, config)
        assert from_repo.stats["pipeline"] == "catapult"
        from_net = run_selection(network, config)
        assert from_net.stats["pipeline"] == "tattoo"

    def test_config_trace_yields_a_trace_tree(self, repo, budget):
        config = PipelineConfig(budget=budget, seed=1, trace=True)
        result = run_catapult(repo, config)
        assert result.trace is not None
        assert result.trace["name"] == "catapult.pipeline"
        names = [c["name"] for c in result.trace["children"]]
        assert "catapult.cluster" in names
        assert "catapult.select" in names

    def test_distributed_result_satisfies_the_protocol(self, network,
                                                       budget):
        result = select_patterns_distributed(network, budget, parts=2,
                                             config=TattooConfig(
                                                 trace=True))
        assert isinstance(result, PipelineResult)
        assert result.stats["pipeline"] == "tattoo-distributed"
        workers = [c for c in result.trace["children"]
                   if c["name"] == "distributed.worker"]
        assert len(workers) == 2


class TestDeprecationShims:
    def test_old_catapult_signature_warns_and_matches(self, repo,
                                                      budget):
        new = run_catapult(repo, PipelineConfig(budget=budget, seed=1))
        with pytest.warns(DeprecationWarning):
            old = select_canned_patterns(repo, budget,
                                         CatapultConfig(seed=1))
        assert sorted(old.patterns.codes()) \
            == sorted(new.patterns.codes())

    def test_old_tattoo_signature_warns_and_matches(self, network,
                                                    budget):
        new = run_tattoo(network, PipelineConfig(budget=budget,
                                                 seed=1))
        with pytest.warns(DeprecationWarning):
            old = select_network_patterns(network, budget,
                                          TattooConfig(seed=1))
        assert sorted(old.patterns.codes()) \
            == sorted(new.patterns.codes())

    def test_old_midas_signature_warns_and_matches(self, repo, budget):
        new = run_midas(repo, PipelineConfig(budget=budget, seed=2))
        with pytest.warns(DeprecationWarning):
            old = Midas(repo, budget, MidasConfig(seed=2))
        assert sorted(old.patterns.codes()) \
            == sorted(new.patterns.codes())

    def test_new_style_does_not_warn(self, repo, budget):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            select_canned_patterns(repo, PipelineConfig(budget=budget,
                                                        seed=1))
            run_midas(repo, PipelineConfig(budget=budget, seed=2))

    def test_budgetless_old_style_still_errors(self, repo):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(PipelineError):
                select_canned_patterns(repo)

    def test_mixing_config_styles_is_rejected(self, repo, budget):
        with pytest.raises(PipelineError):
            select_canned_patterns(repo,
                                   PipelineConfig(budget=budget),
                                   CatapultConfig())
