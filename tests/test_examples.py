"""Smoke-run the shipped examples (they are part of the public API).

Each example is executed in a scratch directory via runpy, so file
artifacts (SVGs, spec JSONs) land in tmp and stdout stays quiet.
Only the two fastest examples run here; the rest are exercised by
the benchmarks and by their underlying integration tests.
"""

import os
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, tmp_path, capsys):
    script = EXAMPLES / name
    assert script.exists(), f"missing example {name}"
    cwd = os.getcwd()
    os.chdir(tmp_path)
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        os.chdir(cwd)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, tmp_path, capsys):
        out = run_example("quickstart.py", tmp_path, capsys)
        assert "repository: 80" in out
        assert "results:" in out
        assert (tmp_path / "pattern_panel.svg").exists()

    def test_timeseries_sketch_search(self, tmp_path, capsys):
        out = run_example("timeseries_sketch_search.py", tmp_path,
                          capsys)
        assert "Sketch Panel" in out
        assert "distance=" in out

    def test_all_examples_compile(self):
        """Every example at least parses (cheap regression net)."""
        import py_compile
        for script in sorted(EXAMPLES.glob("*.py")):
            py_compile.compile(str(script), doraise=True)
