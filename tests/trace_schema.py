"""Structural validator for ``repro/v1`` wire JSON (stdlib only).

Used by ``make trace-smoke`` (and importable from tests) to check
that a trace file written by ``benchmarks/bench_runner.py --trace``
or ``repro-vqi build --trace`` matches the documented shape::

    {"schema": "repro/v1", "version": 1, "traces": [<record>, ...]}

where every record is ``{"name": str, "duration": float >= 0,
"counters": {str: int|float|str}, "children": [<record>, ...]}``.

:func:`validate_service_body` checks the other ``repro/v1`` payload
family — response bodies of the :mod:`repro.service` HTTP layer —
which carry the same ``schema`` tag plus either result fields or a
structured ``error`` object.

Usage::

    python tests/trace_schema.py TRACE_smoke.json
"""

from __future__ import annotations

import json
import sys
from typing import List, Sequence

COUNTER_TYPES = (int, float, str)

#: The one wire-schema tag every exported JSON body carries; must
#: match ``repro.obs.export.WIRE_SCHEMA`` (kept literal here so this
#: validator stays stdlib-only and runnable standalone).
WIRE_SCHEMA = "repro/v1"


def validate_schema_tag(payload: dict) -> List[str]:
    """Problems with the ``schema`` tag (empty list = valid)."""
    schema = payload.get("schema")
    if schema is None:
        return [f"missing schema tag (expected {WIRE_SCHEMA!r})"]
    if schema != WIRE_SCHEMA:
        return [f"schema is {schema!r}, expected {WIRE_SCHEMA!r}"]
    return []


def validate_record(record: object, path: str = "trace") -> List[str]:
    """Problems found in one span record (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return [f"{path}: record is {type(record).__name__}, not dict"]
    for key in ("name", "duration", "counters", "children"):
        if key not in record:
            problems.append(f"{path}: missing key {key!r}")
    name = record.get("name")
    if "name" in record and (not isinstance(name, str) or not name):
        problems.append(f"{path}: name must be a non-empty string")
    duration = record.get("duration")
    if "duration" in record:
        if isinstance(duration, bool) \
                or not isinstance(duration, (int, float)):
            problems.append(f"{path}: duration must be a number")
        elif duration < 0:
            problems.append(f"{path}: duration must be >= 0")
    counters = record.get("counters")
    if "counters" in record:
        if not isinstance(counters, dict):
            problems.append(f"{path}: counters must be a dict")
        else:
            for key, value in counters.items():
                if not isinstance(key, str):
                    problems.append(
                        f"{path}: counter key {key!r} is not a string")
                if isinstance(value, bool) \
                        or not isinstance(value, COUNTER_TYPES):
                    problems.append(
                        f"{path}: counter {key!r} has type "
                        f"{type(value).__name__}")
    children = record.get("children")
    if "children" in record:
        if not isinstance(children, list):
            problems.append(f"{path}: children must be a list")
        else:
            label = name if isinstance(name, str) else "?"
            for i, child in enumerate(children):
                problems.extend(validate_record(
                    child, path=f"{path}.{label}[{i}]"))
    return problems


def validate_envelope(payload: object) -> List[str]:
    """Problems found in a trace envelope (empty list = valid)."""
    if not isinstance(payload, dict):
        return ["envelope must be a JSON object"]
    problems: List[str] = validate_schema_tag(payload)
    version = payload.get("version")
    if isinstance(version, bool) or not isinstance(version, int):
        problems.append("envelope version must be an integer")
    traces = payload.get("traces")
    if not isinstance(traces, list):
        problems.append("envelope traces must be a list")
    elif not traces:
        problems.append("envelope holds no traces")
    else:
        for i, record in enumerate(traces):
            problems.extend(validate_record(record,
                                            path=f"traces[{i}]"))
    return problems


def validate_service_body(payload: object) -> List[str]:
    """Problems found in one service response body (empty = valid).

    Every body — success or error — must be a ``repro/v1``-tagged
    object.  Error bodies additionally carry ``{"error": {"type",
    "message", "status"}}`` with an HTTP status code; embedded trace
    envelopes (``/v1/build`` with tracing on) are validated as
    traces.
    """
    if not isinstance(payload, dict):
        return ["service body must be a JSON object"]
    problems = validate_schema_tag(payload)
    error = payload.get("error")
    if "error" in payload:
        if not isinstance(error, dict):
            problems.append("error must be an object")
        else:
            if not isinstance(error.get("type"), str) \
                    or not error.get("type"):
                problems.append("error.type must be a non-empty "
                                "string")
            if not isinstance(error.get("message"), str):
                problems.append("error.message must be a string")
            status = error.get("status")
            if isinstance(status, bool) \
                    or not isinstance(status, int) \
                    or not 400 <= status <= 599:
                problems.append("error.status must be an HTTP error "
                                "status code")
    trace = payload.get("trace")
    if trace is not None:
        problems.extend(f"trace: {p}"
                        for p in validate_envelope(trace))
    return problems


def main(argv: Sequence[str] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python tests/trace_schema.py TRACE.json",
              file=sys.stderr)
        return 2
    try:
        with open(argv[0], "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {argv[0]}: {exc}", file=sys.stderr)
        return 2
    problems = validate_envelope(payload)
    if problems:
        for problem in problems:
            print(f"INVALID {argv[0]}: {problem}")
        return 1
    count = len(payload["traces"])
    print(f"{argv[0]}: valid trace envelope "
          f"(version {payload['version']}, {count} trace(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
