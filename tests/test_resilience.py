"""Chaos suite: the resilience contract under injected faults.

Every scenario in the fault matrix — worker raise, hang (watchdog
timeout), Nth-call matcher fault, corrupted payload, distributed
worker/merge failure, and deadline expiry — must end in one of exactly
two states:

* **recovered** — the result is byte-identical (pattern codes, scores)
  to the fault-free run, because retry / serial re-run absorbed the
  fault; or
* **degraded** — a well-formed result with ``degraded=True`` and a
  per-stage completion report saying what was cut.

Never an uncaught exception, never a hang.  The same seed and fault
plan must yield the same outcome at every worker count (run this file
under ``REPRO_WORKERS=1`` and ``=4`` — ``make chaos-smoke``).
"""

import time
import unittest

from repro.core import pipeline
from repro.core.pipeline import PipelineConfig
from repro.datasets import (
    NetworkConfig,
    generate_chemical_repository,
    generate_network,
)
from repro.errors import BudgetExceeded, OptionError, WorkerFailure
from repro.patterns import PatternBudget
from repro.perf import ItemFailure, clear_match_cache, pmap
from repro.perf.executor import backoff_s
from repro.resilience import (
    CORRUPTED,
    CompletionReport,
    Deadline,
    FaultPlan,
    FaultSpec,
    UNBOUNDED,
    chaos,
    is_corrupt,
)
from repro.tattoo.distributed import select_patterns_distributed
from repro.tattoo.pipeline import TattooConfig


def _double(x):
    return x * 2


def _stall_on_three(x):
    if x == 3:
        time.sleep(30.0)
    return x * 2


def _small_repo():
    return generate_chemical_repository(12, seed=7)


def _small_network():
    return generate_network(NetworkConfig(nodes=80, cliques=2,
                                          petals=2, flowers=2), seed=2)


def _budget():
    return PatternBudget(4, min_size=4, max_size=8)


def _codes(result):
    return sorted(result.patterns.codes())


class TestDeadline(unittest.TestCase):
    def test_unbounded_never_expires(self):
        self.assertFalse(UNBOUNDED.expired())
        self.assertFalse(Deadline.start(None).check("anywhere"))
        self.assertEqual(float("inf"), UNBOUNDED.remaining())

    def test_tiny_deadline_expires(self):
        deadline = Deadline.start(0.0)
        self.assertTrue(deadline.check("test.site"))

    def test_require_raises_budget_exceeded(self):
        deadline = Deadline.start(0.0)
        with self.assertRaises(BudgetExceeded):
            deadline.require("test.site")

    def test_completion_report_degraded(self):
        report = CompletionReport()
        report.record("a", 4, 4)
        self.assertFalse(report.degraded)
        report.record("b", 1, 4, note="deadline expired")
        self.assertTrue(report.degraded)
        self.assertFalse(report.as_dict()["b"]["complete"])


class TestFaultPlan(unittest.TestCase):
    def test_unknown_kind_rejected(self):
        with self.assertRaises(OptionError):
            FaultSpec("x", kind="explode")

    def test_keyed_spec_hits_only_its_keys(self):
        plan = FaultPlan([FaultSpec("s", keys=(2,), fail_attempts=1)])
        self.assertFalse(plan.fire("s", key=1, attempt=0))
        with self.assertRaises(WorkerFailure):
            plan.fire("s", key=2, attempt=0)
        # attempt >= fail_attempts: the retry succeeds
        self.assertFalse(plan.fire("s", key=2, attempt=1))

    def test_call_counted_spec(self):
        plan = FaultPlan([FaultSpec("s", at_calls=(2,))])
        self.assertFalse(plan.fire("s"))
        with self.assertRaises(WorkerFailure):
            plan.fire("s")
        self.assertFalse(plan.fire("s"))
        # fresh() zeroes the counter: call 2 fires again
        fresh = plan.fresh()
        self.assertFalse(fresh.fire("s"))
        with self.assertRaises(WorkerFailure):
            fresh.fire("s")

    def test_corrupt_sentinel_survives_pickle(self):
        import pickle
        clone = pickle.loads(pickle.dumps(CORRUPTED))
        self.assertTrue(is_corrupt(clone))

    def test_backoff_is_deterministic_and_exponential(self):
        a = backoff_s(0.001, 0, seed=1, index=5)
        b = backoff_s(0.001, 1, seed=1, index=5)
        self.assertEqual(a, backoff_s(0.001, 0, seed=1, index=5))
        self.assertGreater(b, a)
        self.assertNotEqual(a, backoff_s(0.001, 0, seed=2, index=5))


class TestPmapChaos(unittest.TestCase):
    """The fault matrix against the executor itself."""

    ITEMS = list(range(8))
    WANT = [x * 2 for x in range(8)]

    def run_both_worker_counts(self, plan, **kwargs):
        results = []
        for workers in (1, 4):
            with chaos(plan.fresh()):
                results.append(pmap(_double, self.ITEMS,
                                    workers=workers, **kwargs))
        return results

    def test_raise_then_recover_via_retry(self):
        plan = FaultPlan([FaultSpec("pmap.item", keys=(3,),
                                    fail_attempts=1)])
        serial, parallel = self.run_both_worker_counts(
            plan, max_retries=1)
        self.assertEqual(self.WANT, serial)
        self.assertEqual(self.WANT, parallel)

    def test_raise_then_recover_via_serial_rerun(self):
        # no in-worker retries: the coordinator's serial re-run (one
        # attempt number later) is what absorbs the fault
        plan = FaultPlan([FaultSpec("pmap.item", keys=(3,),
                                    fail_attempts=1)])
        serial, parallel = self.run_both_worker_counts(
            plan, on_item_failure="serial")
        self.assertEqual(self.WANT, serial)
        self.assertEqual(self.WANT, parallel)

    def test_hang_recovers_like_raise(self):
        plan = FaultPlan([FaultSpec("pmap.item", keys=(2,),
                                    kind="hang", hang_s=0.01,
                                    fail_attempts=1)])
        serial, parallel = self.run_both_worker_counts(
            plan, max_retries=1)
        self.assertEqual(self.WANT, serial)
        self.assertEqual(self.WANT, parallel)

    def test_corrupt_payload_recovers(self):
        plan = FaultPlan([FaultSpec("pmap.item", keys=(5,),
                                    kind="corrupt", fail_attempts=1)])
        serial, parallel = self.run_both_worker_counts(
            plan, max_retries=1)
        self.assertEqual(self.WANT, serial)
        self.assertEqual(self.WANT, parallel)

    def test_unrecoverable_item_skipped_with_record(self):
        plan = FaultPlan([FaultSpec("pmap.item", keys=(4,),
                                    fail_attempts=99)])
        for workers in (1, 4):
            with chaos(plan.fresh()):
                out = pmap(_double, self.ITEMS, workers=workers,
                           max_retries=1, on_item_failure="skip")
            failures = [x for x in out if isinstance(x, ItemFailure)]
            self.assertEqual(1, len(failures))
            self.assertEqual(4, failures[0].index)
            self.assertEqual([x * 2 for x in self.ITEMS if x != 4],
                             [x for x in out
                              if not isinstance(x, ItemFailure)])

    def test_unrecoverable_item_raises_typed_failure(self):
        plan = FaultPlan([FaultSpec("pmap.item", keys=(1,),
                                    fail_attempts=99)])
        with chaos(plan.fresh()):
            with self.assertRaises(WorkerFailure) as caught:
                pmap(_double, self.ITEMS, workers=1, max_retries=1)
        self.assertEqual(1, caught.exception.key)

    def test_genuine_stall_hits_item_timeout(self):
        start = time.perf_counter()
        out = pmap(_stall_on_three, self.ITEMS, workers=4,
                   item_timeout_s=1.0, on_item_failure="skip")
        elapsed = time.perf_counter() - start
        self.assertLess(elapsed, 20.0)
        failures = [x for x in out if isinstance(x, ItemFailure)]
        self.assertEqual([3], [f.index for f in failures])
        self.assertEqual([x * 2 for x in self.ITEMS if x != 3],
                         [x for x in out
                          if not isinstance(x, ItemFailure)])


class TestPipelineChaos(unittest.TestCase):
    """The matrix against CATAPULT/TATTOO end to end."""

    def catapult(self, plan=None, **cfg):
        clear_match_cache()
        config = PipelineConfig(budget=_budget(), seed=3, **cfg)
        if plan is None:
            return pipeline.run_catapult(self.repo, config)
        with chaos(plan.fresh()):
            return pipeline.run_catapult(self.repo, config)

    @classmethod
    def setUpClass(cls):
        cls.repo = _small_repo()

    def test_worker_raise_recovers_byte_identical(self):
        baseline = self.catapult()
        self.assertFalse(baseline.degraded)
        plan = FaultPlan([FaultSpec("catapult.candidates", keys=(0,),
                                    fail_attempts=1)])
        for workers in (1, 4):
            recovered = self.catapult(plan, workers=workers,
                                      max_retries=1)
            self.assertEqual(_codes(baseline), _codes(recovered))
            self.assertFalse(recovered.degraded)

    def test_worker_hang_recovers_byte_identical(self):
        baseline = self.catapult()
        plan = FaultPlan([FaultSpec("catapult.candidates", keys=(0,),
                                    kind="hang", hang_s=0.01,
                                    fail_attempts=1)])
        recovered = self.catapult(plan, max_retries=1)
        self.assertEqual(_codes(baseline), _codes(recovered))
        self.assertFalse(recovered.degraded)

    def test_persistent_worker_fault_degrades_with_report(self):
        plan = FaultPlan([FaultSpec("catapult.candidates", keys=(0,),
                                    fail_attempts=99)])
        result = self.catapult(plan, max_retries=1)
        self.assertTrue(result.degraded)
        candidates = result.stats["completion"]["candidates"]
        self.assertFalse(candidates["complete"])
        self.assertLess(candidates["done"], candidates["total"])
        self.assertGreater(len(result.patterns), 0)

    def test_nth_call_matcher_fault_never_crashes(self):
        # fire the matcher's 3rd call within each work item of
        # cluster 0's candidate task; retry recovers it
        baseline = self.catapult()
        plan = FaultPlan([FaultSpec("matching.is_subgraph",
                                    at_calls=(3,))])
        result = self.catapult(plan, max_retries=1)
        self.assertEqual(_codes(baseline), _codes(result))

    def test_same_plan_same_result_across_worker_counts(self):
        plan = FaultPlan([FaultSpec("catapult.candidates", keys=(1,),
                                    fail_attempts=99)])
        outcomes = []
        for workers in (1, 4):
            result = self.catapult(plan, workers=workers,
                                   max_retries=1)
            outcomes.append((_codes(result), result.degraded,
                             result.stats["completion"]))
        self.assertEqual(outcomes[0], outcomes[1])


class TestDeadlinePipelines(unittest.TestCase):
    """Anytime behavior: 25% / 50% budgets still yield patterns."""

    def test_catapult_under_deadline_is_anytime(self):
        repo = _small_repo()
        budget = _budget()
        clear_match_cache()
        config = PipelineConfig(budget=budget, seed=3)
        start = time.perf_counter()
        full = pipeline.run_catapult(repo, config)
        wall = time.perf_counter() - start
        self.assertFalse(full.degraded)
        for fraction in (0.5, 0.25):
            clear_match_cache()
            bounded = PipelineConfig(
                budget=budget, seed=3,
                deadline_s=max(wall * fraction, 1e-4))
            result = pipeline.run_catapult(repo, bounded)
            self.assertGreater(len(result.patterns), 0)
            self.assertTrue(result.degraded)
            report = result.stats["completion"]
            self.assertTrue(any(not s["complete"]
                                for s in report.values()))

    def test_tattoo_under_deadline_is_anytime(self):
        network = _small_network()
        budget = _budget()
        clear_match_cache()
        config = PipelineConfig(budget=budget, seed=3)
        start = time.perf_counter()
        full = pipeline.run_tattoo(network, config)
        wall = time.perf_counter() - start
        self.assertFalse(full.degraded)
        for fraction in (0.5, 0.25):
            clear_match_cache()
            bounded = PipelineConfig(
                budget=budget, seed=3,
                deadline_s=max(wall * fraction, 1e-4))
            result = pipeline.run_tattoo(network, bounded)
            self.assertGreater(len(result.patterns), 0)
            self.assertTrue(result.degraded)

    def test_zero_deadline_still_returns_patterns(self):
        # the pathological floor: "at least one unit, then check"
        repo = _small_repo()
        clear_match_cache()
        config = PipelineConfig(budget=_budget(), seed=3,
                                deadline_s=1e-6)
        result = pipeline.run_catapult(repo, config)
        self.assertGreater(len(result.patterns), 0)
        self.assertTrue(result.degraded)


class TestDistributedChaos(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.network = _small_network()
        cls.budget = _budget()

    def run_distributed(self, plan=None, **kwargs):
        clear_match_cache()
        config = TattooConfig(seed=3, **kwargs)
        if plan is None:
            return select_patterns_distributed(
                self.network, self.budget, parts=3, config=config)
        with chaos(plan.fresh()):
            return select_patterns_distributed(
                self.network, self.budget, parts=3, config=config)

    def test_worker_failure_degrades_not_crashes(self):
        plan = FaultPlan([FaultSpec("distributed.worker", keys=(1,),
                                    fail_attempts=99)])
        result = self.run_distributed(plan)
        self.assertTrue(result.degraded)
        self.assertEqual(1, result.stats["failed_workers"])
        self.assertTrue(result.workers[1].failed)
        self.assertGreater(len(result.patterns), 0)
        self.assertFalse(
            result.stats["completion"]["workers"]["complete"])

    def test_corrupt_worker_payload_dropped_at_merge(self):
        plan = FaultPlan([FaultSpec("distributed.worker", keys=(1,),
                                    kind="corrupt",
                                    fail_attempts=99)])
        result = self.run_distributed(plan)
        self.assertTrue(result.degraded)
        self.assertTrue(result.workers[1].failed)
        self.assertFalse(
            result.stats["completion"]["merge"]["complete"])
        self.assertGreater(len(result.patterns), 0)

    def test_merge_fault_drops_one_pool(self):
        plan = FaultPlan([FaultSpec("distributed.merge", keys=(0,),
                                    fail_attempts=99)])
        result = self.run_distributed(plan)
        self.assertTrue(result.degraded)
        merge = result.stats["completion"]["merge"]
        self.assertEqual(merge["total"] - 1, merge["done"])
        self.assertGreater(len(result.patterns), 0)

    def test_fault_free_run_is_not_degraded(self):
        result = self.run_distributed()
        self.assertFalse(result.degraded)
        self.assertEqual(0, result.stats["failed_workers"])


if __name__ == "__main__":
    unittest.main()
