"""Tests for repro.service: the concurrent pattern-as-a-service layer.

The headline suites pin the service's concurrency contract:

* **mixed traffic** — ≥32 threads of interleaved build/query/suggest/
  session/maintain/health traffic produce zero unhandled 500s; every
  failure is a typed error mapped to a structured 4xx/5xx body;
* **snapshot isolation** — a query pinned to a snapshot returns a
  byte-identical body while a MIDAS batch republishes concurrently;
* **policy** — token-bucket 429s carry ``retry_after_s``; admission
  503s carry a zero-work :class:`repro.resilience.CompletionReport`;
* **build equivalence** — a ``/v1/build`` body equals the direct
  :func:`repro.core.pipeline.run_catapult` / ``run_tattoo`` call with
  the same config, at ``REPRO_WORKERS`` 1 and 4, modulo
  :func:`repro.service.wire.strip_volatile`;
* **replay** — a JSONL request log re-driven against a fresh,
  identically-constructed service reproduces every replayable
  response.
"""

import os
import sys
import threading
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from trace_schema import validate_service_body  # noqa: E402

from repro.core.pipeline import (  # noqa: E402
    PipelineConfig,
    run_catapult,
    run_tattoo,
)
from repro.datasets import (  # noqa: E402
    NetworkConfig,
    generate_chemical_repository,
    generate_network,
)
from repro.graph.io import graph_to_dict  # noqa: E402
from repro.patterns.base import PatternBudget  # noqa: E402
from repro.service import (  # noqa: E402
    PatternService,
    ServiceClient,
    ServiceConfig,
    TokenBucket,
    WIRE_SCHEMA,
    build_body,
    replay,
    serve_in_thread,
    shutdown_gracefully,
    strip_volatile,
)
from repro.service import wire  # noqa: E402

BUDGET = PatternBudget(4, min_size=4, max_size=7)

#: Statuses the service may legitimately return under this suite's
#: traffic; 500 is deliberately absent (zero-unhandled-errors).
EXPECTED_STATUSES = frozenset({200, 400, 404, 409, 429, 503})


def make_repo(size=10, seed=7):
    return generate_chemical_repository(size, seed=seed)


def make_service(size=10, seed=7, config=None, **service_kwargs):
    return PatternService(
        make_repo(size, seed),
        PipelineConfig(budget=BUDGET, seed=3),
        config or ServiceConfig(**service_kwargs))


def canonical_bytes(body):
    return wire.dumps(strip_volatile(body))


@pytest.fixture()
def service():
    svc = make_service()
    yield svc
    svc.close()


class TestRoutesAndBodies:
    def test_health_names_the_current_snapshot(self, service):
        response = service.dispatch("GET", "/v1/health")
        assert response.status == 200
        assert response.body["status"] == "ok"
        assert response.body["snapshot"] == "snap-0"
        assert response.body["pinned"] is True
        assert response.body["schema"] == WIRE_SCHEMA

    def test_patterns_lists_the_published_panel(self, service):
        response = service.dispatch("GET", "/v1/patterns")
        assert response.status == 200
        patterns = response.body["patterns"]
        assert 0 < len(patterns) <= BUDGET.max_patterns
        for entry in patterns:
            assert entry["code"]
            assert entry["topology"]
            assert entry["graph"]["nodes"]

    def test_unknown_route_is_a_structured_404(self, service):
        response = service.dispatch("GET", "/v1/nope")
        assert response.status == 404
        assert response.body["error"]["type"] == "RouteNotFound"
        assert validate_service_body(response.body) == []

    def test_malformed_config_is_a_structured_400(self, service):
        response = service.dispatch(
            "POST", "/v1/build", {"config": {"bogus_knob": 1}})
        assert response.status == 400
        assert response.body["error"]["type"] == "OptionError"
        assert "bogus_knob" in response.body["error"]["message"]

    def test_every_body_carries_the_wire_schema(self, service):
        for method, path, body in [
            ("GET", "/v1/health", None),
            ("GET", "/v1/patterns", None),
            ("POST", "/v1/query", {"bad": True}),
            ("GET", "/v1/missing", None),
            ("POST", "/v1/sessions", None),
        ]:
            response = service.dispatch(method, path, body)
            assert validate_service_body(response.body) == [], \
                f"{path} body fails repro/v1 validation"

    def test_request_ids_are_deterministic(self, service):
        first = service.dispatch("GET", "/v1/health")
        second = service.dispatch("GET", "/v1/health")
        n1 = int(first.body["request_id"].split("-")[1])
        n2 = int(second.body["request_id"].split("-")[1])
        assert n2 == n1 + 1
        assert first.headers["X-Repro-Request"] == \
            first.body["request_id"]

    def test_metrics_exposes_service_counters(self, service):
        service.dispatch("GET", "/v1/health")
        response = service.dispatch("GET", "/v1/metrics")
        counters = response.body["metrics"]["counters"]
        assert counters["service.requests"] >= 2
        assert "service.requests.health" in counters


class TestSessions:
    def test_session_lifecycle(self, service):
        created = service.dispatch("POST", "/v1/sessions")
        sid = created.body["session"]
        assert created.body["snapshot"] == "snap-0"

        acted = service.dispatch(
            "POST", f"/v1/sessions/{sid}/actions",
            {"actions": [{"op": "add_pattern", "index": 0},
                         {"op": "add_node", "label": "C"}]})
        assert acted.status == 200
        assert acted.body["steps"] == 2
        assert acted.body["query"]["nodes"]

        fetched = service.dispatch("GET", f"/v1/sessions/{sid}")
        assert fetched.body["query"] == acted.body["query"]

        deleted = service.dispatch("DELETE", f"/v1/sessions/{sid}")
        assert deleted.body["deleted"] is True
        gone = service.dispatch("GET", f"/v1/sessions/{sid}")
        assert gone.status == 404
        assert gone.body["error"]["type"] == "UnknownNameError"

    def test_session_query_and_suggest(self, service):
        sid = service.dispatch("POST", "/v1/sessions").body["session"]
        service.dispatch(
            "POST", f"/v1/sessions/{sid}/actions",
            {"actions": [{"op": "add_pattern", "index": 0}]})
        queried = service.dispatch("POST", "/v1/query",
                                   {"session": sid})
        assert queried.status == 200
        assert queried.body["match_count"] > 0
        suggested = service.dispatch(
            "POST", "/v1/suggest", {"session": sid, "node": 0})
        assert suggested.status == 200
        assert isinstance(suggested.body["suggestions"], list)


class TestBuildEquivalence:
    """The API-consolidation contract: the HTTP layer adds nothing to
    and loses nothing from the library call it fronts."""

    def expected(self, result, pipeline):
        body = build_body(result)
        body["pipeline"] = pipeline
        body["schema"] = WIRE_SCHEMA
        return canonical_bytes(body)

    def test_build_matches_run_catapult_at_1_and_4_workers(
            self, service, monkeypatch):
        config = PipelineConfig(budget=BUDGET, seed=3)
        for workers in ("1", "4"):
            monkeypatch.setenv("REPRO_WORKERS", workers)
            response = service.dispatch("POST", "/v1/build",
                                        {"config": {"seed": 3}})
            assert response.status == 200
            direct = run_catapult(make_repo(), config)
            assert canonical_bytes(response.body) == \
                self.expected(direct, "catapult"), \
                f"service/library divergence at workers={workers}"

    def test_build_matches_run_tattoo_for_networks(self, monkeypatch):
        network_config = NetworkConfig(nodes=60)
        config = PipelineConfig(budget=BUDGET, seed=3)
        svc = PatternService(generate_network(network_config, seed=5),
                             config)
        for workers in ("1", "4"):
            monkeypatch.setenv("REPRO_WORKERS", workers)
            response = svc.dispatch("POST", "/v1/build",
                                    {"config": {"seed": 3}})
            assert response.status == 200
            assert response.body["pipeline"] == "tattoo"
            direct = run_tattoo(
                generate_network(network_config, seed=5), config)
            assert canonical_bytes(response.body) == \
                self.expected(direct, "tattoo")

    def test_deadline_build_degrades_with_200(self, service):
        response = service.dispatch(
            "POST", "/v1/build",
            {"config": {"seed": 3, "deadline_s": 1e-9}})
        assert response.status == 200
        assert response.body["degraded"] is True
        assert "completion" in response.body["stats"]

    def test_traced_build_embeds_a_valid_envelope(self, service):
        response = service.dispatch(
            "POST", "/v1/build", {"config": {"trace": True}})
        assert response.status == 200
        trace = response.body["trace"]
        assert trace["schema"] == WIRE_SCHEMA
        assert trace["traces"][0]["name"]
        assert validate_service_body(response.body) == []


class TestSnapshotIsolation:
    def test_pinned_query_is_byte_identical_across_midas_batch(self):
        svc = make_service(size=12)
        query = graph_to_dict(
            svc.snapshots.current().patterns[0].graph)
        pinned = {"query": query, "snapshot": "snap-0"}

        before = svc.dispatch("POST", "/v1/query", dict(pinned))
        assert before.status == 200
        assert before.body["snapshot"] == "snap-0"
        baseline = canonical_bytes(before.body)

        removed = svc.snapshots.current().repository[0].name
        batch = {"add": [graph_to_dict(g) for g in
                         generate_chemical_repository(2, seed=99)],
                 "remove": [removed]}

        mismatches = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                reply = svc.dispatch("POST", "/v1/query", dict(pinned))
                if reply.status != 200 \
                        or canonical_bytes(reply.body) != baseline:
                    mismatches.append(reply.status)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        maintained = svc.dispatch("POST", "/v1/patterns/maintain",
                                  batch)
        stop.set()
        for thread in threads:
            thread.join()

        assert maintained.status == 200
        assert maintained.body["snapshot"] == "snap-1"
        assert mismatches == [], \
            "pinned queries diverged during maintenance"
        after = svc.dispatch("POST", "/v1/query", dict(pinned))
        assert canonical_bytes(after.body) == baseline
        # and the *unpinned* view did move:
        assert svc.dispatch("GET", "/v1/health").body["snapshot"] \
            == "snap-1"

    def test_evicted_snapshot_is_a_404(self):
        svc = make_service(config=ServiceConfig(retain_snapshots=1))
        svc.dispatch("POST", "/v1/build", {"config": {"seed": 4}})
        response = svc.dispatch("POST", "/v1/query", {
            "query": {"nodes": [], "edges": []},
            "snapshot": "snap-0"})
        assert response.status == 404
        assert response.body["error"]["type"] == "UnknownNameError"


class TestPolicy:
    def test_rate_limit_returns_structured_429(self):
        svc = make_service(rate=1e-6, burst=1)
        assert svc.dispatch("GET", "/v1/health").status == 200
        limited = svc.dispatch("GET", "/v1/health")
        assert limited.status == 429
        error = limited.body["error"]
        assert error["type"] == "RateLimited"
        assert error["retry_after_s"] > 0
        assert "Retry-After" in limited.headers
        assert validate_service_body(limited.body) == []

    def test_expired_deadline_sheds_with_completion_report(
            self, service):
        shed = service.dispatch("POST", "/v1/build", {},
                                headers={"X-Repro-Deadline": "0"})
        assert shed.status == 503
        error = shed.body["error"]
        assert error["type"] == "Overloaded"
        completion = error["completion"]
        assert completion["build"]["complete"] is False
        assert completion["build"]["done"] == 0

    def test_full_build_slots_shed_with_503(self, service):
        assert service.heavy_slots.acquire(blocking=False)
        try:
            shed = service.dispatch("POST", "/v1/build",
                                    {"config": {"seed": 3}})
        finally:
            service.heavy_slots.release()
        assert shed.status == 503
        assert shed.body["error"]["type"] == "Overloaded"
        assert "slot" in shed.body["error"]["message"]

    def test_light_routes_are_never_shed(self, service):
        assert service.heavy_slots.acquire(blocking=False)
        try:
            assert service.dispatch("GET", "/v1/health").status == 200
            assert service.dispatch("GET",
                                    "/v1/patterns").status == 200
        finally:
            service.heavy_slots.release()

    def test_token_bucket_refills(self):
        bucket = TokenBucket(rate=10_000.0, burst=1)
        assert bucket.acquire() is None
        retry_after = bucket.acquire()
        if retry_after is not None:  # immediate re-acquire may refill
            assert retry_after < 1.0


class TestMixedTrafficConcurrency:
    THREADS = 40

    def test_no_unhandled_errors_under_mixed_load(self):
        svc = make_service(size=12)
        session = svc.dispatch("POST", "/v1/sessions").body["session"]
        query = graph_to_dict(
            svc.snapshots.current().patterns[0].graph)
        extra = [graph_to_dict(g) for g in
                 generate_chemical_repository(3, seed=41)]
        first_graph = svc.snapshots.current().repository[0]
        label = first_graph.node_label(
            next(iter(first_graph.nodes())))

        barrier = threading.Barrier(self.THREADS)
        results = []
        results_lock = threading.Lock()

        def work(index):
            kind = index % 8
            barrier.wait()
            if kind == 0:
                reply = svc.dispatch(
                    "POST", "/v1/build", {"config": {"seed": 3}})
            elif kind == 1:
                reply = svc.dispatch(
                    "POST", "/v1/patterns/maintain",
                    {"add": [extra[index % len(extra)]]})
            elif kind == 2:
                reply = svc.dispatch(
                    "POST", "/v1/query",
                    {"query": query, "snapshot": "snap-0"})
            elif kind == 3:
                reply = svc.dispatch("POST", "/v1/suggest",
                                     {"label": label})
            elif kind == 4:
                created = svc.dispatch("POST", "/v1/sessions",
                                       {"snapshot": "snap-0"})
                sid = created.body["session"]
                reply = svc.dispatch(
                    "POST", f"/v1/sessions/{sid}/actions",
                    {"actions": [{"op": "add_pattern", "index": 0}]})
            elif kind == 5:
                reply = svc.dispatch("GET", "/v1/health")
            elif kind == 6:
                reply = svc.dispatch("POST", "/v1/query",
                                     {"session": session})
            else:
                reply = svc.dispatch("GET", "/v1/nowhere")
            with results_lock:
                results.append((index, reply))

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(results) == self.THREADS
        for index, reply in results:
            assert reply.status in EXPECTED_STATUSES, \
                f"thread {index}: unexpected {reply.status} " \
                f"{reply.body}"
            assert reply.status != 500
            if reply.status >= 400:
                error = reply.body["error"]
                assert error["type"]
                assert error["status"] == reply.status
            assert validate_service_body(reply.body) == []
        statuses = {reply.status for _, reply in results}
        assert 200 in statuses
        assert 404 in statuses  # the deliberate bad route
        metrics = svc.dispatch("GET",
                               "/v1/metrics").body["metrics"]
        assert "service.errors.unhandled" \
            not in metrics["counters"]


class TestRequestLogReplay:
    def drive_traffic(self, svc):
        svc.dispatch("GET", "/v1/patterns")
        svc.dispatch("POST", "/v1/build", {"config": {"seed": 5}})
        sid = svc.dispatch("POST", "/v1/sessions").body["session"]
        svc.dispatch("POST", f"/v1/sessions/{sid}/actions",
                     {"actions": [{"op": "add_pattern", "index": 0}]})
        svc.dispatch("POST", "/v1/query", {"session": sid})
        svc.dispatch("POST", "/v1/patterns/maintain",
                     {"add": [graph_to_dict(g) for g in
                              generate_chemical_repository(
                                  2, seed=13)]})
        svc.dispatch("GET", "/v1/health")          # non-replayable
        svc.dispatch("GET", "/v1/nowhere")         # 404, replayable
        svc.dispatch("POST", "/v1/build", {},
                     headers={"X-Repro-Deadline": "0"})  # policy 503

    def test_replay_reproduces_every_replayable_response(
            self, tmp_path):
        log_path = str(tmp_path / "requests.jsonl")
        original = make_service(request_log=log_path)
        self.drive_traffic(original)
        original.close()

        fresh = make_service()
        report = replay(log_path, fresh)
        assert report.ok, report.mismatches
        assert report.total == 9
        assert report.skipped == 2  # health + the shed 503
        assert report.compared == report.total - report.skipped

    def test_replay_flags_a_diverging_service(self, tmp_path):
        log_path = str(tmp_path / "requests.jsonl")
        original = make_service(request_log=log_path)
        self.drive_traffic(original)
        original.close()

        different = make_service(seed=8)  # different repository
        report = replay(log_path, different)
        assert not report.ok


class TestHTTPRoundTrip:
    def test_live_server_end_to_end(self):
        svc = make_service(size=8)
        server, _thread = serve_in_thread(svc)
        host, port = server.server_address[:2]
        client = ServiceClient(host, port)
        try:
            status, body = client.health()
            assert status == 200 and body["status"] == "ok"

            status, body = client.build({"config": {"seed": 3}})
            assert status == 200
            assert body["patterns"]

            status, body = client.patterns()
            assert status == 200

            status, created = client.create_session()
            sid = created["session"]
            status, acted = client.session_actions(
                sid, [{"op": "add_pattern", "index": 0}])
            assert status == 200 and acted["steps"] == 1
            status, queried = client.query({"session": sid})
            assert status == 200 and queried["match_count"] >= 0

            status, body = client.get("/v1/definitely-not-a-route")
            assert status == 404
            assert body["error"]["type"] == "RouteNotFound"

            status, body = client.request(
                "POST", "/v1/build", body={},
                headers={"X-Repro-Deadline": "0"})
            assert status == 503
            assert body["error"]["type"] == "Overloaded"

            status, body = client.post("/v1/query", {"query": 7})
            assert status == 400
        finally:
            server.shutdown()
            server.server_close()
            svc.close()

    def test_concurrent_http_clients(self):
        svc = make_service(size=8)
        server, _thread = serve_in_thread(svc)
        host, port = server.server_address[:2]
        results = []
        lock = threading.Lock()

        def hit(index):
            client = ServiceClient(host, port)
            if index % 3 == 0:
                status, body = client.build({"config": {"seed": 3}})
            elif index % 3 == 1:
                status, body = client.health()
            else:
                status, body = client.patterns()
            with lock:
                results.append((status, body))

        threads = [threading.Thread(target=hit, args=(i,))
                   for i in range(12)]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            server.shutdown()
            server.server_close()
            svc.close()

        assert len(results) == 12
        for status, body in results:
            assert status in EXPECTED_STATUSES
            assert body["schema"] == WIRE_SCHEMA


class TestWireHelpers:
    def test_strip_volatile_removes_nested_keys(self):
        body = {"request_id": "r-1", "snapshot": "snap-2",
                "stats": {"timings": {"total": 1.0}, "kept": 3},
                "items": [{"duration": 0.5, "name": "x"}]}
        stripped = strip_volatile(body)
        assert stripped == {"stats": {"kept": 3},
                            "items": [{"name": "x"}]}

    def test_config_round_trip(self):
        config = wire.config_from_payload(
            {"seed": 9, "workers": 2, "deadline_s": 1.5,
             "budget": {"max_patterns": 6, "min_size": 3,
                        "max_size": 9}})
        assert config.seed == 9
        assert config.workers == 2
        assert config.deadline_s == 1.5
        assert config.budget.max_patterns == 6
        assert wire.budget_to_dict(config.budget) == {
            "max_patterns": 6, "min_size": 3, "max_size": 9}

    def test_dumps_is_canonical(self):
        assert wire.dumps({"b": 1, "a": 2}) == b'{"a":2,"b":1}\n'


class TestGracefulShutdown:
    """shutdown_gracefully stops accepting, drains, then closes."""

    def gate_dispatch(self, svc):
        """Make every dispatch block until ``release`` is set."""
        entered, release = threading.Event(), threading.Event()
        original = svc._chain

        def gated(request):
            entered.set()
            assert release.wait(10)
            return original(request)

        svc._chain = gated
        return entered, release

    def test_shutdown_drains_in_flight_requests(self):
        svc = make_service()
        server, _ = serve_in_thread(svc)
        entered, release = self.gate_dispatch(svc)
        results = []
        worker = threading.Thread(
            target=lambda: results.append(
                svc.dispatch("GET", "/v1/health")))
        worker.start()
        assert entered.wait(10)
        assert svc.drain(0.05) is False  # request is mid-dispatch
        verdicts = []
        stopper = threading.Thread(
            target=lambda: verdicts.append(
                shutdown_gracefully(server)))
        stopper.start()
        stopper.join(0.2)
        assert stopper.is_alive()  # draining, not abandoning
        release.set()
        worker.join(10)
        stopper.join(10)
        assert verdicts == [True]
        assert results and results[0].status == 200
        assert svc.drain(0.0) is True

    def test_drain_verdict_is_false_when_requests_overstay(self):
        svc = make_service()
        server, _ = serve_in_thread(svc)
        entered, release = self.gate_dispatch(svc)
        worker = threading.Thread(
            target=lambda: svc.dispatch("GET", "/v1/health"))
        worker.start()
        assert entered.wait(10)
        try:
            assert shutdown_gracefully(
                server, drain_timeout_s=0.05) is False
        finally:
            release.set()
            worker.join(10)


class TestWorkersEnvIndependence:
    """dispatch honors REPRO_WORKERS exactly like the library does."""

    def test_worker_count_does_not_change_the_panel(self, monkeypatch):
        panels = {}
        for workers in ("1", "4"):
            monkeypatch.setenv("REPRO_WORKERS", workers)
            svc = make_service(size=8)
            reply = svc.dispatch("GET", "/v1/patterns")
            panels[workers] = canonical_bytes(reply.body)
            svc.close()
        assert panels["1"] == panels["4"]


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-v"]))
