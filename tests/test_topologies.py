"""Tests for the query-log topology classifier."""

from repro.graph import (
    Graph,
    build_graph,
    complete_graph,
    cycle_graph,
    flower_graph,
    path_graph,
    petal_graph,
    random_tree,
    star_graph,
)
from repro.patterns import (
    QUERY_LOG_TOPOLOGY_MIX,
    TopologyClass,
    classify_topology,
    non_triangle_classes,
    topology_histogram,
    triangle_like_classes,
)

import random


class TestClassifier:
    def test_singleton(self):
        g = Graph()
        g.add_node(0, label="A")
        assert classify_topology(g) == TopologyClass.SINGLETON

    def test_chain(self):
        for n in (2, 3, 6):
            assert classify_topology(path_graph(n)) == TopologyClass.CHAIN

    def test_star(self):
        assert classify_topology(star_graph(3)) == TopologyClass.STAR
        assert classify_topology(star_graph(7)) == TopologyClass.STAR

    def test_p3_is_chain_not_star(self):
        assert classify_topology(path_graph(3)) == TopologyClass.CHAIN

    def test_tree(self):
        # spider with legs of length 2: neither chain nor star
        g = build_graph([(i, "") for i in range(7)],
                        edges=[(0, 1), (1, 2), (0, 3), (3, 4), (0, 5),
                               (5, 6)])
        assert classify_topology(g) == TopologyClass.TREE

    def test_triangle(self):
        assert classify_topology(complete_graph(3)) == TopologyClass.TRIANGLE
        assert classify_topology(cycle_graph(3)) == TopologyClass.TRIANGLE

    def test_cycle(self):
        for n in (4, 5, 8):
            assert classify_topology(cycle_graph(n)) == TopologyClass.CYCLE

    def test_clique(self):
        assert classify_topology(complete_graph(4)) == TopologyClass.CLIQUE
        assert classify_topology(complete_graph(6)) == TopologyClass.CLIQUE

    def test_petal(self):
        assert classify_topology(petal_graph(2, 2)) == TopologyClass.PETAL
        assert classify_topology(petal_graph(3, 3)) == TopologyClass.PETAL

    def test_k4_minus_edge_is_petal(self):
        g = complete_graph(4)
        g.remove_edge(0, 1)
        assert classify_topology(g) == TopologyClass.PETAL

    def test_flower(self):
        assert classify_topology(flower_graph(2, 3)) == TopologyClass.FLOWER
        assert classify_topology(flower_graph(3, 4)) == TopologyClass.FLOWER

    def test_tadpole_is_general(self):
        # triangle with a pendant path
        g = build_graph([(i, "") for i in range(5)],
                        edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
        assert classify_topology(g) == TopologyClass.GENERAL

    def test_random_trees_classified_acyclic(self):
        for seed in range(5):
            g = random_tree(8, random.Random(seed))
            assert classify_topology(g).is_acyclic()


class TestHistogramAndMix:
    def test_histogram(self):
        graphs = [path_graph(4), path_graph(5), star_graph(3),
                  complete_graph(3)]
        hist = topology_histogram(graphs)
        assert hist[TopologyClass.CHAIN] == 2
        assert hist[TopologyClass.STAR] == 1
        assert hist[TopologyClass.TRIANGLE] == 1

    def test_query_log_mix_sums_to_one(self):
        assert abs(sum(QUERY_LOG_TOPOLOGY_MIX.values()) - 1.0) < 1e-9

    def test_acyclic_classes_dominate_mix(self):
        acyclic = sum(share for cls, share in QUERY_LOG_TOPOLOGY_MIX.items()
                      if cls.is_acyclic())
        assert acyclic > 0.5

    def test_class_partitions(self):
        assert not (triangle_like_classes() & non_triangle_classes())
        assert TopologyClass.TRIANGLE in triangle_like_classes()
        assert TopologyClass.CHAIN in non_triangle_classes()
