"""Tests for panels, spec round-trip, builder facade, and maintenance."""

import pytest

from repro.datasets import (
    NetworkConfig,
    UpdateBatch,
    generate_chemical_repository,
    generate_molecule,
    generate_network,
)
from repro.errors import FormatError, PipelineError
from repro.graph import path_graph
from repro.patterns import Pattern, PatternBudget, PatternSet, \
    default_basic_patterns
from repro.vqi import (
    AttributePanel,
    MaintainedVQI,
    PatternPanel,
    QueryPanel,
    ResultsPanel,
    VQISpec,
    VisualQueryInterface,
    build_maintained_vqi,
    build_vqi,
    build_vqi_with_report,
)

import random


@pytest.fixture(scope="module")
def repo():
    return generate_chemical_repository(30, seed=19)


@pytest.fixture(scope="module")
def budget():
    return PatternBudget(5, min_size=4, max_size=8)


@pytest.fixture(scope="module")
def vqi(repo, budget):
    return build_vqi(repo, budget)


class TestAttributePanel:
    def test_from_repository(self, repo):
        panel = AttributePanel.from_repository(repo)
        assert "C" in panel.node_labels
        assert panel.node_alphabet()[0] == "C"  # carbon dominates
        assert set(panel.edge_labels) <= {"1", "2"}

    def test_from_network(self):
        net = generate_network(NetworkConfig(nodes=60), seed=1)
        panel = AttributePanel.from_network(net)
        assert sum(panel.node_labels.values()) == 60


class TestPatternPanel:
    def test_composition(self, vqi, budget):
        panel = vqi.pattern_panel
        assert len(panel.basic) == 3
        assert panel.within_budget()
        assert len(panel.all_patterns()) == len(panel.basic) + len(
            panel.canned)

    def test_aesthetics_keys(self, vqi):
        metrics = vqi.pattern_panel.aesthetics()
        assert set(metrics) == {"visual_complexity", "layout_quality",
                                "satisfaction", "crossings"}
        assert 0.0 <= metrics["visual_complexity"] < 1.0


class TestBuilder:
    def test_repository_uses_catapult(self, repo, budget):
        _, report = build_vqi_with_report(repo, budget)
        assert report.generator == "catapult"
        assert report.duration > 0

    def test_network_uses_tattoo(self, budget):
        net = generate_network(NetworkConfig(nodes=150), seed=5)
        vqi, report = build_vqi_with_report(net, budget)
        assert report.generator == "tattoo"
        assert vqi.network is net

    def test_empty_data_rejected(self, budget):
        with pytest.raises(PipelineError):
            build_vqi([], budget)

    def test_binding_validation(self, vqi):
        with pytest.raises(PipelineError):
            VisualQueryInterface(vqi.spec)

    def test_execute_repository_query(self, vqi):
        vqi.reset_query()
        pattern = vqi.pattern_panel.canned[0]
        vqi.query_panel.builder.add_pattern(pattern)
        results = vqi.execute()
        assert results.match_count() > 0
        assert not vqi.results_panel.is_empty()

    def test_execute_network_query(self, budget):
        net = generate_network(NetworkConfig(nodes=150), seed=5)
        vqi = build_vqi(net, budget)
        vqi.query_panel.builder.add_pattern(vqi.pattern_panel.canned[0])
        results = vqi.execute(max_embeddings=4)
        assert results.match_count() > 0
        # network matches come back as small result subgraphs
        for match in results.matches:
            assert match.graph.order() <= 2 * budget.max_size

    def test_render_pattern_panel_svg(self, vqi):
        svg = vqi.render_pattern_panel()
        assert svg.startswith("<svg")
        assert svg.count("<circle") > 5

    def test_portability_same_call_shape(self, repo, budget):
        """The portability claim: one builder call for either source."""
        net = generate_network(NetworkConfig(nodes=120), seed=6)
        vqi_repo = build_vqi(repo, budget)
        vqi_net = build_vqi(net, budget)
        for vqi in (vqi_repo, vqi_net):
            assert vqi.pattern_panel.canned
            assert vqi.attribute_panel.node_alphabet()


class TestSpec:
    def test_json_roundtrip(self, vqi):
        text = vqi.spec.to_json()
        restored = VQISpec.from_json(text)
        assert restored.generator == vqi.spec.generator
        assert restored.pattern_panel.canned.codes() == \
            vqi.spec.pattern_panel.canned.codes()
        assert restored.attribute_panel.node_labels == \
            vqi.spec.attribute_panel.node_labels

    def test_invalid_json_rejected(self):
        with pytest.raises(FormatError):
            VQISpec.from_json("{")

    def test_wrong_version_rejected(self, vqi):
        data = vqi.spec.to_dict()
        data["version"] = 99
        with pytest.raises(FormatError):
            VQISpec.from_dict(data)

    def test_missing_fields_rejected(self):
        with pytest.raises(FormatError):
            VQISpec.from_dict({"version": 1})


class TestQueryAndResultsPanels:
    def test_query_panel_reset(self):
        panel = QueryPanel()
        panel.builder.add_node("A")
        panel.reset()
        assert panel.query.order() == 0

    def test_results_panel_lifecycle(self, vqi):
        panel = ResultsPanel()
        assert panel.is_empty()
        assert panel.displayed_graphs() == []
        vqi.reset_query()
        vqi.query_panel.builder.add_pattern(vqi.pattern_panel.canned[0])
        results = vqi.execute()
        panel.show(results)
        assert not panel.is_empty()
        assert panel.displayed_graphs(limit=2)
        metrics = panel.aesthetics()
        assert "satisfaction" in metrics


class TestMaintainedVQI:
    def test_maintenance_updates_panel(self, repo, budget):
        maintained = build_maintained_vqi(repo, budget)
        rng = random.Random(3)
        batch = UpdateBatch(
            added=[generate_molecule(rng, name=f"mnt{i}")
                   for i in range(5)])
        report = maintained.apply_batch(batch)
        assert report.batch_index == 1
        assert maintained.vqi.spec.generator == "catapult+midas"
        # engine rebound to the grown repository
        assert len(maintained.vqi.repository) == len(repo) + 5

    def test_network_vqi_rejected(self, budget):
        net = generate_network(NetworkConfig(nodes=100), seed=7)
        vqi = build_vqi(net, budget)
        with pytest.raises(PipelineError):
            MaintainedVQI(vqi)

    def test_reports_accumulate(self, repo, budget):
        maintained = build_maintained_vqi(repo[:15], budget)
        rng = random.Random(4)
        for i in range(2):
            maintained.apply_batch(UpdateBatch(
                added=[generate_molecule(rng, name=f"r{i}_{j}")
                       for j in range(3)]))
        assert len(maintained.reports) == 2


class TestSpecDiff:
    def test_identical_specs_empty_diff(self, vqi):
        from repro.vqi import spec_diff
        diff = spec_diff(vqi.spec, vqi.spec)
        assert diff.is_empty()
        assert diff.pattern_churn() == 0.0
        assert diff.summary() == "no changes"

    def test_maintenance_produces_diff(self, repo, budget):
        from repro.vqi import VQISpec, spec_diff
        maintained = build_maintained_vqi(repo, budget)
        before = VQISpec.from_json(maintained.vqi.spec.to_json())
        rng = random.Random(5)
        # an exotic atom guarantees an attribute-alphabet change
        exotic = generate_molecule(rng, name="exotic")
        host = next(iter(exotic.nodes()))
        pendant = exotic.add_node(label="P")
        exotic.add_edge(host, pendant, label="1")
        maintained.apply_batch(UpdateBatch(added=[exotic]))
        diff = spec_diff(before, maintained.vqi.spec)
        assert "P" in diff.added_node_labels
        assert not diff.is_empty()

    def test_pattern_churn_counts(self):
        from repro.graph import cycle_graph, path_graph
        from repro.patterns import (Pattern, PatternBudget, PatternSet,
                                    default_basic_patterns)
        from repro.vqi import AttributePanel, PatternPanel, VQISpec, \
            spec_diff
        budget = PatternBudget(4, min_size=3, max_size=6)
        attrs = AttributePanel({"A": 1}, {})
        old = VQISpec("s", "catapult", attrs, PatternPanel(
            [], PatternSet([Pattern(path_graph(4, label="A")),
                            Pattern(cycle_graph(4, label="A"))]),
            budget))
        new = VQISpec("s", "catapult", attrs, PatternPanel(
            [], PatternSet([Pattern(path_graph(4, label="A")),
                            Pattern(cycle_graph(5, label="A"))]),
            budget))
        diff = spec_diff(old, new)
        assert len(diff.added_patterns) == 1
        assert len(diff.removed_patterns) == 1
        assert len(diff.kept_patterns) == 1
        assert diff.pattern_churn() == 0.5
        assert "+1 patterns" in diff.summary()

    def test_label_changes_tracked(self):
        from repro.patterns import PatternBudget, PatternSet
        from repro.vqi import AttributePanel, PatternPanel, VQISpec, \
            spec_diff
        budget = PatternBudget(3)
        old = VQISpec("s", "catapult",
                      AttributePanel({"A": 1}, {"x": 1}),
                      PatternPanel([], PatternSet(), budget))
        new = VQISpec("s", "catapult",
                      AttributePanel({"A": 1, "B": 2}, {}),
                      PatternPanel([], PatternSet(), budget))
        diff = spec_diff(old, new)
        assert diff.added_node_labels == ["B"]
        assert diff.removed_edge_labels == ["x"]
        assert not diff.is_empty()
