"""Tests for random graph generators (seeded, structural invariants)."""

import random

import pytest

from repro.errors import GraphError
from repro.graph import (
    barabasi_albert_graph,
    gnm_random_graph,
    is_connected,
    is_tree,
    planted_partition_graph,
    random_labels,
    random_tree,
    triangles,
)


class TestGnm:
    def test_exact_counts(self):
        g = gnm_random_graph(10, 15, random.Random(1))
        assert g.order() == 10
        assert g.size() == 15

    def test_deterministic_under_seed(self):
        a = gnm_random_graph(12, 20, random.Random(42), labels=["A", "B"])
        b = gnm_random_graph(12, 20, random.Random(42), labels=["A", "B"])
        assert a.same_as(b)

    def test_too_many_edges_rejected(self):
        with pytest.raises(GraphError):
            gnm_random_graph(4, 7, random.Random(0))

    def test_labels_drawn_from_alphabet(self):
        g = gnm_random_graph(20, 10, random.Random(3), labels=["X", "Y"])
        assert set(g.label_multiset()) <= {"X", "Y"}


class TestRandomTree:
    def test_is_tree(self):
        for seed in range(5):
            g = random_tree(15, random.Random(seed))
            assert is_tree(g)

    def test_single_node(self):
        assert random_tree(1, random.Random(0)).order() == 1

    def test_invalid_size(self):
        with pytest.raises(GraphError):
            random_tree(0, random.Random(0))


class TestBarabasiAlbert:
    def test_size_formula(self):
        n, m = 50, 3
        g = barabasi_albert_graph(n, m, random.Random(5))
        seed_edges = (m + 1) * m // 2
        assert g.order() == n
        assert g.size() == seed_edges + (n - m - 1) * m

    def test_connected(self):
        g = barabasi_albert_graph(60, 2, random.Random(9))
        assert is_connected(g)

    def test_heavy_tail(self):
        g = barabasi_albert_graph(300, 2, random.Random(1))
        degrees = g.degree_sequence()
        assert degrees[0] > 4 * (sum(degrees) / len(degrees))

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(3, 3, random.Random(0))
        with pytest.raises(GraphError):
            barabasi_albert_graph(10, 0, random.Random(0))


class TestPlantedPartition:
    def test_shape(self):
        g = planted_partition_graph(3, 10, 0.8, 0.02, random.Random(2))
        assert g.order() == 30

    def test_dense_communities_have_triangles(self):
        g = planted_partition_graph(2, 12, 0.9, 0.0, random.Random(4))
        assert len(triangles(g)) > 20

    def test_probability_validation(self):
        with pytest.raises(GraphError):
            planted_partition_graph(2, 5, 0.1, 0.5, random.Random(0))

    def test_no_out_edges_when_p_out_zero(self):
        g = planted_partition_graph(2, 8, 0.5, 0.0, random.Random(7))
        for u, v in g.edges():
            assert u // 8 == v // 8


class TestRandomLabels:
    def test_assigns_in_place(self):
        g = gnm_random_graph(10, 5, random.Random(0))
        out = random_labels(g, ["Q"], random.Random(1))
        assert out is g
        assert g.label_multiset() == {"Q": 10}

    def test_empty_alphabet_rejected(self):
        g = gnm_random_graph(3, 2, random.Random(0))
        with pytest.raises(GraphError):
            random_labels(g, [], random.Random(0))


class TestDefaultRngIsSeeded:
    """Omitting ``rng`` must be deterministic (DESIGN.md: explicit
    seeds everywhere) — the fallback is a fixed ``random.Random(0)``,
    not OS entropy."""

    def test_gnm_default_is_reproducible(self):
        assert gnm_random_graph(12, 18).same_as(gnm_random_graph(12, 18))

    def test_tree_default_is_reproducible(self):
        assert random_tree(15).same_as(random_tree(15))

    def test_ba_default_is_reproducible(self):
        a = barabasi_albert_graph(20, 2)
        b = barabasi_albert_graph(20, 2)
        assert a.same_as(b)

    def test_ppg_default_is_reproducible(self):
        a = planted_partition_graph(2, 6, 0.6, 0.1)
        b = planted_partition_graph(2, 6, 0.6, 0.1)
        assert a.same_as(b)

    def test_default_matches_seed_zero(self):
        assert gnm_random_graph(10, 12).same_as(
            gnm_random_graph(10, 12, random.Random(0)))
