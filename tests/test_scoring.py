"""Tests for coverage, diversity, and cognitive-load measures."""

import random

import pytest

from repro.graph import (
    build_graph,
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    path_graph,
    star_graph,
)
from repro.patterns import (
    Pattern,
    ScoreWeights,
    cognitive_load,
    cosine_similarity,
    edge_coverage,
    feature_vector,
    graph_coverage,
    mcs_edge_count,
    pattern_covers,
    pattern_set_score,
    pattern_similarity,
    set_cognitive_load,
    set_covered_edges,
    set_diversity,
    set_edge_coverage,
    set_graph_coverage,
    set_repository_coverage,
)


def repo():
    """Small repository: paths, cycles, and a clique, all label 'A'."""
    return [path_graph(4, label="A"), path_graph(5, label="A"),
            cycle_graph(5, label="A"), complete_graph(4, label="A")]


class TestCognitiveLoad:
    def test_range(self):
        for g in (path_graph(2), complete_graph(8), cycle_graph(12)):
            assert 0.0 <= cognitive_load(g) < 1.0

    def test_monotone_in_size_for_paths(self):
        loads = [cognitive_load(path_graph(n)) for n in range(2, 9)]
        assert loads == sorted(loads)

    def test_dense_beats_sparse(self):
        assert cognitive_load(complete_graph(6)) > cognitive_load(
            path_graph(6))

    def test_cycle_beats_path_same_nodes(self):
        assert cognitive_load(cycle_graph(6)) > cognitive_load(
            path_graph(6))

    def test_empty_is_zero(self):
        assert cognitive_load(path_graph(1)) == 0.0

    def test_set_load_mean(self):
        patterns = [Pattern(path_graph(2)), Pattern(complete_graph(5))]
        expected = (cognitive_load(path_graph(2))
                    + cognitive_load(complete_graph(5))) / 2
        assert set_cognitive_load(patterns) == pytest.approx(expected)

    def test_set_load_empty(self):
        assert set_cognitive_load([]) == 0.0


class TestCoverage:
    def test_pattern_covers(self):
        p = Pattern(path_graph(3, label="A"))
        assert pattern_covers(p, cycle_graph(5, label="A"))
        assert not pattern_covers(p, path_graph(2, label="A"))

    def test_graph_coverage_fraction(self):
        p = Pattern(complete_graph(3, label="A"))
        # only C5? no; only K4 contains a triangle
        assert graph_coverage(p, repo()) == pytest.approx(1 / 4)

    def test_graph_coverage_empty_repo(self):
        assert graph_coverage(Pattern(path_graph(2)), []) == 0.0

    def test_edge_coverage_full(self):
        p = Pattern(path_graph(2, label="A"))
        assert edge_coverage(p, cycle_graph(6, label="A")) == 1.0

    def test_edge_coverage_partial(self):
        target = build_graph(
            [(0, "A"), (1, "A"), (2, "B"), (3, "B")],
            edges=[(0, 1), (1, 2), (2, 3)])
        p = Pattern(build_graph([(0, "A"), (1, "A")], edges=[(0, 1)]))
        assert edge_coverage(p, target) == pytest.approx(1 / 3)

    def test_set_covered_edges_union(self):
        target = build_graph(
            [(0, "A"), (1, "A"), (2, "B"), (3, "B")],
            edges=[(0, 1), (1, 2), (2, 3)])
        pa = Pattern(build_graph([(0, "A"), (1, "A")], edges=[(0, 1)]))
        pb = Pattern(build_graph([(0, "B"), (1, "B")], edges=[(0, 1)]))
        assert set_covered_edges([pa, pb], target) == {(0, 1), (2, 3)}
        assert set_edge_coverage([pa, pb], target) == pytest.approx(2 / 3)

    def test_set_coverage_monotone(self):
        repository = repo()
        p1 = [Pattern(path_graph(3, label="A"))]
        p2 = p1 + [Pattern(complete_graph(3, label="A"))]
        assert (set_repository_coverage(p2, repository)
                >= set_repository_coverage(p1, repository))

    def test_set_graph_coverage(self):
        patterns = [Pattern(path_graph(4, label="A"))]
        # P4 embeds in P4, P5, C5, K4 -> all covered
        assert set_graph_coverage(patterns, repo()) == 1.0

    def test_empty_everything(self):
        assert set_repository_coverage([], repo()) == 0.0
        assert set_graph_coverage([], repo()) == 0.0
        assert set_repository_coverage([Pattern(path_graph(2))], []) == 0.0


class TestSimilarityAndDiversity:
    def test_identical_patterns_similarity_one(self):
        p = Pattern(cycle_graph(5, label="A"))
        q = Pattern(cycle_graph(5, label="A").relabeled(
            {0: 2, 1: 3, 2: 4, 3: 0, 4: 1}))
        assert pattern_similarity(p, q) == 1.0
        assert pattern_similarity(p, q, method="mcs") == 1.0

    def test_feature_similarity_range(self):
        p = Pattern(path_graph(4, label="A"))
        q = Pattern(star_graph(4, label="B"))
        assert 0.0 <= pattern_similarity(p, q) <= 1.0

    def test_mcs_edge_count_path_in_cycle(self):
        # longest common connected subgraph of P5 and C5 is P5 (4 edges)
        assert mcs_edge_count(path_graph(5, label="A"),
                              cycle_graph(5, label="A")) == 4

    def test_mcs_respects_labels(self):
        a = path_graph(3, label="X")
        b = path_graph(3, label="Y")
        assert mcs_edge_count(a, b) == 0

    def test_mcs_symmetric(self):
        g1 = star_graph(4, label="A")
        g2 = path_graph(5, label="A")
        assert mcs_edge_count(g1, g2) == mcs_edge_count(g2, g1)

    def test_diversity_singleton_is_one(self):
        assert set_diversity([Pattern(path_graph(3))]) == 1.0
        assert set_diversity([]) == 1.0

    def test_duplicate_patterns_zero_diversity(self):
        p = Pattern(cycle_graph(4, label="A"))
        q = Pattern(cycle_graph(4, label="A"))
        assert set_diversity([p, q]) == pytest.approx(0.0)

    def test_diverse_set_scores_higher(self):
        similar = [Pattern(path_graph(4, label="A")),
                   Pattern(path_graph(5, label="A"))]
        diverse = [Pattern(path_graph(4, label="A")),
                   Pattern(complete_graph(4, label="B"))]
        assert set_diversity(diverse) > set_diversity(similar)

    def test_unknown_method_rejected(self):
        p, q = Pattern(path_graph(2)), Pattern(path_graph(3))
        with pytest.raises(ValueError):
            pattern_similarity(p, q, method="nope")

    def test_cosine_similarity_edge_cases(self):
        assert cosine_similarity({}, {"a": 1.0}) == 0.0
        f = feature_vector(path_graph(3, label="A"))
        assert cosine_similarity(f, f) == pytest.approx(1.0)


class TestPatternSetScore:
    def test_score_in_unit_interval(self):
        patterns = [Pattern(path_graph(4, label="A")),
                    Pattern(complete_graph(3, label="A"))]
        score = pattern_set_score(patterns, repo())
        assert 0.0 <= score <= 1.0

    def test_weights_validation(self):
        with pytest.raises(ValueError):
            ScoreWeights(coverage=-1)

    def test_zero_weights_zero_score(self):
        weights = ScoreWeights(0.0, 0.0, 0.0)
        assert pattern_set_score([Pattern(path_graph(2))], repo(),
                                 weights=weights) == 0.0

    def test_coverage_only_weighting(self):
        weights = ScoreWeights(coverage=1.0, diversity=0.0,
                               cognitive_load=0.0)
        patterns = [Pattern(path_graph(2, label="A"))]
        score = pattern_set_score(patterns, repo(), weights=weights)
        assert score == pytest.approx(
            set_repository_coverage(patterns, repo()))

    def test_deterministic(self):
        patterns = [Pattern(path_graph(4, label="A"))]
        repository = [gnm_random_graph(8, 12, random.Random(3),
                                       labels=["A"])]
        assert (pattern_set_score(patterns, repository)
                == pattern_set_score(patterns, repository))
