"""Tier-1 gate and unit tests for the reprolint invariant checker.

The headline test runs the full pass over ``src/repro`` and asserts
zero violations — DESIGN.md's determinism, dependency-hygiene, and
complexity-cap contracts are machine-checked on every test run.
Fixture tests then pin each rule to exact (rule id, file, line)
findings using ``# expect: RXXX`` markers embedded in deliberate
violation snippets under ``tests/fixtures/reprolint/``.
"""

import json
import os
import re
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOLS_DIR = REPO_ROOT / "tools"
SRC_TREE = REPO_ROOT / "src" / "repro"
FIXTURE_DIR = REPO_ROOT / "tests" / "fixtures" / "reprolint"

sys.path.insert(0, str(TOOLS_DIR))

from reprolint import LintConfig, all_rules, lint_paths  # noqa: E402
from reprolint.baseline import Baseline  # noqa: E402
from reprolint.reporters import (json_report, sarif_report,  # noqa: E402
                                 text_report)
from reprolint.runner import lint_source  # noqa: E402
from reprolint.violations import PARSE_ERROR, Violation  # noqa: E402

EXPECT_MARKER = re.compile(r"#\s*expect:\s*(R\d{3}(?:\s*,\s*R\d{3})*)")
ALL_RULE_IDS = ("R001", "R002", "R003", "R004", "R005", "R006", "R007",
                "R008", "R009", "R010", "R011", "R012", "R013", "R014",
                "R015", "R016", "R017", "R018", "R019")

#: The whole-program rules (backed by reprolint.analysis).
PROJECT_RULE_IDS = ("R011", "R012", "R013", "R014", "R015")

# R008/R016 only fire inside matching/truss package directories,
# R009 inside catapult/tattoo/midas ones, and R019 inside store
# ones, so their in-scope fixtures live under matching/, catapult/,
# and store/ subdirectories; the top-level rXXX_clean.py files
# double as the out-of-scope tests.
FIXTURE_VIOLATION_PATHS = {"R008": "matching/r008_violation.py",
                           "R009": "catapult/r009_violation.py",
                           "R016": "matching/r016_violation.py",
                           "R019": "store/r019_violation.py"}


def expected_findings(path: Path):
    """(line, rule) pairs declared by ``# expect:`` markers."""
    expected = set()
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        match = EXPECT_MARKER.search(line)
        if match:
            for rule in match.group(1).split(","):
                expected.add((lineno, rule.strip()))
    return expected


class TestSrcTreeIsClean(unittest.TestCase):
    """The repo's own contracts hold: zero violations under src/."""

    def test_full_pass_over_src_repro(self):
        result = lint_paths([str(SRC_TREE)])
        self.assertGreater(result.files_checked, 50)
        self.assertEqual(
            [], [v.format() for v in result.violations],
            "src/repro violates its own DESIGN.md contracts")
        self.assertTrue(result.ok)

    def test_every_rule_ran(self):
        result = lint_paths([str(SRC_TREE)])
        self.assertEqual(tuple(ALL_RULE_IDS), result.rules_run)


class TestFixtures(unittest.TestCase):
    """Each rule finds exactly its planted violations, nothing else."""

    def lint_fixture(self, name):
        path = FIXTURE_DIR / name
        self.assertTrue(path.exists(), f"missing fixture {name}")
        result = lint_paths([str(path)])
        return path, result

    def assert_matches_markers(self, name):
        path, result = self.lint_fixture(name)
        expected = expected_findings(path)
        self.assertTrue(expected, f"{name} declares no expect markers")
        found = {(v.line, v.rule) for v in result.violations}
        self.assertEqual(expected, found)
        for violation in result.violations:
            self.assertEqual(str(path), violation.path)
            self.assertGreaterEqual(violation.col, 0)
            self.assertTrue(violation.message)

    def assert_clean(self, name):
        path, result = self.lint_fixture(name)
        self.assertEqual(
            [], [v.format() for v in result.violations],
            f"{name} should lint clean")

    def test_violation_fixtures(self):
        for rule_id in ALL_RULE_IDS:
            with self.subTest(rule=rule_id):
                self.assert_matches_markers(FIXTURE_VIOLATION_PATHS.get(
                    rule_id, f"{rule_id.lower()}_violation.py"))

    def test_clean_fixtures(self):
        for rule_id in ALL_RULE_IDS:
            with self.subTest(rule=rule_id):
                self.assert_clean(f"{rule_id.lower()}_clean.py")

    def test_r008_in_scope_clean_fixture(self):
        # adjacency-set-view code inside a matching/ dir lints clean
        self.assert_clean("matching/r008_clean.py")

    def test_r009_in_scope_clean_fixture(self):
        # span-wrapped stages inside a catapult/ dir lint clean
        self.assert_clean("catapult/r009_clean.py")

    def test_r016_in_scope_clean_fixture(self):
        # CSR-faithful compact usage inside a matching/ dir lints clean
        self.assert_clean("matching/r016_clean.py")

    def test_r019_in_scope_clean_fixture(self):
        # fsync-disciplined writes inside a store/ dir lint clean
        self.assert_clean("store/r019_clean.py")

    def test_each_violation_fixture_exercises_only_its_rule(self):
        for rule_id in ALL_RULE_IDS:
            path = FIXTURE_DIR / FIXTURE_VIOLATION_PATHS.get(
                rule_id, f"{rule_id.lower()}_violation.py")
            rules = {rule for _, rule in expected_findings(path)}
            self.assertEqual({rule_id}, rules)


class TestSuppression(unittest.TestCase):
    SNIPPET = ("import random\n"
               "\n"
               "def jitter():\n"
               "    return random.Random(){comment}\n")

    def test_line_suppression_mutes_the_rule(self):
        clean = lint_source(self.SNIPPET.format(
            comment="  # reprolint: disable=R001"))
        self.assertEqual([], clean)

    def test_line_suppression_is_rule_specific(self):
        still_flagged = lint_source(self.SNIPPET.format(
            comment="  # reprolint: disable=R002"))
        self.assertEqual(["R001"], [v.rule for v in still_flagged])

    def test_disable_all(self):
        clean = lint_source(self.SNIPPET.format(
            comment="  # reprolint: disable=all"))
        self.assertEqual([], clean)

    def test_file_level_suppression(self):
        source = ("# reprolint: disable-file=R001\n"
                  + self.SNIPPET.format(comment=""))
        self.assertEqual([], lint_source(source))

    def test_unsuppressed_line_still_flagged(self):
        source = self.SNIPPET.format(
            comment="  # reprolint: disable=R001")
        source += "\ndef other():\n    return random.Random()\n"
        flagged = lint_source(source)
        self.assertEqual(["R001"], [v.rule for v in flagged])


class TestConfig(unittest.TestCase):
    def test_select_and_disable(self):
        source = ("import networkx\n"
                  "import random\n"
                  "def f():\n"
                  "    return random.Random()\n")
        only_r002 = lint_source(
            source, config=LintConfig(select=frozenset({"R002"})))
        self.assertEqual(["R002"], [v.rule for v in only_r002])
        without_r001 = lint_source(
            source, config=LintConfig(disable=frozenset({"R001"})))
        self.assertEqual(["R002"], [v.rule for v in without_r001])

    def test_config_file_overrides_forbidden_imports(self):
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            config_path = os.path.join(tmp, "reprolint.json")
            with open(config_path, "w", encoding="utf-8") as handle:
                json.dump({"forbidden_imports": ["pandas"]}, handle)
            config = LintConfig.from_file(config_path)
        self.assertEqual([], lint_source("import networkx\n",
                                         config=config))
        flagged = lint_source("import pandas\n", config=config)
        self.assertEqual(["R002"], [v.rule for v in flagged])

    def test_parse_error_reported_as_r000(self):
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            bad = os.path.join(tmp, "broken.py")
            with open(bad, "w", encoding="utf-8") as handle:
                handle.write("def broken(:\n")
            result = lint_paths([bad])
        self.assertFalse(result.ok)
        self.assertEqual([PARSE_ERROR], [v.rule for v in result.violations])


class TestReporters(unittest.TestCase):
    def result_with_violations(self):
        return lint_paths([str(FIXTURE_DIR / "r001_violation.py")])

    def test_text_report_format(self):
        report = text_report(self.result_with_violations())
        self.assertIn("r001_violation.py:8:", report)
        self.assertIn("R001", report)
        self.assertIn("violation(s)", report)

    def test_text_report_clean(self):
        report = text_report(
            lint_paths([str(FIXTURE_DIR / "r001_clean.py")]))
        self.assertIn("no violations", report)

    def test_json_report_shape(self):
        payload = json.loads(json_report(self.result_with_violations()))
        self.assertEqual(payload["violation_count"],
                         len(payload["violations"]))
        self.assertEqual({"R001": payload["violation_count"]},
                         payload["violations_per_rule"])
        first = payload["violations"][0]
        self.assertEqual({"path", "line", "col", "rule", "message"},
                         set(first))
        self.assertEqual(list(ALL_RULE_IDS), payload["rules_run"])


class TestCli(unittest.TestCase):
    """End-to-end: ``python -m reprolint`` exit codes and output."""

    def run_cli(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(TOOLS_DIR)] + env.get("PYTHONPATH", "").split(os.pathsep))
        return subprocess.run(
            [sys.executable, "-m", "reprolint", *args],
            capture_output=True, text=True, env=env,
            cwd=str(REPO_ROOT))

    def test_src_tree_exits_zero(self):
        proc = self.run_cli("src/repro")
        self.assertEqual(0, proc.returncode, proc.stdout + proc.stderr)
        self.assertIn("no violations", proc.stdout)

    def test_violation_fixture_exits_nonzero(self):
        proc = self.run_cli(
            str(FIXTURE_DIR / "r003_violation.py"))
        self.assertEqual(1, proc.returncode)
        self.assertIn("R003", proc.stdout)

    def test_json_format(self):
        proc = self.run_cli(str(FIXTURE_DIR / "r002_violation.py"),
                            "--format", "json")
        self.assertEqual(1, proc.returncode)
        payload = json.loads(proc.stdout)
        self.assertTrue(all(v["rule"] == "R002"
                            for v in payload["violations"]))

    def test_disable_silences_rule(self):
        proc = self.run_cli(str(FIXTURE_DIR / "r001_violation.py"),
                            "--disable", "R001")
        self.assertEqual(0, proc.returncode, proc.stdout)

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        self.assertEqual(0, proc.returncode)
        for rule_id in ALL_RULE_IDS:
            self.assertIn(rule_id, proc.stdout)

    def test_missing_path_is_usage_error(self):
        proc = self.run_cli("no/such/dir")
        self.assertEqual(2, proc.returncode)

    def test_unknown_rule_id_is_usage_error(self):
        # a typo'd --select must not silently run zero rules
        proc = self.run_cli("src/repro", "--select", "R999")
        self.assertEqual(2, proc.returncode)
        self.assertIn("unknown rule id", proc.stderr)


class TestRuleMetadata(unittest.TestCase):
    def test_registry_is_complete_and_documented(self):
        rules = all_rules()
        self.assertEqual(list(ALL_RULE_IDS), [cls.id for cls in rules])
        for cls in rules:
            self.assertTrue(cls.name)
            self.assertTrue(cls.description)

    def test_project_rules_declare_analysis_passes(self):
        from reprolint.analysis.project import ANALYSIS_PASSES
        for cls in all_rules():
            if cls.id in PROJECT_RULE_IDS:
                self.assertTrue(cls.requires,
                                f"{cls.id} should require a pass")
            for name in cls.requires:
                self.assertIn(name, ANALYSIS_PASSES)


class TestProjectRuleFixtures(unittest.TestCase):
    """R011-R015 findings vanish when disabled or suppressed."""

    def fixture(self, rule_id):
        return FIXTURE_DIR / f"{rule_id.lower()}_violation.py"

    def test_disabling_the_rule_silences_its_fixture(self):
        for rule_id in PROJECT_RULE_IDS:
            with self.subTest(rule=rule_id):
                config = LintConfig(disable=frozenset({rule_id}))
                result = lint_paths([str(self.fixture(rule_id))],
                                    config)
                self.assertEqual(
                    [], [v.format() for v in result.violations],
                    f"{rule_id} fixture should be clean when the "
                    f"rule is disabled")

    def test_pragma_suppresses_each_project_rule(self):
        for rule_id in PROJECT_RULE_IDS:
            with self.subTest(rule=rule_id):
                path = self.fixture(rule_id)
                lines = path.read_text(
                    encoding="utf-8").splitlines()
                for lineno, rule in expected_findings(path):
                    lines[lineno - 1] += \
                        f"  # reprolint: disable={rule}"
                muted = lint_source("\n".join(lines) + "\n",
                                    path=str(path))
                self.assertEqual(
                    [], [v.format() for v in muted],
                    f"{rule_id} pragma should mute the finding")


class TestSuppressionSpans(unittest.TestCase):
    """Pragmas anchor to whole statements, not single lines."""

    def test_pragma_on_last_line_of_multiline_statement(self):
        source = ("import random\n"
                  "def jitter():\n"
                  "    return random.Random(\n"
                  "    )  # reprolint: disable=R001\n")
        self.assertEqual([], lint_source(source))

    def test_pragma_on_intermediate_line(self):
        source = ("import random\n"
                  "def jitter():\n"
                  "    return random.Random(  # reprolint: disable=R001\n"
                  "    )\n")
        self.assertEqual([], lint_source(source))

    def test_compound_header_pragma_does_not_mute_body(self):
        # a def-line pragma covers the signature, not the body
        source = ("import random\n"
                  "def jitter(  # reprolint: disable=R001\n"
                  "        seed=None):\n"
                  "    return random.Random()\n")
        flagged = lint_source(source)
        self.assertEqual(["R001"], [v.rule for v in flagged])

    def test_sibling_statement_pragma_does_not_leak(self):
        source = ("import random\n"
                  "def jitter():\n"
                  "    a = 1  # reprolint: disable=R001\n"
                  "    return random.Random()\n")
        flagged = lint_source(source)
        self.assertEqual(["R001"], [v.rule for v in flagged])


class TestBaseline(unittest.TestCase):
    """lint-baseline.json: waivers expire; dead entries surface."""

    def violation(self, rule="R001", path="src/x.py", line=8):
        return Violation(path=path, line=line, col=0, rule=rule,
                         message="planted")

    def load(self, payload):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "baseline.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            return Baseline.load(path)

    def entry(self, **overrides):
        entry = {"rule": "R001", "path": "src/x.py", "line": 8,
                 "reason": "fix in flight", "expires": "2999-01-01"}
        entry.update(overrides)
        return entry

    def test_matching_entry_waives(self):
        baseline = self.load({"entries": [self.entry()]})
        report = baseline.apply([self.violation()], "2026-01-01")
        self.assertEqual([], report.kept)
        self.assertEqual(1, len(report.waived))
        self.assertEqual([], report.expired)
        self.assertEqual([], report.stale)

    def test_expired_entry_stops_waiving(self):
        baseline = self.load(
            {"entries": [self.entry(expires="2020-01-01")]})
        report = baseline.apply([self.violation()], "2026-01-01")
        self.assertEqual(1, len(report.kept))
        self.assertEqual(1, len(report.expired))

    def test_unmatched_entry_is_stale(self):
        baseline = self.load(
            {"entries": [self.entry(path="src/other.py")]})
        report = baseline.apply([self.violation()], "2026-01-01")
        self.assertEqual(1, len(report.kept))
        self.assertEqual(1, len(report.stale))

    def test_omitted_line_waives_whole_file(self):
        entry = self.entry()
        del entry["line"]
        baseline = self.load({"entries": [entry]})
        report = baseline.apply(
            [self.violation(line=8), self.violation(line=80)],
            "2026-01-01")
        self.assertEqual([], report.kept)
        self.assertEqual(2, len(report.waived))

    def test_load_rejects_missing_expiry(self):
        entry = self.entry()
        del entry["expires"]
        with self.assertRaises(ValueError):
            self.load({"entries": [entry]})

    def test_load_rejects_malformed_date(self):
        with self.assertRaises(ValueError):
            self.load({"entries": [self.entry(expires="someday")]})

    def test_load_rejects_non_integer_line(self):
        with self.assertRaises(ValueError):
            self.load({"entries": [self.entry(line="8")]})

    def test_load_rejects_non_list_entries(self):
        with self.assertRaises(ValueError):
            self.load({"entries": {}})


class TestSarifReporter(unittest.TestCase):
    def test_sarif_shape(self):
        result = lint_paths([str(FIXTURE_DIR / "r001_violation.py")])
        payload = json.loads(sarif_report(result))
        self.assertEqual("2.1.0", payload["version"])
        run = payload["runs"][0]
        driver = run["tool"]["driver"]
        self.assertEqual("reprolint", driver["name"])
        self.assertEqual(list(ALL_RULE_IDS),
                         [rule["id"] for rule in driver["rules"]])
        self.assertEqual(len(result.violations), len(run["results"]))
        first = run["results"][0]
        self.assertEqual("R001", first["ruleId"])
        region = first["locations"][0]["physicalLocation"]["region"]
        self.assertEqual(result.violations[0].line,
                         region["startLine"])
        # SARIF columns are 1-based; ast columns are 0-based
        self.assertEqual(result.violations[0].col + 1,
                         region["startColumn"])
        uri = first["locations"][0]["physicalLocation"][
            "artifactLocation"]["uri"]
        self.assertNotIn("\\", uri)

    def test_sarif_clean_run_has_empty_results(self):
        result = lint_paths([str(FIXTURE_DIR / "r001_clean.py")])
        payload = json.loads(sarif_report(result))
        self.assertEqual([], payload["runs"][0]["results"])


class TestProjectCli(unittest.TestCase):
    """--project mode: cache, baseline wiring, determinism, stats."""

    def run_cli(self, *args, cwd=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(TOOLS_DIR)] + env.get("PYTHONPATH", "").split(os.pathsep))
        return subprocess.run(
            [sys.executable, "-m", "reprolint", *args],
            capture_output=True, text=True, env=env,
            cwd=str(cwd or REPO_ROOT))

    def test_project_sarif_runs_are_byte_identical(self):
        with tempfile.TemporaryDirectory() as cache:
            first = self.run_cli("--project", "--format", "sarif",
                                 "--cache-dir", cache, "src/repro")
            second = self.run_cli("--project", "--format", "sarif",
                                  "--cache-dir", cache, "src/repro")
        self.assertEqual(0, first.returncode,
                         first.stdout + first.stderr)
        self.assertEqual(0, second.returncode)
        self.assertEqual(first.stdout, second.stdout)
        payload = json.loads(first.stdout)
        self.assertEqual([], payload["runs"][0]["results"])

    def test_stats_go_to_stderr_only(self):
        with tempfile.TemporaryDirectory() as cache:
            proc = self.run_cli(
                "--project", "--stats", "--format", "json",
                "--cache-dir", cache,
                str(FIXTURE_DIR / "r001_violation.py"))
        json.loads(proc.stdout)  # stdout stays pure JSON
        self.assertIn("stats", proc.stderr)
        self.assertIn("cache", proc.stderr)

    def write_baseline(self, tmp, **overrides):
        entry = {"rule": "R001",
                 "path": str(FIXTURE_DIR / "r001_violation.py"),
                 "reason": "planted fixture", "expires": "2999-01-01"}
        entry.update(overrides)
        path = os.path.join(tmp, "baseline.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"entries": [entry]}, handle)
        return path

    def test_baseline_waives_fixture_violations(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = self.write_baseline(tmp)
            proc = self.run_cli(
                str(FIXTURE_DIR / "r001_violation.py"),
                "--baseline", baseline)
        self.assertEqual(0, proc.returncode,
                         proc.stdout + proc.stderr)
        self.assertIn("waived", proc.stderr)

    def test_expired_baseline_entry_is_reported(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = self.write_baseline(tmp, expires="2020-01-01")
            proc = self.run_cli(
                str(FIXTURE_DIR / "r001_violation.py"),
                "--baseline", baseline)
        self.assertEqual(1, proc.returncode)
        self.assertIn("expired", proc.stderr)

    def test_malformed_baseline_is_usage_error(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = self.write_baseline(tmp, expires="never")
            proc = self.run_cli(
                str(FIXTURE_DIR / "r001_violation.py"),
                "--baseline", baseline)
        self.assertEqual(2, proc.returncode)
        self.assertIn("bad baseline", proc.stderr)

    def test_checked_in_baseline_is_loadable_and_empty(self):
        baseline = Baseline.load(str(REPO_ROOT / "lint-baseline.json"))
        self.assertEqual([], baseline.entries)


if __name__ == "__main__":
    unittest.main()
