"""Tier-1 gate and unit tests for the reprolint invariant checker.

The headline test runs the full pass over ``src/repro`` and asserts
zero violations — DESIGN.md's determinism, dependency-hygiene, and
complexity-cap contracts are machine-checked on every test run.
Fixture tests then pin each rule to exact (rule id, file, line)
findings using ``# expect: RXXX`` markers embedded in deliberate
violation snippets under ``tests/fixtures/reprolint/``.
"""

import json
import os
import re
import subprocess
import sys
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOLS_DIR = REPO_ROOT / "tools"
SRC_TREE = REPO_ROOT / "src" / "repro"
FIXTURE_DIR = REPO_ROOT / "tests" / "fixtures" / "reprolint"

sys.path.insert(0, str(TOOLS_DIR))

from reprolint import LintConfig, all_rules, lint_paths  # noqa: E402
from reprolint.reporters import json_report, text_report  # noqa: E402
from reprolint.runner import lint_source  # noqa: E402
from reprolint.violations import PARSE_ERROR  # noqa: E402

EXPECT_MARKER = re.compile(r"#\s*expect:\s*(R\d{3}(?:\s*,\s*R\d{3})*)")
ALL_RULE_IDS = ("R001", "R002", "R003", "R004", "R005", "R006", "R007",
                "R008", "R009", "R010")

# R008 only fires inside matching/truss package directories and R009
# inside catapult/tattoo/midas ones, so their in-scope fixtures live
# under matching/ and catapult/ subdirectories; the top-level
# rXXX_clean.py files double as the out-of-scope tests.
FIXTURE_VIOLATION_PATHS = {"R008": "matching/r008_violation.py",
                           "R009": "catapult/r009_violation.py"}


def expected_findings(path: Path):
    """(line, rule) pairs declared by ``# expect:`` markers."""
    expected = set()
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        match = EXPECT_MARKER.search(line)
        if match:
            for rule in match.group(1).split(","):
                expected.add((lineno, rule.strip()))
    return expected


class TestSrcTreeIsClean(unittest.TestCase):
    """The repo's own contracts hold: zero violations under src/."""

    def test_full_pass_over_src_repro(self):
        result = lint_paths([str(SRC_TREE)])
        self.assertGreater(result.files_checked, 50)
        self.assertEqual(
            [], [v.format() for v in result.violations],
            "src/repro violates its own DESIGN.md contracts")
        self.assertTrue(result.ok)

    def test_every_rule_ran(self):
        result = lint_paths([str(SRC_TREE)])
        self.assertEqual(tuple(ALL_RULE_IDS), result.rules_run)


class TestFixtures(unittest.TestCase):
    """Each rule finds exactly its planted violations, nothing else."""

    def lint_fixture(self, name):
        path = FIXTURE_DIR / name
        self.assertTrue(path.exists(), f"missing fixture {name}")
        result = lint_paths([str(path)])
        return path, result

    def assert_matches_markers(self, name):
        path, result = self.lint_fixture(name)
        expected = expected_findings(path)
        self.assertTrue(expected, f"{name} declares no expect markers")
        found = {(v.line, v.rule) for v in result.violations}
        self.assertEqual(expected, found)
        for violation in result.violations:
            self.assertEqual(str(path), violation.path)
            self.assertGreaterEqual(violation.col, 0)
            self.assertTrue(violation.message)

    def assert_clean(self, name):
        path, result = self.lint_fixture(name)
        self.assertEqual(
            [], [v.format() for v in result.violations],
            f"{name} should lint clean")

    def test_violation_fixtures(self):
        for rule_id in ALL_RULE_IDS:
            with self.subTest(rule=rule_id):
                self.assert_matches_markers(FIXTURE_VIOLATION_PATHS.get(
                    rule_id, f"{rule_id.lower()}_violation.py"))

    def test_clean_fixtures(self):
        for rule_id in ALL_RULE_IDS:
            with self.subTest(rule=rule_id):
                self.assert_clean(f"{rule_id.lower()}_clean.py")

    def test_r008_in_scope_clean_fixture(self):
        # adjacency-set-view code inside a matching/ dir lints clean
        self.assert_clean("matching/r008_clean.py")

    def test_r009_in_scope_clean_fixture(self):
        # span-wrapped stages inside a catapult/ dir lint clean
        self.assert_clean("catapult/r009_clean.py")

    def test_each_violation_fixture_exercises_only_its_rule(self):
        for rule_id in ALL_RULE_IDS:
            path = FIXTURE_DIR / FIXTURE_VIOLATION_PATHS.get(
                rule_id, f"{rule_id.lower()}_violation.py")
            rules = {rule for _, rule in expected_findings(path)}
            self.assertEqual({rule_id}, rules)


class TestSuppression(unittest.TestCase):
    SNIPPET = ("import random\n"
               "\n"
               "def jitter():\n"
               "    return random.Random(){comment}\n")

    def test_line_suppression_mutes_the_rule(self):
        clean = lint_source(self.SNIPPET.format(
            comment="  # reprolint: disable=R001"))
        self.assertEqual([], clean)

    def test_line_suppression_is_rule_specific(self):
        still_flagged = lint_source(self.SNIPPET.format(
            comment="  # reprolint: disable=R002"))
        self.assertEqual(["R001"], [v.rule for v in still_flagged])

    def test_disable_all(self):
        clean = lint_source(self.SNIPPET.format(
            comment="  # reprolint: disable=all"))
        self.assertEqual([], clean)

    def test_file_level_suppression(self):
        source = ("# reprolint: disable-file=R001\n"
                  + self.SNIPPET.format(comment=""))
        self.assertEqual([], lint_source(source))

    def test_unsuppressed_line_still_flagged(self):
        source = self.SNIPPET.format(
            comment="  # reprolint: disable=R001")
        source += "\ndef other():\n    return random.Random()\n"
        flagged = lint_source(source)
        self.assertEqual(["R001"], [v.rule for v in flagged])


class TestConfig(unittest.TestCase):
    def test_select_and_disable(self):
        source = ("import networkx\n"
                  "import random\n"
                  "def f():\n"
                  "    return random.Random()\n")
        only_r002 = lint_source(
            source, config=LintConfig(select=frozenset({"R002"})))
        self.assertEqual(["R002"], [v.rule for v in only_r002])
        without_r001 = lint_source(
            source, config=LintConfig(disable=frozenset({"R001"})))
        self.assertEqual(["R002"], [v.rule for v in without_r001])

    def test_config_file_overrides_forbidden_imports(self):
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            config_path = os.path.join(tmp, "reprolint.json")
            with open(config_path, "w", encoding="utf-8") as handle:
                json.dump({"forbidden_imports": ["pandas"]}, handle)
            config = LintConfig.from_file(config_path)
        self.assertEqual([], lint_source("import networkx\n",
                                         config=config))
        flagged = lint_source("import pandas\n", config=config)
        self.assertEqual(["R002"], [v.rule for v in flagged])

    def test_parse_error_reported_as_r000(self):
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            bad = os.path.join(tmp, "broken.py")
            with open(bad, "w", encoding="utf-8") as handle:
                handle.write("def broken(:\n")
            result = lint_paths([bad])
        self.assertFalse(result.ok)
        self.assertEqual([PARSE_ERROR], [v.rule for v in result.violations])


class TestReporters(unittest.TestCase):
    def result_with_violations(self):
        return lint_paths([str(FIXTURE_DIR / "r001_violation.py")])

    def test_text_report_format(self):
        report = text_report(self.result_with_violations())
        self.assertIn("r001_violation.py:8:", report)
        self.assertIn("R001", report)
        self.assertIn("violation(s)", report)

    def test_text_report_clean(self):
        report = text_report(
            lint_paths([str(FIXTURE_DIR / "r001_clean.py")]))
        self.assertIn("no violations", report)

    def test_json_report_shape(self):
        payload = json.loads(json_report(self.result_with_violations()))
        self.assertEqual(payload["violation_count"],
                         len(payload["violations"]))
        self.assertEqual({"R001": payload["violation_count"]},
                         payload["violations_per_rule"])
        first = payload["violations"][0]
        self.assertEqual({"path", "line", "col", "rule", "message"},
                         set(first))
        self.assertEqual(list(ALL_RULE_IDS), payload["rules_run"])


class TestCli(unittest.TestCase):
    """End-to-end: ``python -m reprolint`` exit codes and output."""

    def run_cli(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(TOOLS_DIR)] + env.get("PYTHONPATH", "").split(os.pathsep))
        return subprocess.run(
            [sys.executable, "-m", "reprolint", *args],
            capture_output=True, text=True, env=env,
            cwd=str(REPO_ROOT))

    def test_src_tree_exits_zero(self):
        proc = self.run_cli("src/repro")
        self.assertEqual(0, proc.returncode, proc.stdout + proc.stderr)
        self.assertIn("no violations", proc.stdout)

    def test_violation_fixture_exits_nonzero(self):
        proc = self.run_cli(
            str(FIXTURE_DIR / "r003_violation.py"))
        self.assertEqual(1, proc.returncode)
        self.assertIn("R003", proc.stdout)

    def test_json_format(self):
        proc = self.run_cli(str(FIXTURE_DIR / "r002_violation.py"),
                            "--format", "json")
        self.assertEqual(1, proc.returncode)
        payload = json.loads(proc.stdout)
        self.assertTrue(all(v["rule"] == "R002"
                            for v in payload["violations"]))

    def test_disable_silences_rule(self):
        proc = self.run_cli(str(FIXTURE_DIR / "r001_violation.py"),
                            "--disable", "R001")
        self.assertEqual(0, proc.returncode, proc.stdout)

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        self.assertEqual(0, proc.returncode)
        for rule_id in ALL_RULE_IDS:
            self.assertIn(rule_id, proc.stdout)

    def test_missing_path_is_usage_error(self):
        proc = self.run_cli("no/such/dir")
        self.assertEqual(2, proc.returncode)

    def test_unknown_rule_id_is_usage_error(self):
        # a typo'd --select must not silently run zero rules
        proc = self.run_cli("src/repro", "--select", "R999")
        self.assertEqual(2, proc.returncode)
        self.assertIn("unknown rule id", proc.stderr)


class TestRuleMetadata(unittest.TestCase):
    def test_registry_is_complete_and_documented(self):
        rules = all_rules()
        self.assertEqual(list(ALL_RULE_IDS), [cls.id for cls in rules])
        for cls in rules:
            self.assertTrue(cls.name)
            self.assertTrue(cls.description)


if __name__ == "__main__":
    unittest.main()
