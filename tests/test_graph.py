"""Unit tests for the Graph data model."""

import pytest

from repro.errors import (
    DuplicateEdgeError,
    DuplicateNodeError,
    EdgeNotFoundError,
    GraphError,
    NodeNotFoundError,
)
from repro.graph import Graph, build_graph, edge_key


def triangle():
    g = Graph(name="tri")
    for i in range(3):
        g.add_node(i, label="C")
    g.add_edge(0, 1, label="s")
    g.add_edge(1, 2, label="s")
    g.add_edge(0, 2, label="d")
    return g


class TestNodeOperations:
    def test_add_node_returns_id(self):
        g = Graph()
        assert g.add_node(5, label="A") == 5

    def test_add_node_auto_id(self):
        g = Graph()
        assert g.add_node(label="A") == 0
        assert g.add_node(label="B") == 1

    def test_auto_id_skips_existing(self):
        g = Graph()
        g.add_node(10)
        assert g.add_node() == 11

    def test_duplicate_node_rejected(self):
        g = Graph()
        g.add_node(1)
        with pytest.raises(DuplicateNodeError):
            g.add_node(1)

    def test_node_label_roundtrip(self):
        g = Graph()
        g.add_node(0, label="N")
        assert g.node_label(0) == "N"
        g.set_node_label(0, "O")
        assert g.node_label(0) == "O"

    def test_node_label_missing_node(self):
        g = Graph()
        with pytest.raises(NodeNotFoundError):
            g.node_label(3)

    def test_node_attrs(self):
        g = Graph()
        g.add_node(0, label="C", charge=-1)
        assert g.node_attrs(0) == {"charge": -1}
        g.node_attrs(0)["charge"] = 2
        assert g.node_attrs(0)["charge"] == 2

    def test_remove_node_removes_incident_edges(self):
        g = triangle()
        g.remove_node(1)
        assert g.order() == 2
        assert g.size() == 1
        assert g.has_edge(0, 2)

    def test_remove_missing_node(self):
        g = Graph()
        with pytest.raises(NodeNotFoundError):
            g.remove_node(0)

    def test_contains_and_len(self):
        g = triangle()
        assert 0 in g and 3 not in g
        assert len(g) == 3


class TestEdgeOperations:
    def test_add_edge_canonical_key(self):
        g = Graph()
        g.add_node(0)
        g.add_node(1)
        assert g.add_edge(1, 0) == (0, 1)
        assert edge_key(1, 0) == (0, 1)

    def test_edge_requires_nodes(self):
        g = Graph()
        g.add_node(0)
        with pytest.raises(NodeNotFoundError):
            g.add_edge(0, 1)

    def test_self_loop_rejected(self):
        g = Graph()
        g.add_node(0)
        with pytest.raises(GraphError):
            g.add_edge(0, 0)

    def test_duplicate_edge_rejected(self):
        g = Graph()
        g.add_node(0)
        g.add_node(1)
        g.add_edge(0, 1)
        with pytest.raises(DuplicateEdgeError):
            g.add_edge(1, 0)

    def test_edge_label_both_directions(self):
        g = triangle()
        assert g.edge_label(0, 2) == "d"
        assert g.edge_label(2, 0) == "d"

    def test_set_edge_label(self):
        g = triangle()
        g.set_edge_label(0, 1, "t")
        assert g.edge_label(1, 0) == "t"

    def test_edge_label_missing(self):
        g = Graph()
        g.add_node(0)
        g.add_node(1)
        with pytest.raises(EdgeNotFoundError):
            g.edge_label(0, 1)

    def test_remove_edge(self):
        g = triangle()
        g.remove_edge(2, 1)
        assert not g.has_edge(1, 2)
        assert g.size() == 2

    def test_remove_missing_edge(self):
        g = triangle()
        g.remove_edge(0, 1)
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(0, 1)

    def test_edge_attrs(self):
        g = Graph()
        g.add_node(0)
        g.add_node(1)
        g.add_edge(0, 1, weight=3)
        assert g.edge_attrs(1, 0) == {"weight": 3}


class TestInspection:
    def test_order_size(self):
        g = triangle()
        assert (g.order(), g.size()) == (3, 3)

    def test_neighbors_and_degree(self):
        g = triangle()
        assert sorted(g.neighbors(0)) == [1, 2]
        assert g.degree(0) == 2

    def test_neighbors_missing(self):
        g = Graph()
        with pytest.raises(NodeNotFoundError):
            list(g.neighbors(9))

    def test_density(self):
        assert triangle().density() == 1.0
        g = Graph()
        assert g.density() == 0.0
        g.add_node(0)
        assert g.density() == 0.0

    def test_degree_sequence(self):
        g = triangle()
        g.add_node(3, label="H")
        g.add_edge(0, 3)
        assert g.degree_sequence() == [3, 2, 2, 1]

    def test_label_multiset(self):
        g = triangle()
        g.add_node(3, label="H")
        assert g.label_multiset() == {"C": 3, "H": 1}


class TestCopiesAndRelabeling:
    def test_copy_independent(self):
        g = triangle()
        h = g.copy()
        h.remove_edge(0, 1)
        h.set_node_label(0, "X")
        assert g.has_edge(0, 1)
        assert g.node_label(0) == "C"

    def test_copy_preserves_attrs(self):
        g = Graph()
        g.add_node(0, label="C", charge=1)
        g.add_node(1, label="C")
        g.add_edge(0, 1, label="b", order=2)
        h = g.copy()
        assert h.node_attrs(0) == {"charge": 1}
        assert h.edge_attrs(0, 1) == {"order": 2}

    def test_relabeled(self):
        g = triangle()
        h = g.relabeled({0: 10, 1: 11, 2: 12})
        assert h.has_edge(10, 11) and h.has_edge(10, 12)
        assert h.node_label(10) == "C"
        assert h.edge_label(10, 12) == "d"

    def test_relabeled_requires_injective(self):
        g = triangle()
        with pytest.raises(GraphError):
            g.relabeled({0: 5, 1: 5, 2: 6})

    def test_relabeled_requires_total(self):
        g = triangle()
        with pytest.raises(GraphError):
            g.relabeled({0: 5, 1: 6})

    def test_normalized(self):
        g = triangle().relabeled({0: 100, 1: 50, 2: 75})
        h = g.normalized()
        assert sorted(h.nodes()) == [0, 1, 2]

    def test_same_as(self):
        assert triangle().same_as(triangle())
        g = triangle()
        g.set_node_label(0, "N")
        assert not g.same_as(triangle())


class TestBuildGraph:
    def test_build_with_labeled_edges(self):
        g = build_graph([(0, "A"), (1, "B")], labeled_edges=[(0, 1, "x")],
                        name="g")
        assert g.edge_label(0, 1) == "x"
        assert g.name == "g"

    def test_build_with_plain_edges(self):
        g = build_graph([(0, "A"), (1, "B"), (2, "C")],
                        edges=[(0, 1), (1, 2)])
        assert g.size() == 2

    def test_repr(self):
        assert "n=3" in repr(triangle())


class TestCachedViews:
    """adjacency_sets / label_index / neighbor_label_counts: content,
    caching, and invalidation through the version counter."""

    def test_adjacency_sets_content(self):
        g = triangle()
        adj = g.adjacency_sets()
        assert adj == {0: frozenset({1, 2}), 1: frozenset({0, 2}),
                       2: frozenset({0, 1})}

    def test_label_index_content_and_order(self):
        g = build_graph([(0, "A"), (1, "B"), (2, "A")])
        assert g.label_index() == {"A": (0, 2), "B": (1,)}

    def test_neighbor_label_counts_content(self):
        g = build_graph([(0, "A"), (1, "B"), (2, "B")],
                        edges=[(0, 1), (0, 2)])
        counts = g.neighbor_label_counts()
        assert counts[0] == {"B": 2}
        assert counts[1] == {"A": 1}

    def test_views_are_cached_until_mutation(self):
        g = triangle()
        assert g.adjacency_sets() is g.adjacency_sets()
        assert g.label_index() is g.label_index()
        assert g.neighbor_label_counts() is g.neighbor_label_counts()

    def test_structural_mutation_invalidates(self):
        g = triangle()
        before = g.adjacency_sets()
        g.add_node(3, label="C")
        g.add_edge(2, 3)
        after = g.adjacency_sets()
        assert after is not before
        assert after[3] == frozenset({2})
        assert 3 in after[2]

    def test_label_mutation_invalidates(self):
        g = triangle()
        assert g.label_index() == {"C": (0, 1, 2)}
        g.set_node_label(1, "N")
        assert g.label_index() == {"C": (0, 2), "N": (1,)}
        assert g.neighbor_label_counts()[0] == {"C": 1, "N": 1}

    def test_edge_removal_invalidates(self):
        g = triangle()
        g.adjacency_sets()
        g.remove_edge(0, 1)
        assert g.adjacency_sets()[0] == frozenset({2})

    def test_copies_do_not_share_views(self):
        g = triangle()
        view = g.adjacency_sets()
        h = g.copy()
        h.add_node(9, label="X")
        assert 9 not in view
        assert 9 in h.adjacency_sets()


class TestVersionCounter:
    """Mutations bump the version exactly once, after every write.

    The "bump last" ordering is what makes the counter safe to use as
    a cache tag: any state observed at version ``v`` is complete for
    ``v``.  These tests pin the increment counts; reprolint's R011
    pins the ordering itself.
    """

    def test_add_node_with_attrs_bumps_once(self):
        g = Graph()
        before = g.version()
        g.add_node(0, label="C", weight=2.5)
        assert g.version() == before + 1
        assert g.node_attrs(0) == {"weight": 2.5}

    def test_add_edge_with_attrs_bumps_once(self):
        g = Graph()
        g.add_node(0)
        g.add_node(1)
        before = g.version()
        g.add_edge(0, 1, label="s", weight=0.5)
        assert g.version() == before + 1
        assert g.edge_attrs(0, 1) == {"weight": 0.5}

    def test_attr_dict_edits_do_not_bump(self):
        g = triangle()
        before = g.version()
        g.node_attrs(0)["seen"] = True
        g.edge_attrs(0, 1)["w"] = 1.0
        assert g.version() == before

    def test_view_built_after_attr_mutation_is_current(self):
        # the view cache is tagged with the version at build time; a
        # view requested right after an attr-carrying add must see
        # the complete post-mutation state
        g = triangle()
        g.adjacency_sets()
        g.add_node(3, label="X", weight=1)
        g.add_edge(2, 3, label="s", weight=2)
        assert g.adjacency_sets()[3] == frozenset({2})
        assert g.label_index()["X"] == (3,)

    def test_removals_bump_monotonically(self):
        g = triangle()
        before = g.version()
        g.remove_edge(0, 1)
        assert g.version() == before + 1
        # remove_node cascades through remove_edge for incident
        # edges, so it may bump several times — monotonicity is the
        # contract, not the exact count
        g.remove_node(2)
        assert g.version() > before + 1
