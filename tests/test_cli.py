"""Tests for the repro-vqi command-line interface."""

import json

import pytest

from repro.cli import main
from repro.datasets import (
    NetworkConfig,
    generate_chemical_repository,
    generate_network,
)
from repro.graph import write_lg, write_repository_json


@pytest.fixture(scope="module")
def repo_lg(tmp_path_factory):
    path = tmp_path_factory.mktemp("data") / "repo.lg"
    write_lg(generate_chemical_repository(25, seed=3), path)
    return str(path)


@pytest.fixture(scope="module")
def repo_json(tmp_path_factory):
    path = tmp_path_factory.mktemp("data") / "repo.json"
    write_repository_json(generate_chemical_repository(25, seed=3),
                          path)
    return str(path)


@pytest.fixture(scope="module")
def network_lg(tmp_path_factory):
    path = tmp_path_factory.mktemp("data") / "net.lg"
    write_lg([generate_network(NetworkConfig(nodes=120), seed=4)], path)
    return str(path)


class TestBuild:
    def test_build_repository(self, repo_lg, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        svg = tmp_path / "panel.svg"
        code = main(["build", repo_lg, "--spec", str(spec),
                     "--svg", str(svg), "-k", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "generator: catapult" in out
        assert spec.exists()
        assert svg.read_text().startswith("<svg")
        payload = json.loads(spec.read_text())
        assert payload["generator"] == "catapult"
        assert len(payload["canned_patterns"]) <= 4

    def test_build_network_uses_tattoo(self, network_lg, capsys):
        code = main(["build", network_lg, "-k", "4"])
        assert code == 0
        assert "generator: tattoo" in capsys.readouterr().out

    def test_build_json_input(self, repo_json, capsys):
        assert main(["build", repo_json, "-k", "3"]) == 0
        assert "catapult" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["build", "/nonexistent.lg"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_build_with_deadline_warns_but_succeeds(self, repo_lg,
                                                    capsys):
        code = main(["build", repo_lg, "-k", "4",
                     "--deadline", "0.000001"])
        assert code == 0
        out = capsys.readouterr().out
        assert "generator: catapult" in out
        assert "warning: degraded result" in out
        assert "canned:" in out  # anytime: panel is never empty

    def test_build_with_max_retries_is_clean(self, repo_lg, capsys):
        code = main(["build", repo_lg, "-k", "4", "--max-retries", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "generator: catapult" in out
        assert "warning" not in out


class TestInspect:
    def test_inspect(self, repo_lg, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        main(["build", repo_lg, "--spec", str(spec), "-k", "4"])
        capsys.readouterr()
        assert main(["inspect", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "generator: catapult" in out
        assert "canned patterns:" in out


class TestQuery:
    def test_query_fresh_build(self, repo_lg, capsys):
        assert main(["query", repo_lg, "--pattern", "0",
                     "-k", "4"]) == 0
        out = capsys.readouterr().out
        assert "matches:" in out

    def test_query_with_spec(self, repo_lg, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        main(["build", repo_lg, "--spec", str(spec), "-k", "4"])
        capsys.readouterr()
        assert main(["query", repo_lg, "--spec", str(spec),
                     "--pattern", "0"]) == 0
        assert "matches:" in capsys.readouterr().out

    def test_query_pattern_out_of_range(self, repo_lg, capsys):
        assert main(["query", repo_lg, "--pattern", "99",
                     "-k", "3"]) == 1
        assert "out of range" in capsys.readouterr().err


class TestSummarize:
    def test_summarize_network(self, network_lg, tmp_path, capsys):
        out_file = tmp_path / "summary.json"
        assert main(["summarize", network_lg, "-k", "4",
                     "--output", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "summary :" in out
        assert out_file.exists()

    def test_summarize_rejects_repository(self, repo_lg, capsys):
        assert main(["summarize", repo_lg]) == 1
        assert "single-network" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestReport:
    def test_report_to_file(self, repo_lg, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        assert main(["report", repo_lg, "--queries", "6", "-k", "3",
                     "--output", str(out_file)]) == 0
        text = out_file.read_text()
        assert "## Performance measures" in text
        assert "## Learning curve" in text

    def test_report_to_stdout(self, repo_lg, capsys):
        assert main(["report", repo_lg, "--queries", "5",
                     "-k", "3"]) == 0
        assert "Preference measures" in capsys.readouterr().out
