"""Tests for canonical codes, including hypothesis property tests."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    Graph,
    build_graph,
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    path_graph,
    petal_graph,
    star_graph,
)
from repro.matching import are_isomorphic, canonical_code, canonical_form


def random_permutation_relabel(graph, seed):
    nodes = sorted(graph.nodes())
    shuffled = list(nodes)
    random.Random(seed).shuffle(shuffled)
    return graph.relabeled(dict(zip(nodes, shuffled)))


class TestCanonicalCode:
    def test_empty_graph(self):
        assert canonical_code(Graph()) == "#"

    def test_invariant_under_relabeling(self):
        g = gnm_random_graph(9, 14, random.Random(0), labels=["A", "B"])
        for seed in range(5):
            h = random_permutation_relabel(g, seed)
            assert canonical_code(h) == canonical_code(g)

    def test_distinguishes_structures(self):
        codes = {canonical_code(g) for g in
                 [path_graph(4), star_graph(3), cycle_graph(4),
                  complete_graph(4)]}
        assert len(codes) == 4

    def test_distinguishes_node_labels(self):
        a = build_graph([(0, "X"), (1, "Y")], edges=[(0, 1)])
        b = build_graph([(0, "X"), (1, "X")], edges=[(0, 1)])
        assert canonical_code(a) != canonical_code(b)

    def test_distinguishes_edge_labels(self):
        a = build_graph([(0, "X"), (1, "X")], labeled_edges=[(0, 1, "s")])
        b = build_graph([(0, "X"), (1, "X")], labeled_edges=[(0, 1, "d")])
        assert canonical_code(a) != canonical_code(b)

    def test_highly_symmetric_fast(self):
        # cliques would be factorial without the transposition prune
        code1 = canonical_code(complete_graph(10))
        code2 = canonical_code(
            random_permutation_relabel(complete_graph(10), 3))
        assert code1 == code2

    def test_regular_nonisomorphic_pair(self):
        # C6 vs two disjoint triangles: both 2-regular with 6 nodes
        from repro.graph import disjoint_union
        two_tris = disjoint_union([complete_graph(3), complete_graph(3)])
        assert canonical_code(cycle_graph(6)) != canonical_code(two_tris)

    def test_petal_invariance(self):
        g = petal_graph(3, 3)
        h = random_permutation_relabel(g, 11)
        assert canonical_code(g) == canonical_code(h)


class TestCanonicalForm:
    def test_form_is_isomorphic_to_input(self):
        g = gnm_random_graph(8, 11, random.Random(4), labels=["A", "B"])
        assert are_isomorphic(g, canonical_form(g))

    def test_isomorphic_graphs_same_form(self):
        g = gnm_random_graph(7, 9, random.Random(8), labels=["A"])
        h = random_permutation_relabel(g, 21)
        assert canonical_form(g).same_as(canonical_form(h))

    def test_form_nodes_are_contiguous(self):
        g = path_graph(5).relabeled({0: 10, 1: 20, 2: 30, 3: 40, 4: 50})
        assert sorted(canonical_form(g).nodes()) == [0, 1, 2, 3, 4]

    def test_empty(self):
        assert canonical_form(Graph()).order() == 0


@st.composite
def small_labeled_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=7))
    labels = draw(st.lists(st.sampled_from("ABC"), min_size=n, max_size=n))
    g = Graph()
    for i, label in enumerate(labels):
        g.add_node(i, label=label)
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = draw(st.lists(st.sampled_from(possible), unique=True,
                           max_size=len(possible))) if possible else []
    for u, v in chosen:
        g.add_edge(u, v)
    return g


class TestCanonicalProperties:
    @given(small_labeled_graphs(), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=60, deadline=None)
    def test_code_permutation_invariant(self, graph, seed):
        relabeled = random_permutation_relabel(graph, seed)
        assert canonical_code(graph) == canonical_code(relabeled)

    @given(small_labeled_graphs())
    @settings(max_examples=40, deadline=None)
    def test_code_agrees_with_isomorphism_on_self(self, graph):
        assert canonical_form(graph).same_as(
            canonical_form(canonical_form(graph)))

    @given(small_labeled_graphs(), small_labeled_graphs())
    @settings(max_examples=40, deadline=None)
    def test_code_equality_iff_isomorphic(self, g1, g2):
        same_code = canonical_code(g1) == canonical_code(g2)
        assert same_code == are_isomorphic(g1, g2)


class TestPerObjectMemo:
    """canonical_code is memoized per object, keyed by version()."""

    def setup_method(self):
        from repro.matching import reset_canonical_memo_stats
        reset_canonical_memo_stats()

    def test_repeat_calls_hit_the_memo(self):
        from repro.matching import canonical_memo_stats
        g = gnm_random_graph(7, 10, random.Random(3), labels=["A", "B"])
        first = canonical_code(g)
        assert canonical_memo_stats()["misses"] == 1
        assert canonical_code(g) == first
        assert canonical_code(g) == first
        stats = canonical_memo_stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 1

    def test_mutation_invalidates_the_memo(self):
        from repro.matching import canonical_memo_stats
        g = gnm_random_graph(6, 8, random.Random(4), labels=["A", "B"])
        before = canonical_code(g)
        g.set_node_label(next(iter(g.nodes())), "Z")
        after = canonical_code(g)
        assert after != before
        assert canonical_memo_stats()["misses"] == 2
        # and the new code is itself memoized
        assert canonical_code(g) == after
        assert canonical_memo_stats()["hits"] == 1

    def test_distinct_equal_objects_memoize_separately(self):
        from repro.matching import canonical_memo_stats
        g = gnm_random_graph(6, 8, random.Random(5), labels=["A", "B"])
        h = g.copy()
        assert canonical_code(g) == canonical_code(h)
        assert canonical_memo_stats()["misses"] == 2

    def test_empty_graph_bypasses_memo(self):
        from repro.graph import Graph
        from repro.matching import canonical_memo_stats
        assert canonical_code(Graph()) == "#"
        assert canonical_memo_stats() == {"hits": 0, "misses": 0}
