"""Tests for the top-level public API surface (repro / repro.core)."""

import pytest


class TestPublicSurface:
    def test_top_level_exports(self):
        import repro
        assert repro.__version__
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_core_exports(self):
        from repro import core
        for name in core.__all__:
            assert getattr(core, name) is not None

    def test_subpackage_all_lists_resolve(self):
        """Every name in every subpackage __all__ actually exists."""
        import importlib
        packages = [
            "repro.graph", "repro.matching", "repro.patterns",
            "repro.clustering", "repro.summary", "repro.truss",
            "repro.graphlets", "repro.catapult", "repro.tattoo",
            "repro.midas", "repro.modular", "repro.vqi",
            "repro.query", "repro.usability", "repro.datasets",
            "repro.timeseries", "repro.mining", "repro.obs",
            "repro.perf", "repro.service", "repro.store",
        ]
        for package_name in packages:
            module = importlib.import_module(package_name)
            assert module.__all__, f"{package_name} exports nothing"
            for name in module.__all__:
                assert hasattr(module, name), \
                    f"{package_name}.{name} missing"

    def test_minimal_workflow_through_top_level(self):
        """The README quickstart, via the shortest import path."""
        from repro import PatternBudget, build_vqi
        from repro.datasets import generate_chemical_repository
        repo = generate_chemical_repository(15, seed=71)
        vqi = build_vqi(repo, PatternBudget(3, min_size=4, max_size=7))
        vqi.query_panel.builder.add_pattern(vqi.pattern_panel.canned[0])
        assert vqi.execute().match_count() > 0

    def test_error_hierarchy(self):
        from repro import errors
        subclasses = [errors.GraphError, errors.FormatError,
                      errors.BudgetError, errors.PipelineError,
                      errors.MaintenanceError]
        for exc_type in subclasses:
            assert issubclass(exc_type, errors.ReproError)
        assert issubclass(errors.NodeNotFoundError, errors.GraphError)
        assert issubclass(errors.DuplicateEdgeError, errors.GraphError)

    def test_timeseries_error_in_hierarchy(self):
        from repro.errors import ReproError
        from repro.timeseries import TimeSeriesError
        assert issubclass(TimeSeriesError, ReproError)

    def test_error_messages_carry_context(self):
        from repro.errors import EdgeNotFoundError, NodeNotFoundError
        node_error = NodeNotFoundError(42)
        assert node_error.node == 42
        assert "42" in str(node_error)
        edge_error = EdgeNotFoundError(1, 2)
        assert edge_error.edge == (1, 2)
