"""Tests for the compact (CSR) graph core and the mergeable cache.

The contracts under test are the ones DESIGN.md's "Compact core"
section states:

* **lossless** — ``CompactGraph`` round-trips every ``Graph`` exactly,
  including label tables, attributes, and insertion order (the order
  seeded sampling depends on);
* **invalidated** — ``Graph.compact()`` is cached per mutation
  version like the other views;
* **smaller on the wire** — pickling ships the flat encoded tuple,
  not the nested adjacency dicts;
* **kernel-equivalent** — the indexed matcher over compact arrays
  enumerates exactly what the legacy dict kernel does;
* **worker-count invariant** — cache-delta record/replay produces
  identical hit/miss counters at every worker count.
"""

import pickle
import random

import pytest

from repro.graph import CompactGraph, Graph, decode_graph
from repro.graph.compact import legacy_pickle_payload
from repro.matching.isomorphism import WILDCARD, SubgraphMatcher
from repro.patterns.base import PatternBudget
from repro.patterns.index import CoverageIndex
from repro.perf import CacheDelta, MatchCache, cached_covered_edges
from repro.tattoo.candidates import extract_chains


def random_graph(seed, nodes=24, extra_edges=28,
                 labels=("C", "N", "O"),
                 edge_labels=("s", "d")) -> Graph:
    """Connected-ish random graph with removals, attrs, and gaps in
    the node-id space (the shapes round-tripping must survive)."""
    rng = random.Random(seed)
    g = Graph(name=f"rand{seed}")
    ids = []
    for i in range(nodes):
        node = g.add_node(i * 3, label=rng.choice(labels))
        ids.append(node)
    for i in range(1, nodes):
        g.add_edge(ids[i - 1], ids[i], label=rng.choice(edge_labels))
    for _ in range(extra_edges):
        u, v = rng.sample(ids, 2)
        if not g.has_edge(u, v):
            g.add_edge(u, v, label=rng.choice(edge_labels))
    g.node_attrs(ids[0])["weight"] = 1.5
    first_edge = next(iter(g.edges()))
    g.edge_attrs(*first_edge)["kind"] = "backbone"
    # punch holes in the id space and the insertion order
    for node in rng.sample(ids[2:], 3):
        g.remove_node(node)
    return g


def assert_identical(a: Graph, b: Graph) -> None:
    """Content *and* iteration-order equality."""
    assert a.same_as(b)
    assert a.name == b.name
    assert list(a.nodes()) == list(b.nodes())
    assert list(a.edges()) == list(b.edges())
    for node in a.nodes():
        assert list(a.neighbors(node)) == list(b.neighbors(node))
        assert a.node_label(node) == b.node_label(node)
        assert a.node_attrs(node) == b.node_attrs(node)
    for u, v in a.edges():
        assert a.edge_label(u, v) == b.edge_label(u, v)
        assert a.edge_attrs(u, v) == b.edge_attrs(u, v)


class TestRoundTrip:
    def test_random_graphs_round_trip(self):
        for seed in range(5):
            g = random_graph(seed)
            assert_identical(g, g.compact().to_graph())

    def test_empty_graph(self):
        g = Graph(name="empty")
        c = g.compact()
        assert c.order() == 0 and c.size() == 0
        assert_identical(g, c.to_graph())

    def test_singleton_graph(self):
        g = Graph()
        g.add_node(7, label="Zn")
        assert_identical(g, g.compact().to_graph())

    def test_label_tables_are_interned(self):
        g = random_graph(1)
        c = g.compact()
        assert set(c.node_labels) == {g.node_label(u)
                                      for u in g.nodes()}
        assert len(set(c.node_labels)) == len(c.node_labels)
        assert c.label_set() == frozenset(c.node_labels)

    def test_encode_decode(self):
        g = random_graph(2)
        state = g.compact().encode()
        assert_identical(g, CompactGraph.from_encoded(state).to_graph())
        assert_identical(g, decode_graph(state))


class TestViewInvalidation:
    def test_compact_is_cached_until_mutation(self):
        g = random_graph(3)
        c = g.compact()
        assert g.compact() is c
        u = next(iter(g.nodes()))
        g.set_node_label(u, "Xx")
        rebuilt = g.compact()
        assert rebuilt is not c
        assert "Xx" in rebuilt.node_labels
        assert_identical(g, rebuilt.to_graph())

    def test_mutation_after_compact_round_trips(self):
        g = random_graph(4)
        g.compact()
        a, b = list(g.nodes())[:2]
        if g.has_edge(a, b):
            g.remove_edge(a, b)
        else:
            g.add_edge(a, b, label="new")
        assert_identical(g, g.compact().to_graph())


class TestPickle:
    def test_pickle_round_trips(self):
        g = random_graph(5)
        assert_identical(g, pickle.loads(pickle.dumps(g)))

    def test_compact_payload_smaller_than_legacy(self):
        g = random_graph(6, nodes=60, extra_edges=120)
        compact_wire = len(pickle.dumps(g))
        legacy_wire = len(pickle.dumps(legacy_pickle_payload(g)))
        assert compact_wire < legacy_wire

    def test_compact_graph_itself_pickles(self):
        c = random_graph(7).compact()
        clone = pickle.loads(pickle.dumps(c))
        assert_identical(c.to_graph(), clone.to_graph())


def wildcard_pattern() -> Graph:
    """Path pattern with a wildcard node and a wildcard edge label."""
    p = Graph()
    p.add_node(0, label="C")
    p.add_node(1, label=WILDCARD)
    p.add_node(2, label="O")
    p.add_edge(0, 1, label=WILDCARD)
    p.add_edge(1, 2, label="s")
    return p


class TestKernelEquivalence:
    """The indexed (compact-array) kernel against the dict oracle."""

    def embeddings(self, pattern, target, max_results=None,
                   induced=False):
        indexed = list(SubgraphMatcher(
            pattern, target, induced=induced,
            kernel="indexed").iter_embeddings(max_results=max_results))
        legacy = list(SubgraphMatcher(
            pattern, target, induced=induced,
            kernel="legacy").iter_embeddings(max_results=max_results))
        return indexed, legacy

    def test_plain_patterns_agree(self):
        target = random_graph(8)
        for seed in range(3):
            pattern = extract_chains(
                random_graph(seed, nodes=8, extra_edges=4),
                PatternBudget(max_patterns=2, min_size=2, max_size=5),
                random.Random(seed))
            for p in pattern:
                indexed, legacy = self.embeddings(p.graph, target,
                                                  max_results=50)
                assert indexed == legacy

    def test_wildcard_edge_labels_agree(self):
        target = random_graph(9)
        indexed, legacy = self.embeddings(wildcard_pattern(), target,
                                          max_results=200)
        assert indexed == legacy

    def test_induced_semantics_agree(self):
        target = random_graph(10)
        pattern = wildcard_pattern()
        for induced in (False, True):
            indexed, legacy = self.embeddings(pattern, target,
                                              max_results=200,
                                              induced=induced)
            assert indexed == legacy

    def test_absent_label_prunes_to_nothing(self):
        target = random_graph(11)
        p = Graph()
        p.add_node(0, label="Unobtainium")
        p.add_node(1, label="C")
        p.add_edge(0, 1)
        indexed, legacy = self.embeddings(p, target, max_results=10)
        assert indexed == legacy == []


class TestCacheDelta:
    def key(self, i):
        return ("sub", f"code{i}", "fp", False)

    def test_recording_suspends_counters(self):
        cache = MatchCache()
        delta = CacheDelta()
        with cache.recording(delta):
            cache.store(self.key(0), True)
            found, value = cache.lookup(self.key(0))
            assert found and value is True
            found, _ = cache.lookup(self.key(1))
            assert not found
        assert cache.hits == cache.misses == 0
        # store + hit logged; the miss alone logged nothing
        assert len(delta) == 2

    def test_merge_replays_hits_and_misses(self):
        worker = MatchCache()
        delta = CacheDelta()
        with worker.recording(delta):
            cache_miss_then_store = self.key(0)
            found, _ = worker.lookup(cache_miss_then_store)
            assert not found
            worker.store(cache_miss_then_store, True)
            worker.lookup(cache_miss_then_store)  # warm hit

        cold = MatchCache()
        counts = cold.merge_delta(delta)
        assert counts == {"hits": 1, "misses": 1}
        assert cold.stats()["hits"] == 1
        assert cold.stats()["misses"] == 1
        assert self.key(0) in cold

        warm = MatchCache()
        warm.store(self.key(0), True)
        warm.reset_stats()
        counts = warm.merge_delta(delta)
        # the coordinator already knew the answer: both accesses hit
        assert counts == {"hits": 2, "misses": 0}

    def test_seed_and_hot_entries_are_silent(self):
        cache = MatchCache()
        for i in range(5):
            cache.store(self.key(i), i)
        cache.reset_stats()
        snapshot = cache.hot_entries(limit=3)
        assert [key for key, _ in snapshot] == \
            [self.key(2), self.key(3), self.key(4)]
        worker = MatchCache()
        worker.seed(snapshot)
        assert worker.stats()["hits"] == 0
        assert worker.stats()["misses"] == 0
        assert len(worker) == 3

    def test_delta_pickles(self):
        delta = CacheDelta()
        delta.record(self.key(0), True)
        clone = pickle.loads(pickle.dumps(delta))
        assert clone.entries == delta.entries


@pytest.fixture()
def pattern_pool():
    budget = PatternBudget(max_patterns=4, min_size=2, max_size=5)
    rng = random.Random(13)
    patterns = []
    for seed in range(4):
        patterns.extend(extract_chains(
            random_graph(seed, nodes=10, extra_edges=6), budget, rng))
    # dedup by code, keep insertion order
    seen, unique = set(), []
    for p in patterns:
        if p.code not in seen:
            seen.add(p.code)
            unique.append(p)
    return unique


class TestWorkerCountInvariance:
    """Coverage indexing yields identical cache counters at any
    worker count — the invariance the bench harness gates on."""

    def index_stats(self, patterns, workers):
        graphs = [random_graph(seed, nodes=14, extra_edges=10)
                  for seed in range(20, 24)]
        cache = MatchCache()
        index = CoverageIndex(graphs, max_embeddings=10, cache=cache)
        index.add_patterns(patterns, workers=workers)
        covers = {p.code: index.cover_of(p) for p in patterns}
        stats = cache.stats()
        return covers, {"hits": stats["hits"],
                        "misses": stats["misses"]}

    def test_workers_1_vs_4_identical(self, pattern_pool):
        covers_serial, stats_serial = self.index_stats(pattern_pool, 1)
        covers_pool, stats_pool = self.index_stats(pattern_pool, 4)
        assert covers_serial == covers_pool
        assert stats_serial == stats_pool

    def test_cached_covered_edges_delta_protocol(self):
        pattern = wildcard_pattern()
        target = random_graph(30)
        cache = MatchCache()
        delta = CacheDelta()
        with cache.recording(delta):
            first = cached_covered_edges(pattern, target, cache=cache)
            second = cached_covered_edges(pattern, target, cache=cache)
        assert first == second
        assert cache.hits == cache.misses == 0
        replay = MatchCache()
        counts = replay.merge_delta(delta)
        assert counts["misses"] >= 1
        assert counts["hits"] >= 1
