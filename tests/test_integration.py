"""End-to-end integration scenarios across subsystems."""

import random

import pytest

from repro.core import PatternBudget, build_vqi, build_vqi_with_report
from repro.datasets import (
    EvolvingRepository,
    NetworkConfig,
    generate_chemical_repository,
    generate_network,
    generate_update_stream,
    generate_workload,
)
from repro.patterns import default_basic_patterns, pattern_set_score
from repro.query import QuerySuggester
from repro.usability import SimulatedUser, StudyCondition, run_study
from repro.vqi import MaintainedVQI, VQISpec, build_maintained_vqi


class TestRepositoryLifecycle:
    """Build -> formulate -> execute -> export -> reimport -> requery."""

    def test_full_repository_lifecycle(self):
        repo = generate_chemical_repository(40, seed=51)
        budget = PatternBudget(5, min_size=4, max_size=8)
        vqi, report = build_vqi_with_report(repo, budget)
        assert report.generator == "catapult"

        # formulate a query from a canned pattern and execute
        pattern = vqi.pattern_panel.canned[0]
        vqi.query_panel.builder.add_pattern(pattern)
        results = vqi.execute()
        assert results.match_count() > 0

        # every reported embedding is a real subgraph occurrence
        for match in results.matches[:3]:
            for embedding in match.embeddings:
                for u, v in vqi.query_panel.query.edges():
                    assert match.graph.has_edge(embedding[u],
                                                embedding[v])

        # the spec round-trips and rebinds to the same data
        restored = VQISpec.from_json(vqi.spec.to_json())
        from repro.vqi import VisualQueryInterface
        vqi2 = VisualQueryInterface(restored, repository=repo)
        vqi2.query_panel.builder.add_pattern(
            vqi2.pattern_panel.canned[0])
        results2 = vqi2.execute()
        assert results2.match_count() == results.match_count()

    def test_suggestion_driven_formulation_is_answerable(self):
        """Attribute panel + suggester build a query that matches."""
        repo = generate_chemical_repository(30, seed=52)
        budget = PatternBudget(4, min_size=4, max_size=8)
        vqi = build_vqi(repo, budget)
        suggester = QuerySuggester(repo)
        builder = vqi.query_panel.builder
        start_label = vqi.attribute_panel.node_alphabet()[0]
        node = builder.add_node(start_label)
        for _ in range(2):
            suggestions = suggester.suggest_for_query(
                builder, node, top_k=1, answerable_only=True)
            if not suggestions:
                break
            node = suggester.apply_suggestion(builder, node,
                                              suggestions[0])
        results = vqi.execute()
        assert results.match_count() > 0


class TestEvolutionLifecycle:
    """Build maintained VQI -> evolve -> formulate on evolved data."""

    def test_maintained_vqi_stays_usable(self):
        repo = generate_chemical_repository(50, seed=53)
        budget = PatternBudget(5, min_size=4, max_size=8)
        maintained = build_maintained_vqi(repo, budget)
        score_initial = maintained.midas.last_score

        evolving = EvolvingRepository([g.copy() for g in repo])
        stream = generate_update_stream(
            evolving, batches=3, batch_size=12, seed=54, drift_after=0,
            drift_weights=(0.05, 0.05, 0.05, 6.0))
        for batch in stream:
            evolving.apply(batch)
            maintained.apply_batch(batch)

        # panel and engine reflect the evolved repository
        assert len(maintained.vqi.repository) == len(evolving.graphs())
        vqi = maintained.vqi
        vqi.query_panel.builder.add_pattern(vqi.pattern_panel.canned[0])
        assert vqi.execute().match_count() > 0
        # pattern quality did not collapse
        score = pattern_set_score(list(maintained.midas.patterns),
                                  evolving.graphs())
        assert score > 0.2

    def test_usability_pipeline_on_network(self):
        """TATTOO VQI + workload + simulated study, end to end."""
        network = generate_network(NetworkConfig(nodes=250), seed=55)
        budget = PatternBudget(6, min_size=4, max_size=8)
        vqi = build_vqi(network, budget)
        workload = list(generate_workload([network], 10, seed=56,
                                          min_nodes=4, max_nodes=7))
        study = run_study(workload, [
            StudyCondition("manual", []),
            StudyCondition("data-driven",
                           default_basic_patterns()
                           + list(vqi.pattern_panel.canned)),
        ], seed=57)
        assert (study.by_name("data-driven").summary["mean_steps"]
                < study.by_name("manual").summary["mean_steps"])


class TestCrossDomainPortability:
    def test_one_builder_many_domains(self):
        """The §2.2 portability claim, executed end to end."""
        budget = PatternBudget(4, min_size=4, max_size=8)
        sources = [
            generate_chemical_repository(25, seed=58),
            generate_network(NetworkConfig(nodes=150), seed=59),
        ]
        specs = []
        for data in sources:
            vqi = build_vqi(data, budget)
            spec_json = vqi.spec.to_json()
            specs.append(spec_json)
            # the spec alone is enough to render the interface
            restored = VQISpec.from_json(spec_json)
            from repro.vqi import render_pattern_panel_svg
            svg = render_pattern_panel_svg(
                restored.pattern_panel.all_patterns())
            assert svg.startswith("<svg")
        assert specs[0] != specs[1]  # content is data-driven

    def test_beyond_graphs_same_recipe(self):
        """The time-series sketch VQI follows the same shape: mined
        panel -> bottom-up query -> matches."""
        from repro.timeseries import (
            SketchBudget,
            SketchVQI,
            generate_series_collection,
        )
        collection = generate_series_collection(25, seed=60)
        vqi = SketchVQI(collection, SketchBudget(4, window=40))
        assert vqi.panel
        vqi.start_from_sketch(0)
        matches = vqi.execute(top_k=3)
        assert matches
        assert matches[0].distance <= matches[-1].distance
