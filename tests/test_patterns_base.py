"""Tests for Pattern, PatternBudget, and PatternSet."""

import pytest

from repro.errors import BudgetError, GraphError
from repro.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    disjoint_union,
    path_graph,
    star_graph,
)
from repro.patterns import (
    Pattern,
    PatternBudget,
    PatternSet,
    basic_edge,
    basic_triangle,
    basic_two_path,
    default_basic_patterns,
    labeled_basic_edges,
)


class TestPattern:
    def test_rejects_empty(self):
        with pytest.raises(GraphError):
            Pattern(Graph())

    def test_rejects_disconnected(self):
        with pytest.raises(GraphError):
            Pattern(disjoint_union([path_graph(2), path_graph(2)]))

    def test_basic_vs_canned(self):
        assert Pattern(path_graph(3)).is_basic
        assert Pattern(complete_graph(3)).is_basic
        assert Pattern(cycle_graph(4)).is_canned
        assert not Pattern(cycle_graph(4)).is_basic

    def test_equality_by_isomorphism(self):
        p1 = Pattern(cycle_graph(5, label="A"))
        relabeled = cycle_graph(5, label="A").relabeled(
            {0: 4, 1: 0, 2: 1, 3: 2, 4: 3})
        p2 = Pattern(relabeled)
        assert p1 == p2
        assert hash(p1) == hash(p2)

    def test_inequality(self):
        assert Pattern(path_graph(4)) != Pattern(star_graph(3))

    def test_order_size(self):
        p = Pattern(cycle_graph(5))
        assert (p.order(), p.size()) == (5, 5)

    def test_source_recorded(self):
        assert Pattern(path_graph(2), source="x").source == "x"

    def test_repr(self):
        assert "canned" in repr(Pattern(cycle_graph(4)))


class TestPatternBudget:
    def test_admits_in_range(self):
        b = PatternBudget(5, min_size=4, max_size=8)
        assert b.admits(cycle_graph(4))
        assert b.admits(cycle_graph(8))
        assert not b.admits(path_graph(3))
        assert not b.admits(cycle_graph(9))

    def test_invalid_budget(self):
        with pytest.raises(BudgetError):
            PatternBudget(0)
        with pytest.raises(BudgetError):
            PatternBudget(3, min_size=5, max_size=4)
        with pytest.raises(BudgetError):
            PatternBudget(3, min_size=0)


class TestPatternSet:
    def test_dedup_by_isomorphism(self):
        s = PatternSet()
        assert s.add(Pattern(cycle_graph(4, label="A")))
        shifted = cycle_graph(4, label="A").relabeled(
            {0: 3, 1: 0, 2: 1, 3: 2})
        assert not s.add(Pattern(shifted))
        assert len(s) == 1

    def test_iteration_order(self):
        patterns = [Pattern(path_graph(2)), Pattern(path_graph(3)),
                    Pattern(cycle_graph(4))]
        s = PatternSet(patterns)
        assert list(s) == patterns

    def test_contains(self):
        s = PatternSet([Pattern(star_graph(3))])
        assert Pattern(star_graph(3)) in s
        assert Pattern(path_graph(4)) not in s

    def test_remove(self):
        s = PatternSet([Pattern(path_graph(2)), Pattern(path_graph(3))])
        assert s.remove(Pattern(path_graph(2)))
        assert len(s) == 1
        assert not s.remove(Pattern(path_graph(2)))

    def test_replace_preserves_position(self):
        a, b, c = (Pattern(path_graph(2)), Pattern(path_graph(3)),
                   Pattern(path_graph(4)))
        s = PatternSet([a, b])
        assert s.replace(a, c)
        assert list(s) == [c, b]

    def test_replace_fails_on_duplicate(self):
        a, b = Pattern(path_graph(2)), Pattern(path_graph(3))
        s = PatternSet([a, b])
        assert not s.replace(a, b)
        assert list(s) == [a, b]

    def test_replace_fails_on_missing(self):
        s = PatternSet([Pattern(path_graph(2))])
        assert not s.replace(Pattern(star_graph(3)), Pattern(path_graph(4)))

    def test_basic_canned_split(self):
        s = PatternSet([Pattern(path_graph(2)), Pattern(cycle_graph(5))])
        assert len(s.basic()) == 1
        assert len(s.canned()) == 1

    def test_copy_independent(self):
        s = PatternSet([Pattern(path_graph(2))])
        t = s.copy()
        t.add(Pattern(path_graph(3)))
        assert len(s) == 1

    def test_getitem_and_sizes(self):
        p = Pattern(cycle_graph(4))
        s = PatternSet([p])
        assert s[0] is p
        assert s.sizes() == [(4, 4)]


class TestBasicPatterns:
    def test_default_trio(self):
        trio = default_basic_patterns()
        assert len(trio) == 3
        assert all(p.is_basic for p in trio)

    def test_shapes(self):
        assert basic_edge().size() == 1
        assert basic_two_path().size() == 2
        assert basic_triangle().size() == 3

    def test_labeled_basic_edges_pairs(self):
        patterns = labeled_basic_edges(["C", "N"])
        # C-C, C-N, N-N
        assert len(patterns) == 3

    def test_labeled_basic_edges_dedup_labels(self):
        assert len(labeled_basic_edges(["C", "C"])) == 1
