"""Tests for exact graph edit distance."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import (
    Graph,
    build_graph,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.matching import (
    are_isomorphic,
    ged_similarity,
    graph_edit_distance,
)
from repro.patterns import Pattern, pattern_similarity


class TestKnownValues:
    def test_identical_zero(self):
        g = cycle_graph(5, label="A")
        assert graph_edit_distance(g, g) == 0

    def test_isomorphic_zero(self):
        g = cycle_graph(5, label="A")
        h = g.relabeled({0: 3, 1: 4, 2: 0, 3: 1, 4: 2})
        assert graph_edit_distance(g, h) == 0

    def test_single_relabel(self):
        g = path_graph(3, label="A")
        h = path_graph(3, label="A")
        h.set_node_label(2, "B")
        assert graph_edit_distance(g, h) == 1

    def test_edge_relabel(self):
        g = build_graph([(0, "A"), (1, "A")], labeled_edges=[(0, 1, "x")])
        h = build_graph([(0, "A"), (1, "A")], labeled_edges=[(0, 1, "y")])
        assert graph_edit_distance(g, h) == 1

    def test_edge_deletion(self):
        assert graph_edit_distance(cycle_graph(4, label="A"),
                                   path_graph(4, label="A")) == 1

    def test_node_plus_edge_insertion(self):
        assert graph_edit_distance(path_graph(3, label="A"),
                                   path_graph(4, label="A")) == 2

    def test_empty_graphs(self):
        assert graph_edit_distance(Graph(), Graph()) == 0
        assert graph_edit_distance(Graph(), complete_graph(3)) == 6
        assert graph_edit_distance(complete_graph(3), Graph()) == 6

    def test_star_vs_path(self):
        # S3 -> P4: move one leaf: delete hub-leaf edge, add leaf-leaf
        assert graph_edit_distance(star_graph(3, label="A"),
                                   path_graph(4, label="A")) == 2

    def test_k4_vs_c4(self):
        assert graph_edit_distance(complete_graph(4, label="A"),
                                   cycle_graph(4, label="A")) == 2

    def test_size_guard(self):
        with pytest.raises(GraphError):
            graph_edit_distance(complete_graph(10), complete_graph(10))


class TestMetricProperties:
    @given(st.integers(min_value=0, max_value=500),
           st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_symmetry(self, seed1, seed2):
        from repro.graph import gnm_random_graph
        rng1, rng2 = random.Random(seed1), random.Random(seed2)
        g1 = gnm_random_graph(5, rng1.randint(3, 7), rng1,
                              labels=["A", "B"])
        g2 = gnm_random_graph(5, rng2.randint(3, 7), rng2,
                              labels=["A", "B"])
        assert (graph_edit_distance(g1, g2)
                == graph_edit_distance(g2, g1))

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_zero_iff_isomorphic(self, seed):
        from repro.graph import gnm_random_graph
        rng = random.Random(seed)
        g1 = gnm_random_graph(5, rng.randint(3, 7), rng,
                              labels=["A", "B"])
        g2 = gnm_random_graph(5, rng.randint(3, 7), rng,
                              labels=["A", "B"])
        zero = graph_edit_distance(g1, g2) == 0
        assert zero == are_isomorphic(g1, g2)

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=15, deadline=None)
    def test_triangle_inequality(self, seed):
        from repro.graph import gnm_random_graph
        rng = random.Random(seed)
        graphs = [gnm_random_graph(4, rng.randint(2, 5), rng,
                                   labels=["A"]) for _ in range(3)]
        d01 = graph_edit_distance(graphs[0], graphs[1])
        d12 = graph_edit_distance(graphs[1], graphs[2])
        d02 = graph_edit_distance(graphs[0], graphs[2])
        assert d02 <= d01 + d12


class TestSimilarity:
    def test_range_and_extremes(self):
        g = cycle_graph(4, label="A")
        assert ged_similarity(g, g) == 1.0
        assert ged_similarity(Graph(), Graph()) == 1.0
        far = complete_graph(4, label="Z")
        assert 0.0 <= ged_similarity(g, far) < 1.0

    def test_pattern_similarity_method(self):
        p1 = Pattern(cycle_graph(4, label="A"))
        p2 = Pattern(path_graph(4, label="A"))
        sim = pattern_similarity(p1, p2, method="ged")
        assert 0.0 < sim < 1.0
        # one edge apart out of 15 total elements
        assert sim == pytest.approx(1.0 - 1.0 / 15.0)

    def test_method_ordering_sanity(self):
        """All three methods agree that close beats far."""
        close1 = Pattern(path_graph(4, label="A"))
        close2 = Pattern(path_graph(5, label="A"))
        far = Pattern(complete_graph(4, label="B"))
        for method in ("feature", "mcs", "ged"):
            assert (pattern_similarity(close1, close2, method=method)
                    > pattern_similarity(close1, far, method=method))
