PYTHON ?= python

.PHONY: lint lint-json test compile check

lint:
	PYTHONPATH=tools $(PYTHON) -m reprolint src/repro

lint-json:
	PYTHONPATH=tools $(PYTHON) -m reprolint src/repro --format json

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

compile:
	$(PYTHON) -m compileall -q src

check: compile lint test
