PYTHON ?= python

.PHONY: lint lint-json lint-project test compile check bench-smoke \
	bench-kernel bench-scale bench-store trace-smoke chaos-smoke \
	serve-smoke store-smoke

lint:
	PYTHONPATH=tools $(PYTHON) -m reprolint src/repro

lint-json:
	PYTHONPATH=tools $(PYTHON) -m reprolint src/repro --format json

# whole-program rules + AST cache + lint-baseline.json, SARIF output
lint-project:
	PYTHONPATH=tools $(PYTHON) -m reprolint --project --format sarif \
		src/repro

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

compile:
	$(PYTHON) -m compileall -q src

bench-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_runner.py --smoke \
		--out BENCH_perf.json

# traced smoke run + structural validation of the trace envelope
trace-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_runner.py --smoke \
		--out BENCH_perf.json --trace TRACE_smoke.json
	$(PYTHON) tests/trace_schema.py TRACE_smoke.json

# deterministic fault-injection suite at two worker counts: the same
# seeded fault plan must produce the same recovery serially and in a
# process pool (DESIGN.md, "Resilience")
chaos-smoke:
	REPRO_WORKERS=1 PYTHONPATH=src $(PYTHON) -m pytest -x -q \
		tests/test_resilience.py
	REPRO_WORKERS=4 PYTHONPATH=src $(PYTHON) -m pytest -x -q \
		tests/test_resilience.py

# gates against the committed baseline, then refreshes it in place
bench-kernel:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_kernel.py --smoke \
		--baseline BENCH_kernel.json --out BENCH_kernel.json

# durable-store micro-benchmark: segment/WAL append throughput and
# cold-recovery latency, gated on bitwise round trips; refreshes
# BENCH_store.json in place
bench-store:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_store.py \
		--out BENCH_store.json

# selection scale-tier ladder (1k/10k/50k-graph repositories,
# 10k/100k-node networks): lazy-vs-naive byte identity, >=10x
# evaluation reduction at the 10k tier, wall/RSS budgets, and
# workers-1-vs-4 determinism; refreshes BENCH_scale.json in place
bench-scale:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_scale.py \
		--out BENCH_scale.json

# scripted ServiceClient run against a live ThreadingHTTPServer at
# REPRO_WORKERS=1 and =4; every response pair must be byte-identical
# after strip_volatile (DESIGN.md, "Service layer")
serve-smoke:
	PYTHONPATH=src $(PYTHON) tools/serve_smoke.py

# durability gate: the in-process crash-recovery matrix at two worker
# counts, then kill -9 of a live durable serve mid-maintenance with
# byte-identical recovery (DESIGN.md, "Durability & recovery")
store-smoke:
	REPRO_WORKERS=1 PYTHONPATH=src $(PYTHON) -m pytest -x -q \
		tests/test_store.py
	REPRO_WORKERS=4 PYTHONPATH=src $(PYTHON) -m pytest -x -q \
		tests/test_store.py
	PYTHONPATH=src $(PYTHON) tools/store_smoke.py

check: compile lint lint-project test
