PYTHON ?= python

.PHONY: lint lint-json test compile check bench-smoke

lint:
	PYTHONPATH=tools $(PYTHON) -m reprolint src/repro

lint-json:
	PYTHONPATH=tools $(PYTHON) -m reprolint src/repro --format json

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

compile:
	$(PYTHON) -m compileall -q src

bench-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_runner.py --smoke \
		--out BENCH_perf.json

check: compile lint test
