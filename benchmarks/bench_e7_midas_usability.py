"""E7 — stale vs maintained patterns on an evolved repository.

Tutorial claims (§2.1, §2.4): pattern panels "grow stale quickly"
as data evolves, hurting formulation; MIDAS-maintained panels keep
formulation steps and time low on the evolved data.
"""

from __future__ import annotations

import pytest

from repro.datasets import (
    EvolvingRepository,
    generate_chemical_repository,
    generate_update_stream,
    generate_workload,
)
from repro.midas import Midas, MidasConfig
from repro.patterns import PatternBudget, default_basic_patterns
from repro.usability import StudyCondition, run_study

from conftest import print_table


def test_e7_stale_vs_maintained(benchmark):
    def scenario():
        # day-0 repository is chain-heavy: the initial panel learns
        # chain-shaped patterns
        repo = generate_chemical_repository(
            80, seed=41, motif_weights=[0.1, 0.1, 0.3, 5.0])
        budget = PatternBudget(6, min_size=4, max_size=8)
        midas = Midas(repo, budget,
                      MidasConfig(seed=3, drift_threshold=0.008))
        stale_panel = list(midas.patterns)  # frozen at day 0

        # the stream drifts hard toward ring motifs and churns out the
        # old chain-heavy graphs
        evolving = EvolvingRepository([g.copy() for g in repo])
        stream = generate_update_stream(
            evolving, batches=6, batch_size=25, seed=42, drift_after=0,
            removal_fraction=0.5,
            drift_weights=(6.0, 3.0, 0.05, 0.05))
        majors = 0
        for batch in stream:
            evolving.apply(batch)
            if midas.apply_batch(batch).kind == "major":
                majors += 1
        maintained_panel = list(midas.patterns)

        # queries target the *evolved* repository; canned panels only,
        # to isolate the staleness effect
        workload = list(generate_workload(evolving.graphs(), 30,
                                          seed=43, min_nodes=5,
                                          max_nodes=8))
        study = run_study(workload, [
            StudyCondition("manual", []),
            StudyCondition("stale panel", stale_panel),
            StudyCondition("maintained panel", maintained_panel),
        ], seed=44)
        return study, majors, stale_panel, maintained_panel

    study, majors, stale_panel, maintained_panel = benchmark.pedantic(
        scenario, rounds=1, iterations=1)

    rows = [(row["condition"], f"{row['mean_steps']:.1f}",
             f"{row['mean_seconds']:.1f}",
             f"{row['mean_pattern_uses']:.2f}")
            for row in study.table_rows()]
    print_table("E7: formulation on the evolved repository "
                f"({majors} major maintenance events)",
                ("condition", "steps", "time(s)", "pattern uses"),
                rows)

    manual = study.by_name("manual").summary
    stale = study.by_name("stale panel").summary
    maintained = study.by_name("maintained panel").summary
    # reproduced claims: any panel beats manual; the maintained panel
    # is at least as helpful as the stale one on the evolved data
    assert maintained["mean_steps"] < manual["mean_steps"]
    assert maintained["mean_steps"] <= stale["mean_steps"] + 0.5
