"""Perf-layer benchmark: wall time and cache effect at 1 vs 4 workers.

Runs E2/E4/E6-shaped workloads (CATAPULT selection, TATTOO network
extraction, MIDAS maintenance) at ``workers in {1, 4}`` and writes a
JSON report with wall times, per-worker-count match-cache hit rates,
compact-vs-legacy pickled payload sizes, peak RSS, and the gates CI
actually enforces:

* **determinism** — every worker count produced the identical
  pattern set (byte-identical codes);
* **kernel equivalence** — the indexed (compact CSR) kernel and the
  legacy dict kernel produce byte-identical pattern sets
  (``REPRO_KERNEL=legacy`` drives the oracle runs);
* **cache invariance** — the merged hit rate at 4 workers is within
  one point of the serial run's (workers never start cold and the
  delta-replay accounting is worker-count invariant);
* **payload** — a pickled graph (compact wire form) is smaller than
  the nested-dict payload it replaced;
* **speedup** — catapult and tattoo run faster at 4 workers than at
  1.  This is the only hardware-dependent gate: it hard-fails where
  ``os.cpu_count() > 1`` and is recorded as skipped (with the
  reason) on single-core runners, where a speedup is physically
  impossible.

With ``--trace out.json`` each experiment adds one traced run (via
``PipelineConfig(trace=True)``), writes every span record into one
:mod:`repro.obs` trace envelope, and reports the per-stage wall-time
breakdown plus the fraction of the root span its stages account for.

Usage::

    PYTHONPATH=src python benchmarks/bench_runner.py --smoke \
        --out BENCH_perf.json --trace TRACE_perf.json
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import resource
import sys
import time
from typing import Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import pipeline
from repro.core.pipeline import PipelineConfig
from repro.datasets import (
    EvolvingRepository,
    NetworkConfig,
    generate_chemical_repository,
    generate_network,
    generate_update_stream,
)
from repro.graph.compact import legacy_pickle_payload
from repro.matching.isomorphism import KERNEL_ENV
from repro.obs import (matching_snapshot, metrics, stage_breakdown,
                       write_trace)
from repro.patterns import PatternBudget
from repro.patterns.selection import SELECT_ENV
from repro.perf import clear_match_cache

WORKER_COUNTS = (1, 4)

#: Maximum allowed |hit_rate(workers=4) - hit_rate(workers=1)|.
HIT_RATE_TOLERANCE = 0.01


def _cache_delta(before: Dict[str, float],
                 after: Dict[str, float]) -> Dict[str, float]:
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    total = hits + misses
    return {
        "hits": int(hits),
        "misses": int(misses),
        "hit_rate": hits / total if total else 0.0,
        "vf2_calls": int(after["vf2_calls"] - before["vf2_calls"]),
        "pairs_pruned": int(after["pairs_pruned"]
                            - before["pairs_pruned"]),
    }


def _peak_rss_kb() -> int:
    """Process high-water-mark RSS in kB (monotonic: per-experiment
    values report the peak reached *by the end of* that experiment)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _payload_profile(graphs, reps: int = 5) -> Dict[str, object]:
    """Pickled-size and encode/decode cost of shipping ``graphs``.

    ``compact_bytes`` is what :func:`pickle.dumps` now produces (the
    flat encoded tuple via ``Graph.__reduce__``); ``legacy_bytes`` is
    the nested-dict payload the pickle path used to ship.  Times are
    best-of-``reps`` for the whole graph list.
    """
    compact_bytes = sum(len(pickle.dumps(g)) for g in graphs)
    legacy_bytes = sum(len(pickle.dumps(legacy_pickle_payload(g)))
                       for g in graphs)
    encode_s = min(_timed(lambda: [pickle.dumps(g) for g in graphs])[1]
                   for _ in range(reps))
    wire = [pickle.dumps(g) for g in graphs]
    decode_s = min(_timed(lambda: [pickle.loads(b) for b in wire])[1]
                   for _ in range(reps))
    return {
        "graphs": len(graphs),
        "compact_bytes": compact_bytes,
        "legacy_bytes": legacy_bytes,
        "bytes_ratio": (compact_bytes / legacy_bytes
                        if legacy_bytes else 0.0),
        "encode_seconds": encode_s,
        "decode_seconds": decode_s,
    }


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _stage_profile(record: Dict[str, object]) -> Dict[str, object]:
    """Per-stage seconds plus the fraction of the root they cover."""
    stages = stage_breakdown(record)
    total = float(record["duration"]) or 0.0
    covered = sum(stages.values())
    return {
        "root": record["name"],
        "total_seconds": total,
        "stage_seconds": stages,
        "stage_coverage": covered / total if total else 0.0,
    }


def run_catapult(smoke: bool,
                 traces: Optional[List[Dict[str, object]]]
                 ) -> Dict[str, object]:
    """E2-shaped: CATAPULT selection over a chemical repository."""
    size = 30 if smoke else 150
    repo = generate_chemical_repository(size, seed=7)
    budget = PatternBudget(5, min_size=4, max_size=8)
    walks = 10 if smoke else 30
    runs = {}
    for workers in WORKER_COUNTS:
        clear_match_cache()
        before = matching_snapshot()
        config = PipelineConfig(budget=budget, seed=1, workers=workers,
                                options={"walks_per_cluster": walks})
        result, wall = _timed(
            lambda: pipeline.run_catapult(repo, config))
        runs[str(workers)] = {
            "wall_seconds": wall,
            "pattern_codes": sorted(result.patterns.codes()),
            "cache": _cache_delta(before, matching_snapshot()),
        }
    experiment = _finish("catapult_e2", {"repository_size": size}, runs)
    experiment["payload"] = _payload_profile(list(repo))
    experiment["peak_rss_kb"] = _peak_rss_kb()
    if traces is not None:
        clear_match_cache()
        config = PipelineConfig(budget=budget, seed=1, trace=True,
                                options={"walks_per_cluster": walks})
        result = pipeline.run_catapult(repo, config)
        traces.append(result.trace)
        experiment["trace"] = _stage_profile(result.trace)
    return experiment


def run_tattoo(smoke: bool,
               traces: Optional[List[Dict[str, object]]]
               ) -> Dict[str, object]:
    """E4-shaped: TATTOO extraction + selection on one network."""
    nodes = 150 if smoke else 600
    network = generate_network(NetworkConfig(nodes=nodes, cliques=4,
                                             petals=3, flowers=3), seed=2)
    budget = PatternBudget(5, min_size=4, max_size=8)
    runs = {}
    for workers in WORKER_COUNTS:
        clear_match_cache()
        before = matching_snapshot()
        config = PipelineConfig(budget=budget, seed=1, workers=workers)
        result, wall = _timed(
            lambda: pipeline.run_tattoo(network, config))
        runs[str(workers)] = {
            "wall_seconds": wall,
            "pattern_codes": sorted(result.patterns.codes()),
            "cache": _cache_delta(before, matching_snapshot()),
        }
    experiment = _finish("tattoo_e4", {"network_nodes": nodes}, runs)
    experiment["payload"] = _payload_profile([network])
    experiment["peak_rss_kb"] = _peak_rss_kb()
    if traces is not None:
        clear_match_cache()
        config = PipelineConfig(budget=budget, seed=1, trace=True)
        result = pipeline.run_tattoo(network, config)
        traces.append(result.trace)
        experiment["trace"] = _stage_profile(result.trace)
    return experiment


def run_midas(smoke: bool,
              traces: Optional[List[Dict[str, object]]]
              ) -> Dict[str, object]:
    """E6-shaped: MIDAS maintenance over an update stream.

    The engine-lifetime cache is the point here: every batch rebuilds
    its coverage index, so from batch 2 onward hits should dominate.
    """
    initial = 30 if smoke else 100
    batches = 2 if smoke else 5
    budget = PatternBudget(5, min_size=4, max_size=8)

    def drive(workers: int, trace: bool):
        clear_match_cache()
        repo = generate_chemical_repository(initial, seed=31)
        config = PipelineConfig(budget=budget, seed=2, workers=workers,
                                trace=trace)
        midas = pipeline.run_midas(repo, config)
        evolving = EvolvingRepository([g.copy() for g in repo])
        stream = generate_update_stream(evolving, batches=batches,
                                        batch_size=8, seed=32)
        reports = []
        for batch in stream:
            evolving.apply(batch)
            reports.append(midas.apply_batch(batch))
        return midas, reports

    runs = {}
    for workers in WORKER_COUNTS:
        (midas, _), wall = _timed(lambda: drive(workers, False))
        stats = midas.cache_stats() or {}
        runs[str(workers)] = {
            "wall_seconds": wall,
            "pattern_codes": sorted(midas.patterns.codes()),
            "cache": {
                "hits": int(stats.get("hits", 0)),
                "misses": int(stats.get("misses", 0)),
                "hit_rate": stats.get("hit_rate", 0.0),
            },
        }
    experiment = _finish("midas_e6",
                         {"initial_size": initial, "batches": batches},
                         runs)
    experiment["payload"] = _payload_profile(
        list(generate_chemical_repository(initial, seed=31)))
    experiment["peak_rss_kb"] = _peak_rss_kb()
    if traces is not None:
        midas, reports = drive(WORKER_COUNTS[0], True)
        records = [midas.trace] + [r.trace for r in reports]
        traces.extend(records)
        experiment["trace"] = [_stage_profile(r) for r in records]
    return experiment


def run_kernel_oracle(smoke: bool) -> Dict[str, object]:
    """Pipeline-level kernel equivalence: indexed vs legacy dict.

    Runs the catapult and tattoo workloads serially under each kernel
    (selected process-wide through ``REPRO_KERNEL``) and requires
    byte-identical sorted pattern-code sets.  This is the end-to-end
    complement to ``bench_kernel.py``'s per-embedding check.
    """
    size = 30 if smoke else 150
    repo = generate_chemical_repository(size, seed=7)
    walks = 10 if smoke else 30
    nodes = 150 if smoke else 600
    network = generate_network(NetworkConfig(nodes=nodes, cliques=4,
                                             petals=3, flowers=3), seed=2)
    budget = PatternBudget(5, min_size=4, max_size=8)
    codes: Dict[str, Dict[str, List[str]]] = {}
    previous = os.environ.get(KERNEL_ENV)
    try:
        for kernel in ("indexed", "legacy"):
            os.environ[KERNEL_ENV] = kernel
            clear_match_cache()
            cat = pipeline.run_catapult(repo, PipelineConfig(
                budget=budget, seed=1, workers=1,
                options={"walks_per_cluster": walks}))
            clear_match_cache()
            tat = pipeline.run_tattoo(network, PipelineConfig(
                budget=budget, seed=1, workers=1))
            codes[kernel] = {
                "catapult": sorted(cat.patterns.codes()),
                "tattoo": sorted(tat.patterns.codes()),
            }
    finally:
        if previous is None:
            os.environ.pop(KERNEL_ENV, None)
        else:
            os.environ[KERNEL_ENV] = previous
        clear_match_cache()
    return {
        "name": "kernel_oracle",
        "params": {"repository_size": size, "network_nodes": nodes},
        "kernels_agree": codes["indexed"] == codes["legacy"],
        "pattern_counts": {
            kernel: {workload: len(pcodes)
                     for workload, pcodes in sorted(per.items())}
            for kernel, per in sorted(codes.items())
        },
    }


#: Minimum naive/lazy exact-evaluation ratio on the E2/E4 workloads.
SELECT_REDUCTION_FLOOR = 3.0


def run_select_oracle(smoke: bool) -> Dict[str, object]:
    """Selection equivalence: lazy (CELF) sweep vs the naive oracle.

    Runs the catapult and tattoo workloads serially under each sweep
    (selected process-wide through ``REPRO_SELECT``) and requires
    byte-identical pattern-code *sequences* — the lazy sweep's
    contract is bitwise equality, so unlike the kernel oracle the
    codes are compared in selection order.  Also measures the exact
    candidate evaluations each mode performs (via the
    ``patterns.greedy.evaluations`` counter) and reports the
    reduction the lazy sweep achieves.
    """
    size = 30 if smoke else 150
    repo = generate_chemical_repository(size, seed=7)
    walks = 10 if smoke else 30
    nodes = 150 if smoke else 600
    network = generate_network(NetworkConfig(nodes=nodes, cliques=4,
                                             petals=3, flowers=3), seed=2)
    budget = PatternBudget(5, min_size=4, max_size=8)
    workloads = {
        "catapult": lambda: pipeline.run_catapult(repo, PipelineConfig(
            budget=budget, seed=1, workers=1,
            options={"walks_per_cluster": walks})),
        "tattoo": lambda: pipeline.run_tattoo(network, PipelineConfig(
            budget=budget, seed=1, workers=1)),
    }
    codes: Dict[str, Dict[str, List[str]]] = {}
    evaluations: Dict[str, Dict[str, int]] = {}
    counters = metrics.registry().counters
    previous = os.environ.get(SELECT_ENV)
    try:
        for mode in ("lazy", "naive"):
            os.environ[SELECT_ENV] = mode
            codes[mode] = {}
            evaluations[mode] = {}
            for workload, run in sorted(workloads.items()):
                clear_match_cache()
                before = counters.get("patterns.greedy.evaluations", 0)
                result = run()
                evaluations[mode][workload] = int(
                    counters.get("patterns.greedy.evaluations", 0)
                    - before)
                codes[mode][workload] = result.patterns.codes()
    finally:
        if previous is None:
            os.environ.pop(SELECT_ENV, None)
        else:
            os.environ[SELECT_ENV] = previous
        clear_match_cache()
    reduction = {
        workload: (evaluations["naive"][workload]
                   / evaluations["lazy"][workload]
                   if evaluations["lazy"][workload] else 0.0)
        for workload in sorted(workloads)
    }
    return {
        "name": "select_oracle",
        "params": {"repository_size": size, "network_nodes": nodes},
        "sweeps_agree": codes["lazy"] == codes["naive"],
        "evaluations": evaluations,
        "evaluations_reduction": reduction,
    }


def run_deadline(smoke: bool) -> Dict[str, object]:
    """Anytime-pipeline smoke: CATAPULT under shrinking deadlines.

    Measures a fault-free run, then re-runs with ``deadline_s`` at 50%
    and 25% of that wall time.  The contract under test: a deadline
    never crashes the pipeline and never yields an empty panel — worst
    case is a smaller, ``degraded``-flagged pattern set with a
    per-stage completion report.
    """
    size = 30 if smoke else 150
    repo = generate_chemical_repository(size, seed=7)
    budget = PatternBudget(5, min_size=4, max_size=8)
    walks = 10 if smoke else 30

    clear_match_cache()
    config = PipelineConfig(budget=budget, seed=1,
                            options={"walks_per_cluster": walks})
    full, wall = _timed(lambda: pipeline.run_catapult(repo, config))
    runs: Dict[str, Dict[str, object]] = {
        "full": {
            "wall_seconds": wall,
            "patterns": len(full.patterns),
            "degraded": full.degraded,
        },
    }
    nonempty = len(full.patterns) > 0
    for fraction in (0.5, 0.25):
        clear_match_cache()
        bounded = PipelineConfig(budget=budget, seed=1,
                                 deadline_s=max(wall * fraction, 1e-4),
                                 options={"walks_per_cluster": walks})
        result, bounded_wall = _timed(
            lambda: pipeline.run_catapult(repo, bounded))
        nonempty = nonempty and len(result.patterns) > 0
        runs[f"{int(fraction * 100)}pct"] = {
            "wall_seconds": bounded_wall,
            "deadline_seconds": bounded.deadline_s,
            "patterns": len(result.patterns),
            "degraded": result.degraded,
            "completion": result.stats["completion"],
        }
    return {
        "name": "deadline_anytime",
        "params": {"repository_size": size},
        "runs": runs,
        "nonempty_under_deadline": nonempty,
    }


def _finish(name: str, params: Dict[str, object],
            runs: Dict[str, Dict[str, object]]) -> Dict[str, object]:
    codes = [run["pattern_codes"] for run in runs.values()]
    deterministic = all(c == codes[0] for c in codes)
    serial = runs[str(WORKER_COUNTS[0])]
    parallel = runs[str(WORKER_COUNTS[-1])]
    return {
        "name": name,
        "params": params,
        "runs": runs,
        "deterministic_across_workers": deterministic,
        "speedup": (serial["wall_seconds"] / parallel["wall_seconds"]
                    if parallel["wall_seconds"] else 0.0),
        "hit_rate_delta": abs(parallel["cache"]["hit_rate"]
                              - serial["cache"]["hit_rate"]),
    }


def _gates(experiments: Dict[str, Dict[str, object]],
           multi_core: bool) -> List[Dict[str, object]]:
    """Evaluate the CI gates over the finished experiments.

    Each gate is ``{"name", "status": passed|failed|skipped,
    "detail"}``.  Only the speedup gate is hardware-dependent: on a
    single-core runner a 4-worker speedup is physically impossible,
    so it is recorded as skipped (with the measured value) instead of
    asserting a number the machine cannot produce.
    """
    gates = []
    for name in ("catapult_e2", "tattoo_e4", "midas_e6"):
        exp = experiments[name]
        gates.append({
            "name": f"{name}.deterministic",
            "status": ("passed" if exp["deterministic_across_workers"]
                       else "failed"),
            "detail": "identical pattern codes at every worker count",
        })
        delta = exp["hit_rate_delta"]
        gates.append({
            "name": f"{name}.cache_invariance",
            "status": ("passed" if delta <= HIT_RATE_TOLERANCE
                       else "failed"),
            "detail": (f"|hit_rate(4w) - hit_rate(1w)| = {delta:.4f} "
                       f"(tolerance {HIT_RATE_TOLERANCE})"),
        })
        payload = exp["payload"]
        gates.append({
            "name": f"{name}.payload",
            "status": ("passed" if payload["compact_bytes"]
                       < payload["legacy_bytes"] else "failed"),
            "detail": (f"compact {payload['compact_bytes']}B vs "
                       f"legacy {payload['legacy_bytes']}B "
                       f"(x{payload['bytes_ratio']:.2f})"),
        })
    for name in ("catapult_e2", "tattoo_e4"):
        speedup = experiments[name]["speedup"]
        if multi_core:
            status = "passed" if speedup > 1.0 else "failed"
            detail = f"x{speedup:.2f} at {WORKER_COUNTS[-1]} workers"
        else:
            status = "skipped"
            detail = (f"single-core runner (measured x{speedup:.2f}); "
                      "speedup requires cpu_count > 1")
        gates.append({"name": f"{name}.speedup",
                      "status": status, "detail": detail})
    oracle = experiments["kernel_oracle"]
    gates.append({
        "name": "kernel_oracle.equivalence",
        "status": "passed" if oracle["kernels_agree"] else "failed",
        "detail": "indexed and legacy kernels yield identical "
                  "pattern sets end to end",
    })
    select = experiments["select_oracle"]
    gates.append({
        "name": "select_oracle.byte_identity",
        "status": "passed" if select["sweeps_agree"] else "failed",
        "detail": "lazy and naive sweeps yield identical pattern "
                  "sequences end to end",
    })
    reduction = select["evaluations_reduction"]
    gates.append({
        "name": "select_oracle.evaluations_reduction",
        "status": ("passed"
                   if all(ratio >= SELECT_REDUCTION_FLOOR
                          for ratio in reduction.values())
                   else "failed"),
        "detail": ", ".join(
            f"{workload} x{ratio:.2f}"
            for workload, ratio in sorted(reduction.items()))
        + f" (floor x{SELECT_REDUCTION_FLOOR})",
    })
    gates.append({
        "name": "deadline_anytime.nonempty",
        "status": ("passed"
                   if experiments["deadline_anytime"]
                   ["nonempty_under_deadline"] else "failed"),
        "detail": "bounded runs still return patterns",
    })
    return gates


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_perf.json",
                        help="output JSON path")
    parser.add_argument("--smoke", action="store_true",
                        help="small inputs for CI (seconds, not minutes)")
    parser.add_argument("--trace", default=None,
                        help="also run each experiment once with "
                             "tracing on and write the span records "
                             "here as one trace envelope")
    args = parser.parse_args(argv)

    report = {
        "smoke": args.smoke,
        "cpu_count": os.cpu_count(),
        "worker_counts": list(WORKER_COUNTS),
        "experiments": [],
    }
    traces: Optional[List[Dict[str, object]]] = \
        [] if args.trace else None
    for runner in (run_catapult, run_tattoo, run_midas):
        experiment = runner(args.smoke, traces)
        report["experiments"].append(experiment)
        cache = experiment["runs"][str(WORKER_COUNTS[-1])]["cache"]
        print(f"{experiment['name']}: "
              f"speedup x{experiment['speedup']:.2f} "
              f"hit_rate {cache['hit_rate']:.2f} "
              f"rss {experiment['peak_rss_kb']}kB")
    report["experiments"].append(run_kernel_oracle(args.smoke))
    report["experiments"].append(run_select_oracle(args.smoke))
    report["experiments"].append(run_deadline(args.smoke))

    by_name = {exp["name"]: exp for exp in report["experiments"]}
    gates = _gates(by_name, multi_core=(os.cpu_count() or 1) > 1)
    report["gates"] = gates
    failures = [gate["name"] for gate in gates
                if gate["status"] == "failed"]
    for gate in gates:
        print(f"  gate {gate['name']}: {gate['status']} "
              f"({gate['detail']})")

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    if args.trace:
        write_trace(traces, args.trace)
        print(f"wrote {args.trace} ({len(traces)} trace(s))")
    if failures:
        print(f"smoke gates FAILED: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
