"""Perf-layer benchmark: wall time and cache effect at 1 vs 4 workers.

Runs E2/E4/E6-shaped workloads (CATAPULT selection, TATTOO network
extraction, MIDAS maintenance) at ``workers in {1, 4}`` and writes a
JSON report with wall times, match-cache hit rates, and — the part
CI actually gates on — a determinism check that every worker count
produced the identical pattern set.  Speedups are hardware-dependent
(a single-core runner shows none); the determinism booleans are not.

With ``--trace out.json`` each experiment adds one traced run (via
``PipelineConfig(trace=True)``), writes every span record into one
:mod:`repro.obs` trace envelope, and reports the per-stage wall-time
breakdown plus the fraction of the root span its stages account for.

Usage::

    PYTHONPATH=src python benchmarks/bench_runner.py --smoke \
        --out BENCH_perf.json --trace TRACE_perf.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import pipeline
from repro.core.pipeline import PipelineConfig
from repro.datasets import (
    EvolvingRepository,
    NetworkConfig,
    generate_chemical_repository,
    generate_network,
    generate_update_stream,
)
from repro.obs import matching_snapshot, stage_breakdown, write_trace
from repro.patterns import PatternBudget
from repro.perf import clear_match_cache

WORKER_COUNTS = (1, 4)


def _cache_delta(before: Dict[str, float],
                 after: Dict[str, float]) -> Dict[str, float]:
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    total = hits + misses
    return {
        "hits": int(hits),
        "misses": int(misses),
        "hit_rate": hits / total if total else 0.0,
        "vf2_calls": int(after["vf2_calls"] - before["vf2_calls"]),
    }


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _stage_profile(record: Dict[str, object]) -> Dict[str, object]:
    """Per-stage seconds plus the fraction of the root they cover."""
    stages = stage_breakdown(record)
    total = float(record["duration"]) or 0.0
    covered = sum(stages.values())
    return {
        "root": record["name"],
        "total_seconds": total,
        "stage_seconds": stages,
        "stage_coverage": covered / total if total else 0.0,
    }


def run_catapult(smoke: bool,
                 traces: Optional[List[Dict[str, object]]]
                 ) -> Dict[str, object]:
    """E2-shaped: CATAPULT selection over a chemical repository."""
    size = 30 if smoke else 150
    repo = generate_chemical_repository(size, seed=7)
    budget = PatternBudget(5, min_size=4, max_size=8)
    walks = 10 if smoke else 30
    runs = {}
    for workers in WORKER_COUNTS:
        clear_match_cache()
        before = matching_snapshot()
        config = PipelineConfig(budget=budget, seed=1, workers=workers,
                                options={"walks_per_cluster": walks})
        result, wall = _timed(
            lambda: pipeline.run_catapult(repo, config))
        runs[str(workers)] = {
            "wall_seconds": wall,
            "pattern_codes": sorted(result.patterns.codes()),
            "cache": _cache_delta(before, matching_snapshot()),
        }
    experiment = _finish("catapult_e2", {"repository_size": size}, runs)
    if traces is not None:
        clear_match_cache()
        config = PipelineConfig(budget=budget, seed=1, trace=True,
                                options={"walks_per_cluster": walks})
        result = pipeline.run_catapult(repo, config)
        traces.append(result.trace)
        experiment["trace"] = _stage_profile(result.trace)
    return experiment


def run_tattoo(smoke: bool,
               traces: Optional[List[Dict[str, object]]]
               ) -> Dict[str, object]:
    """E4-shaped: TATTOO extraction + selection on one network."""
    nodes = 150 if smoke else 600
    network = generate_network(NetworkConfig(nodes=nodes, cliques=4,
                                             petals=3, flowers=3), seed=2)
    budget = PatternBudget(5, min_size=4, max_size=8)
    runs = {}
    for workers in WORKER_COUNTS:
        clear_match_cache()
        before = matching_snapshot()
        config = PipelineConfig(budget=budget, seed=1, workers=workers)
        result, wall = _timed(
            lambda: pipeline.run_tattoo(network, config))
        runs[str(workers)] = {
            "wall_seconds": wall,
            "pattern_codes": sorted(result.patterns.codes()),
            "cache": _cache_delta(before, matching_snapshot()),
        }
    experiment = _finish("tattoo_e4", {"network_nodes": nodes}, runs)
    if traces is not None:
        clear_match_cache()
        config = PipelineConfig(budget=budget, seed=1, trace=True)
        result = pipeline.run_tattoo(network, config)
        traces.append(result.trace)
        experiment["trace"] = _stage_profile(result.trace)
    return experiment


def run_midas(smoke: bool,
              traces: Optional[List[Dict[str, object]]]
              ) -> Dict[str, object]:
    """E6-shaped: MIDAS maintenance over an update stream.

    The engine-lifetime cache is the point here: every batch rebuilds
    its coverage index, so from batch 2 onward hits should dominate.
    """
    initial = 30 if smoke else 100
    batches = 2 if smoke else 5
    budget = PatternBudget(5, min_size=4, max_size=8)

    def drive(workers: int, trace: bool):
        clear_match_cache()
        repo = generate_chemical_repository(initial, seed=31)
        config = PipelineConfig(budget=budget, seed=2, workers=workers,
                                trace=trace)
        midas = pipeline.run_midas(repo, config)
        evolving = EvolvingRepository([g.copy() for g in repo])
        stream = generate_update_stream(evolving, batches=batches,
                                        batch_size=8, seed=32)
        reports = []
        for batch in stream:
            evolving.apply(batch)
            reports.append(midas.apply_batch(batch))
        return midas, reports

    runs = {}
    for workers in WORKER_COUNTS:
        (midas, _), wall = _timed(lambda: drive(workers, False))
        stats = midas.cache_stats() or {}
        runs[str(workers)] = {
            "wall_seconds": wall,
            "pattern_codes": sorted(midas.patterns.codes()),
            "cache": {
                "hits": int(stats.get("hits", 0)),
                "misses": int(stats.get("misses", 0)),
                "hit_rate": stats.get("hit_rate", 0.0),
            },
        }
    experiment = _finish("midas_e6",
                         {"initial_size": initial, "batches": batches},
                         runs)
    if traces is not None:
        midas, reports = drive(WORKER_COUNTS[0], True)
        records = [midas.trace] + [r.trace for r in reports]
        traces.extend(records)
        experiment["trace"] = [_stage_profile(r) for r in records]
    return experiment


def run_deadline(smoke: bool) -> Dict[str, object]:
    """Anytime-pipeline smoke: CATAPULT under shrinking deadlines.

    Measures a fault-free run, then re-runs with ``deadline_s`` at 50%
    and 25% of that wall time.  The contract under test: a deadline
    never crashes the pipeline and never yields an empty panel — worst
    case is a smaller, ``degraded``-flagged pattern set with a
    per-stage completion report.
    """
    size = 30 if smoke else 150
    repo = generate_chemical_repository(size, seed=7)
    budget = PatternBudget(5, min_size=4, max_size=8)
    walks = 10 if smoke else 30

    clear_match_cache()
    config = PipelineConfig(budget=budget, seed=1,
                            options={"walks_per_cluster": walks})
    full, wall = _timed(lambda: pipeline.run_catapult(repo, config))
    runs: Dict[str, Dict[str, object]] = {
        "full": {
            "wall_seconds": wall,
            "patterns": len(full.patterns),
            "degraded": full.degraded,
        },
    }
    nonempty = len(full.patterns) > 0
    for fraction in (0.5, 0.25):
        clear_match_cache()
        bounded = PipelineConfig(budget=budget, seed=1,
                                 deadline_s=max(wall * fraction, 1e-4),
                                 options={"walks_per_cluster": walks})
        result, bounded_wall = _timed(
            lambda: pipeline.run_catapult(repo, bounded))
        nonempty = nonempty and len(result.patterns) > 0
        runs[f"{int(fraction * 100)}pct"] = {
            "wall_seconds": bounded_wall,
            "deadline_seconds": bounded.deadline_s,
            "patterns": len(result.patterns),
            "degraded": result.degraded,
            "completion": result.stats["completion"],
        }
    return {
        "name": "deadline_anytime",
        "params": {"repository_size": size},
        "runs": runs,
        "nonempty_under_deadline": nonempty,
    }


def _finish(name: str, params: Dict[str, object],
            runs: Dict[str, Dict[str, object]]) -> Dict[str, object]:
    codes = [run["pattern_codes"] for run in runs.values()]
    deterministic = all(c == codes[0] for c in codes)
    serial = runs[str(WORKER_COUNTS[0])]["wall_seconds"]
    parallel = runs[str(WORKER_COUNTS[-1])]["wall_seconds"]
    return {
        "name": name,
        "params": params,
        "runs": runs,
        "deterministic_across_workers": deterministic,
        "speedup": serial / parallel if parallel else 0.0,
    }


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_perf.json",
                        help="output JSON path")
    parser.add_argument("--smoke", action="store_true",
                        help="small inputs for CI (seconds, not minutes)")
    parser.add_argument("--trace", default=None,
                        help="also run each experiment once with "
                             "tracing on and write the span records "
                             "here as one trace envelope")
    args = parser.parse_args(argv)

    report = {
        "smoke": args.smoke,
        "cpu_count": os.cpu_count(),
        "worker_counts": list(WORKER_COUNTS),
        "experiments": [],
    }
    traces: Optional[List[Dict[str, object]]] = \
        [] if args.trace else None
    failures = []
    for runner in (run_catapult, run_tattoo, run_midas):
        experiment = runner(args.smoke, traces)
        report["experiments"].append(experiment)
        flag = "ok" if experiment["deterministic_across_workers"] \
            else "NOT DETERMINISTIC"
        if not experiment["deterministic_across_workers"]:
            failures.append(experiment["name"])
        print(f"{experiment['name']}: "
              f"speedup x{experiment['speedup']:.2f} "
              f"[{flag}]")

    deadline_exp = run_deadline(args.smoke)
    report["experiments"].append(deadline_exp)
    if not deadline_exp["nonempty_under_deadline"]:
        failures.append(deadline_exp["name"])
    print(f"{deadline_exp['name']}: "
          f"{'ok' if deadline_exp['nonempty_under_deadline'] else 'EMPTY RESULT UNDER DEADLINE'}")

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    if args.trace:
        write_trace(traces, args.trace)
        print(f"wrote {args.trace} ({len(traces)} trace(s))")
    if failures:
        print(f"smoke gates FAILED for: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
