"""E3 — usability: data-driven VQI vs manual VQI (small-graph DB).

Tutorial claim (§2.3 "Usability results"): data-driven VQIs need
fewer formulation steps and less formulation time than manual VQIs,
and improve error counts — the central usability result of the
surveyed systems, here measured on simulated users.
"""

from __future__ import annotations

import pytest

from repro.catapult import CatapultConfig, select_canned_patterns
from repro.patterns import PatternBudget, default_basic_patterns
from repro.usability import StudyCondition, run_study

from conftest import print_table


def test_e3_steps_time_errors(benchmark, chem_repo, chem_workload):
    budget = PatternBudget(8, min_size=4, max_size=8)
    selection = select_canned_patterns(chem_repo, budget,
                                       CatapultConfig(seed=1))
    canned = list(selection.patterns)

    conditions = [
        StudyCondition("manual (edge-at-a-time)", []),
        StudyCondition("manual + basic", default_basic_patterns()),
        StudyCondition("data-driven",
                       default_basic_patterns() + canned),
    ]

    study = benchmark.pedantic(
        lambda: run_study(chem_workload, conditions,
                          error_probability=0.03, seed=11),
        rounds=1, iterations=1)

    rows = [(row["condition"], f"{row['mean_steps']:.1f}",
             f"{row['mean_seconds']:.1f}", f"{row['mean_errors']:.2f}",
             f"{row['mean_pattern_uses']:.2f}")
            for row in study.table_rows()]
    print_table("E3: formulation cost per interface (30 queries)",
                ("condition", "steps", "time(s)", "errors", "patterns"),
                rows)
    reduction = study.step_reduction("manual (edge-at-a-time)",
                                     "data-driven")
    speedup = study.speedup("manual (edge-at-a-time)", "data-driven")
    print(f"data-driven vs manual: {reduction:.0%} fewer steps, "
          f"{speedup:.2f}x faster")

    # reproduced claims: direction and rough factor
    assert reduction > 0.25, "data-driven should cut steps substantially"
    assert speedup > 1.15, "data-driven should be faster"
    manual_err = study.by_name(
        "manual (edge-at-a-time)").summary["mean_errors"]
    dd_err = study.by_name("data-driven").summary["mean_errors"]
    assert dd_err <= manual_err, "fewer actions -> fewer slips"


def test_e3_preference_measures(benchmark, chem_repo, chem_workload):
    """The paper's second usability dimension (§2.3): preference
    measures — the data-driven VQI is the preferred experience."""
    from repro.usability import evaluate_preferences, preference_table
    from repro.usability.preference import CRITERIA

    budget = PatternBudget(8, min_size=4, max_size=8)
    selection = select_canned_patterns(chem_repo, budget,
                                       CatapultConfig(seed=1))
    panel = default_basic_patterns() + list(selection.patterns)

    def scenario():
        study = run_study(chem_workload, [
            StudyCondition("manual", []),
            StudyCondition("data-driven", panel),
        ], error_probability=0.03, seed=11)
        baseline = study.by_name("manual").summary["mean_seconds"]
        return {
            "manual": evaluate_preferences(
                study.by_name("manual").outcomes, [], baseline),
            "data-driven": evaluate_preferences(
                study.by_name("data-driven").outcomes, panel, baseline),
        }

    profiles = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table("E3c: modelled preference measures",
                ("condition",) + CRITERIA + ("composite",),
                preference_table(profiles))
    assert (profiles["data-driven"].composite()
            > profiles["manual"].composite())
    for criterion in ("flexibility", "efficiency", "errors",
                      "satisfaction"):
        assert (profiles["data-driven"][criterion]
                >= profiles["manual"][criterion])


def test_e3_learning_curve(benchmark, chem_repo, chem_workload):
    """Learnability/memorability (§2.1): browsing costs shrink with
    practice and mostly survive a break."""
    from repro.usability import simulate_learning

    budget = PatternBudget(8, min_size=4, max_size=8)
    selection = select_canned_patterns(chem_repo, budget,
                                       CatapultConfig(seed=1))
    panel = default_basic_patterns() + list(selection.patterns)

    curve = benchmark.pedantic(
        lambda: simulate_learning(chem_workload[:10], panel,
                                  sessions=5, seed=7),
        rounds=1, iterations=1)
    rows = [(i + 1, f"{seconds:.2f}")
            for i, seconds in enumerate(curve.session_seconds)]
    rows.append(("post-break", f"{curve.post_break_seconds:.2f}"))
    print_table("E3d: learning curve (mean seconds per query)",
                ("session", "time(s)"), rows)
    print(f"learnability {curve.learnability():.2f}, "
          f"memorability {curve.memorability():.2f}")
    assert curve.learnability() > 0.0
    assert curve.memorability() > 0.3


def test_e3_panel_size_tradeoff(benchmark, chem_repo, chem_workload):
    """Bigger panels save steps but add browse time — the reason the
    budget exists (limited display space, §2.3)."""
    rows = []
    outcomes = {}

    def sweep():
        out = {}
        for k in (2, 8, 16):
            budget = PatternBudget(k, min_size=4, max_size=8)
            selection = select_canned_patterns(
                chem_repo, budget, CatapultConfig(seed=1))
            panel = default_basic_patterns() + list(selection.patterns)
            study = run_study(chem_workload,
                              [StudyCondition(f"b={k}", panel)], seed=3)
            out[k] = study.table_rows()[0]
        return out

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for k, row in outcomes.items():
        rows.append((k, f"{row['mean_steps']:.1f}",
                     f"{row['mean_seconds']:.1f}"))
    print_table("E3b: pattern budget vs formulation cost",
                ("budget", "steps", "time(s)"), rows)
    # steps never increase with a larger panel
    assert outcomes[16]["mean_steps"] <= outcomes[2]["mean_steps"] + 0.5
