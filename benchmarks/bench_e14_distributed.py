"""E14 (extension) — distributed selection for massive networks.

The tutorial's second open problem (§2.5): massive networks demand a
distributed framework with construction algorithms on top.  This
bench profiles the partition-extract-merge design: simulated parallel
makespan vs the single-machine pipeline, scaling with worker count,
and the quality cost of worker-local shortlists.
"""

from __future__ import annotations

import time

import pytest

from repro.datasets import NetworkConfig, generate_network
from repro.patterns import PatternBudget, pattern_set_score
from repro.tattoo import (
    TattooConfig,
    select_network_patterns,
    select_patterns_distributed,
)

from conftest import print_table


def test_e14_makespan_vs_single_machine(benchmark):
    def scenario():
        network = generate_network(
            NetworkConfig(nodes=1500, cliques=30, petals=20,
                          flowers=12), seed=47)
        budget = PatternBudget(8, min_size=4, max_size=8)
        start = time.perf_counter()
        single = select_network_patterns(network, budget,
                                         TattooConfig(seed=1))
        single_time = time.perf_counter() - start
        rows = []
        results = {}
        for parts in (2, 4, 8):
            result = select_patterns_distributed(
                network, budget, parts=parts,
                config=TattooConfig(seed=1))
            results[parts] = result
            rows.append((parts, f"{result.makespan():.2f}",
                         f"{result.sequential_work():.2f}",
                         result.candidate_unique,
                         f"{pattern_set_score(list(result.patterns), [network]):.3f}"))
        return network, single, single_time, rows, results

    network, single, single_time, rows, results = benchmark.pedantic(
        scenario, rounds=1, iterations=1)
    single_quality = pattern_set_score(list(single.patterns), [network])
    print_table(
        f"E14: distributed selection on a {network.order()}-node "
        f"network (single machine: {single_time:.2f}s, "
        f"quality {single_quality:.3f})",
        ("workers", "makespan(s)", "total work(s)", "pool size",
         "quality"),
        rows)

    # reproduced claims: parallelism shrinks the makespan below the
    # single-machine time at some worker count, at near-equal quality
    best_makespan = min(r.makespan() for r in results.values())
    assert best_makespan < single_time * 1.1
    for result in results.values():
        quality = pattern_set_score(list(result.patterns), [network])
        assert quality >= single_quality - 0.1


def test_e14_worker_balance(benchmark):
    def scenario():
        network = generate_network(NetworkConfig(nodes=800), seed=48)
        budget = PatternBudget(6, min_size=4, max_size=8)
        return select_patterns_distributed(network, budget, parts=4,
                                           config=TattooConfig(seed=1))

    result = benchmark.pedantic(scenario, rounds=1, iterations=1)
    rows = [(w.worker, w.nodes, w.halo_nodes, w.candidates,
             f"{w.duration:.2f}") for w in result.workers]
    print_table("E14b: per-worker profile (4 workers, 800 nodes)",
                ("worker", "nodes", "halo", "shortlist", "time(s)"),
                rows)
    durations = [w.duration for w in result.workers]
    assert max(durations) <= 8 * max(min(durations), 0.05), \
        "partitioning should not starve or overload workers wildly"
