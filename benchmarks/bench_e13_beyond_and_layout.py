"""E13 (extension) — aesthetics-aware layout + time-series sketches.

Covers the remaining §2.5 future-work directions:

* **aesthetics-aware layout optimization** — simulated annealing over
  positions reduces the aesthetics objective (crossings, congestion,
  angles) beyond the spring layout, and complexity-ordering a Pattern
  Panel reduces its scan cost;
* **beyond graphs** — data-driven canned *sketches* for time series:
  the mined panel covers the collection and planted shapes are
  retrieved by sketch matching.
"""

from __future__ import annotations

import random

import pytest

from repro.graph import gnm_random_graph
from repro.patterns import PatternBudget
from repro.catapult import CatapultConfig, select_canned_patterns
from repro.timeseries import (
    SketchBudget,
    SketchVQI,
    generate_series_collection,
    match_sketch,
    sliding_sax_words,
)
from repro.vqi import (
    arrange_panel,
    circular_layout,
    edge_crossings,
    layout_cost,
    optimize_layout,
    panel_scan_cost,
    spring_layout,
)

from conftest import print_table


def test_e13_layout_optimization(benchmark):
    def sweep():
        rows = []
        improvements = 0
        for seed in range(4):
            g = gnm_random_graph(10, 16, random.Random(seed))
            naive = circular_layout(g)
            spring = spring_layout(g, seed=seed)
            optimized = optimize_layout(g, seed=seed, iterations=350,
                                        initial=spring)
            costs = (layout_cost(g, naive), layout_cost(g, spring),
                     layout_cost(g, optimized))
            if costs[2] <= costs[1]:
                improvements += 1
            rows.append((seed,
                         edge_crossings(g, naive),
                         edge_crossings(g, spring),
                         edge_crossings(g, optimized),
                         f"{costs[0]:.1f}", f"{costs[1]:.1f}",
                         f"{costs[2]:.1f}"))
        return rows, improvements

    rows, improvements = benchmark.pedantic(sweep, rounds=1,
                                            iterations=1)
    print_table("E13: layout pipeline — circular -> spring -> annealed",
                ("seed", "x(circle)", "x(spring)", "x(annealed)",
                 "cost(circle)", "cost(spring)", "cost(annealed)"),
                rows)
    assert improvements == 4, "annealing never worsens the spring seed"


def test_e13_panel_arrangement(benchmark, small_chem_repo):
    budget = PatternBudget(8, min_size=4, max_size=8)
    selection = select_canned_patterns(small_chem_repo, budget,
                                       CatapultConfig(seed=1))
    panel = list(selection.patterns)

    def measure():
        shuffled = list(panel)
        random.Random(3).shuffle(shuffled)
        worst = list(reversed(arrange_panel(shuffled)))
        return (panel_scan_cost(worst),
                panel_scan_cost(shuffled),
                panel_scan_cost(arrange_panel(shuffled)))

    worst, shuffled, arranged = benchmark.pedantic(measure, rounds=1,
                                                   iterations=1)
    print_table("E13b: Pattern Panel scan cost by ordering",
                ("complex-first", "random order", "complexity-ramped"),
                [(f"{worst:.3f}", f"{shuffled:.3f}",
                  f"{arranged:.3f}")])
    # the complexity ramp beats both alternatives (which may order
    # either way relative to each other: reversed order minimises the
    # jump term while maximising the positional term)
    assert arranged <= shuffled + 1e-9
    assert arranged <= worst + 1e-9


def test_e13_sketch_panel_quality(benchmark):
    def scenario():
        collection = generate_series_collection(50, seed=37)
        vqi = SketchVQI(collection, SketchBudget(5, window=40))
        # coverage: series containing at least one panel shape
        panel_words = {s.word for s in vqi.panel}
        covered = 0
        for series in collection:
            words = {w for _, w in sliding_sax_words(series, 40,
                                                     step=5)}
            if words & panel_words:
                covered += 1
        # retrieval: every canned sketch finds its source near-exactly
        perfect = 0
        for sketch in vqi.panel:
            matches = match_sketch(sketch.values, collection, top_k=1)
            if matches and matches[0].distance < 0.05:
                perfect += 1
        return vqi, covered / len(collection), perfect

    vqi, coverage, perfect = benchmark.pedantic(scenario, rounds=1,
                                                iterations=1)
    rows = [(s.word, s.support, f"{s.complexity:.2f}")
            for s in vqi.panel]
    print_table("E13c: data-driven sketch panel (50-series collection)",
                ("SAX word", "support", "complexity"), rows)
    print(f"collection coverage: {coverage:.0%}; "
          f"sketches retrieving their source exactly: "
          f"{perfect}/{len(vqi.panel)}")
    assert coverage > 0.6
    assert perfect == len(vqi.panel)
