"""Scale-tier benchmark ladder for greedy pattern selection.

The perf-smoke benchmark (``bench_runner.py``) answers "is the
pipeline still correct and fast on workstation-size inputs"; this
ladder answers "does selection keep its asymptotics as repositories
grow".  Tiers step the candidate-selection problem from 1k to 50k
repository graphs and from 10k to 100k-node networks, with the
covered-edge maps installed through
:meth:`repro.patterns.index.CoverageIndex.seed_cover` — running the
subgraph matcher for every (pattern, graph) pair at these sizes would
benchmark the matcher, not the sweep.  Covers are seeded, overlapping
(many candidates share graphs and edges, so marginal gains genuinely
shrink round over round), and deterministic.

Per tier the ladder runs the lazy (CELF) sweep and gates:

* **wall / RSS budgets** — the lazy sweep must finish inside the
  tier's wall budget and the process high-water RSS must stay under
  the tier cap;
* **determinism** — workers 1 vs 4 produce byte-identical codes and
  scores;
* **byte-identity** (oracle tiers) — ``REPRO_SELECT=naive`` over the
  same instance produces identical codes, bitwise-equal scores, and
  identical trajectories;
* **evaluations reduction** — at the 10k-graph tier the lazy sweep
  performs at least 10x fewer exact evaluations than the naive
  oracle (3x at the 1k tier, where there is less to save).

The naive oracle is quadratic, so the 50k-graph and 100k-node tiers
run lazy-only (budget + determinism gates); the asymptotic win is
extrapolated from the oracle tiers, which is exactly what the
byte-identity gate makes sound.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py --out BENCH_scale.json
    PYTHONPATH=src python benchmarks/bench_scale.py --smoke   # CI subset
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import random
import resource
import sys
import time
from typing import Dict, List, Optional, Sequence

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.datasets import NetworkConfig, generate_network
from repro.graph import path_graph
from repro.patterns import (
    CoverageIndex,
    Pattern,
    PatternBudget,
    SetScorer,
    greedy_select,
)
from repro.patterns.selection import SELECT_ENV

#: Candidates per tier and the panel budget the sweep fills.
N_CANDIDATES = 256
BUDGET = PatternBudget(12, min_size=3, max_size=8)

#: Worker counts for the determinism gate.
WORKER_COUNTS = (1, 4)

#: tier name -> (kind, size, oracle?, wall budget s, RSS budget MB).
#: Budgets are deliberately loose (~5x a dev-box run): the gate
#: catches complexity regressions, not scheduler jitter.
TIERS = {
    "repo-1k": ("repo", 1_000, True, 30.0, 2048),
    "repo-10k": ("repo", 10_000, True, 120.0, 3072),
    "repo-50k": ("repo", 50_000, False, 300.0, 6144),
    "net-10k": ("network", 10_000, True, 120.0, 3072),
    "net-100k": ("network", 100_000, False, 300.0, 6144),
}

#: The subset exercised by ``--smoke`` (CI): one oracle tier of each
#: kind, small enough for a shared runner.
SMOKE_TIERS = ("repo-1k", "net-10k")

#: Minimum naive/lazy exact-evaluation ratio per oracle tier.
REDUCTION_FLOORS = {"repo-1k": 3.0, "repo-10k": 10.0, "net-10k": 3.0}


def _peak_rss_kb() -> int:
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _candidates(seed: int) -> List[Pattern]:
    """Distinct 4-node candidates (one label class per candidate)."""
    return [Pattern(path_graph(4, label=f"C{i:03d}"))
            for i in range(N_CANDIDATES)]


def _edge_pool(graph) -> List[frozenset]:
    """Every non-empty subset of a template graph's edges, shared so
    seeded covers reuse a handful of frozensets instead of allocating
    one per (candidate, graph) entry."""
    edges = list(graph.edges())
    pool = []
    for r in range(1, len(edges) + 1):
        for combo in itertools.combinations(edges, r):
            pool.append(frozenset(combo))
    return pool


def build_repo_instance(n_graphs: int, seed: int):
    """A repository tier: ``n_graphs`` copies of a tiny template with
    seeded, overlapping candidate covers.

    Cover sizes are Zipfian (candidate ``i`` covers ``~n/16 /
    (1+i)^0.7`` graphs): real candidate pools are heavy-tailed — a
    few motifs cover much of the repository, a long tail covers
    little — and that heterogeneity is exactly the regime lazy
    evaluation exploits.  Covers are drawn from a shared prefix of
    the graph list so the big candidates overlap and marginal gains
    genuinely shrink round over round.
    """
    template = path_graph(4, label="T")
    index = CoverageIndex([template] * n_graphs)
    candidates = _candidates(seed)
    pool = _edge_pool(template)
    shared = max(64, n_graphs // 4)
    for i, pattern in enumerate(candidates):
        rng = random.Random(seed * 1_000_003 + i)
        per_candidate = max(4, int(n_graphs / 16 / (1 + i) ** 0.7))
        cover = {idx: pool[rng.randrange(len(pool))]
                 for idx in rng.sample(range(shared), per_candidate)}
        index.seed_cover(pattern, cover)
    return index, candidates


def build_network_instance(n_nodes: int, seed: int):
    """A network tier: one large graph, candidate covers sampled from
    a shared slice of its edges so gains overlap."""
    config = NetworkConfig(nodes=n_nodes, cliques=8, petals=4,
                           flowers=4)
    network = generate_network(config, seed=seed)
    index = CoverageIndex([network])
    candidates = _candidates(seed)
    edges = list(itertools.islice(network.edges(), 8_192))
    for i, pattern in enumerate(candidates):
        rng = random.Random(seed * 1_000_003 + i)
        per_candidate = max(16, int(4_096 / (1 + i) ** 0.8))
        cover = {0: frozenset(rng.sample(edges, per_candidate))}
        index.seed_cover(pattern, cover)
    return index, candidates


def _sweep(mode: str, index: CoverageIndex,
           candidates: Sequence[Pattern],
           workers: Optional[int] = None) -> Dict[str, object]:
    """One timed greedy sweep in ``mode`` against a fresh scorer."""
    previous = os.environ.get(SELECT_ENV)
    os.environ[SELECT_ENV] = mode
    try:
        scorer = SetScorer(index)
        start = time.perf_counter()
        selection = greedy_select(candidates, BUDGET, scorer,
                                  workers=workers)
        wall = time.perf_counter() - start
    finally:
        if previous is None:
            os.environ.pop(SELECT_ENV, None)
        else:
            os.environ[SELECT_ENV] = previous
    return {
        "mode": mode,
        "workers": workers if workers is not None else 1,
        "wall_seconds": round(wall, 4),
        "evaluations": selection.evaluations,
        "selected": len(selection.patterns),
        "score": selection.score,
        "trajectory": selection.trajectory,
        "pattern_codes": [p.code for p in selection.patterns],
    }


def run_tier(name: str, seed: int = 11) -> Dict[str, object]:
    kind, size, oracle, wall_budget, rss_budget_mb = TIERS[name]
    build = (build_repo_instance if kind == "repo"
             else build_network_instance)
    start = time.perf_counter()
    index, candidates = build(size, seed)
    build_wall = time.perf_counter() - start

    runs = {}
    for workers in WORKER_COUNTS:
        runs[f"lazy-w{workers}"] = _sweep("lazy", index, candidates,
                                          workers=workers)
    if oracle:
        runs["naive"] = _sweep("naive", index, candidates)

    lazy = runs[f"lazy-w{WORKER_COUNTS[0]}"]
    tier = {
        "name": name,
        "kind": kind,
        "size": size,
        "candidates": len(candidates),
        "budget": BUDGET.max_patterns,
        "seed": seed,
        "build_wall_seconds": round(build_wall, 4),
        "wall_budget_seconds": wall_budget,
        "rss_budget_mb": rss_budget_mb,
        "peak_rss_kb": _peak_rss_kb(),
        "runs": runs,
    }
    if oracle:
        naive = runs["naive"]
        tier["byte_identical"] = (
            lazy["pattern_codes"] == naive["pattern_codes"]
            and lazy["score"] == naive["score"]
            and lazy["trajectory"] == naive["trajectory"])
        tier["evaluations_reduction"] = (
            naive["evaluations"] / lazy["evaluations"]
            if lazy["evaluations"] else 0.0)
    parallel = runs[f"lazy-w{WORKER_COUNTS[-1]}"]
    tier["deterministic_across_workers"] = (
        lazy["pattern_codes"] == parallel["pattern_codes"]
        and lazy["score"] == parallel["score"])
    return tier


def _gates(tiers: Dict[str, Dict[str, object]]) -> List[Dict[str, object]]:
    gates: List[Dict[str, object]] = []

    def gate(name: str, passed: bool, detail: str) -> None:
        gates.append({"name": name,
                      "status": "passed" if passed else "failed",
                      "detail": detail})

    for name, tier in tiers.items():
        lazy = tier["runs"][f"lazy-w{WORKER_COUNTS[0]}"]
        gate(f"{name}.wall_budget",
             lazy["wall_seconds"] <= tier["wall_budget_seconds"],
             f"lazy sweep {lazy['wall_seconds']}s <= "
             f"{tier['wall_budget_seconds']}s")
        gate(f"{name}.rss_budget",
             tier["peak_rss_kb"] <= tier["rss_budget_mb"] * 1024,
             f"peak {tier['peak_rss_kb']} kB <= "
             f"{tier['rss_budget_mb']} MB")
        gate(f"{name}.determinism",
             bool(tier["deterministic_across_workers"]),
             f"workers {WORKER_COUNTS[0]} vs {WORKER_COUNTS[-1]} "
             "codes+score byte-identical")
        if "byte_identical" in tier:
            gate(f"{name}.byte_identity", bool(tier["byte_identical"]),
                 "lazy == naive codes, scores, trajectories")
            floor = REDUCTION_FLOORS.get(name, 1.0)
            gate(f"{name}.evaluations_reduction",
                 tier["evaluations_reduction"] >= floor,
                 f"{tier['evaluations_reduction']:.1f}x >= {floor}x "
                 f"(naive {tier['runs']['naive']['evaluations']} / "
                 f"lazy {lazy['evaluations']})")
    return gates


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="selection scale-tier benchmark ladder")
    parser.add_argument("--smoke", action="store_true",
                        help=f"run the CI subset {SMOKE_TIERS}")
    parser.add_argument("--tiers",
                        help="comma-separated tier names "
                             f"(default: all of {tuple(TIERS)})")
    parser.add_argument("--out", default="BENCH_scale.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    if args.tiers:
        names = [t.strip() for t in args.tiers.split(",") if t.strip()]
        unknown = [t for t in names if t not in TIERS]
        if unknown:
            parser.error(f"unknown tiers {unknown}; "
                         f"expected names from {tuple(TIERS)}")
    elif args.smoke:
        names = list(SMOKE_TIERS)
    else:
        names = list(TIERS)

    tiers: Dict[str, Dict[str, object]] = {}
    for name in names:
        print(f"[bench_scale] {name} ...", flush=True)
        tiers[name] = run_tier(name)
        lazy = tiers[name]["runs"][f"lazy-w{WORKER_COUNTS[0]}"]
        print(f"[bench_scale] {name}: lazy {lazy['wall_seconds']}s, "
              f"{lazy['evaluations']} evaluations", flush=True)

    gates = _gates(tiers)
    ok = all(g["status"] == "passed" for g in gates)
    report = {
        "benchmark": "scale-ladder",
        "smoke": bool(args.smoke),
        "tiers": tiers,
        "gates": gates,
        "ok": ok,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for g in gates:
        print(f"[bench_scale] gate {g['name']}: {g['status']} "
              f"({g['detail']})")
    print(f"[bench_scale] {'OK' if ok else 'FAILED'} -> {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
