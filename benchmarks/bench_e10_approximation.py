"""E10 — greedy selection vs the exhaustive optimum.

Tutorial claim (§2.3): TATTOO's selection guarantees a
1/e-approximation of the optimal pattern-set score.  On instances
small enough to solve exactly, greedy should sit far above that
bound (usually within a few percent of optimal).
"""

from __future__ import annotations

import random

import pytest

from repro.datasets import NetworkConfig, generate_network
from repro.patterns import (
    CoverageIndex,
    PatternBudget,
    SetScorer,
    exhaustive_select,
    greedy_select,
)
from repro.tattoo import TattooConfig, extract_candidates

from conftest import print_table

E_INVERSE = 0.36787944117144233


def small_instance(seed):
    network = generate_network(
        NetworkConfig(nodes=120, cliques=4, petals=3, flowers=2),
        seed=seed)
    budget = PatternBudget(3, min_size=4, max_size=7)
    by_class = extract_candidates(network, budget,
                                  TattooConfig(seed=seed,
                                               samples_scale=0.2))
    candidates = []
    seen = set()
    for patterns in by_class.values():
        for pattern in patterns:
            if pattern.code not in seen:
                seen.add(pattern.code)
                candidates.append(pattern)
    rng = random.Random(seed)
    if len(candidates) > 12:
        candidates = rng.sample(candidates, 12)
    scorer = SetScorer(CoverageIndex([network], max_embeddings=20,
                                     size_utility=True))
    return candidates, budget, scorer


def test_e10_greedy_vs_optimal(benchmark):
    def sweep():
        out = []
        for seed in (51, 52, 53, 54):
            candidates, budget, scorer = small_instance(seed)
            greedy = greedy_select(candidates, budget, scorer)
            exact = exhaustive_select(candidates, budget, scorer)
            best_greedy = max(greedy.trajectory) if greedy.trajectory \
                else greedy.score
            out.append((seed, len(candidates), best_greedy,
                        exact.score))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for seed, n_candidates, greedy_score, optimal in results:
        ratio = greedy_score / optimal if optimal > 0 else 1.0
        rows.append((seed, n_candidates, f"{greedy_score:.4f}",
                     f"{optimal:.4f}", f"{ratio:.3f}"))
    print_table("E10: greedy vs exhaustive optimum (small instances)",
                ("seed", "candidates", "greedy", "optimal", "ratio"),
                rows)
    for seed, _, greedy_score, optimal in results:
        ratio = greedy_score / optimal if optimal > 0 else 1.0
        assert ratio >= E_INVERSE - 1e-9, \
            f"seed {seed} violates the 1/e bound"
    mean_ratio = sum(g / o for _, _, g, o in results) / len(results)
    print(f"mean greedy/optimal ratio: {mean_ratio:.3f} "
          f"(bound: {E_INVERSE:.3f})")
    assert mean_ratio > 0.85, "greedy is typically near-optimal"
