"""E11 (extension) — continuous maintenance for large networks.

The tutorial's open problem #1 (§2.5): maintain a network VQI under
*continuous* evolution.  Our implementation maintains edge supports
incrementally and refreshes patterns from the changed region only.
This bench measures (a) incremental support bookkeeping vs full
recomputation, and (b) localized maintenance vs full TATTOO re-runs.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.datasets import NetworkConfig, generate_network
from repro.patterns import PatternBudget
from repro.tattoo import (
    NetworkMaintainer,
    NetworkMaintenanceConfig,
    NetworkUpdate,
    TattooConfig,
    select_network_patterns,
)
from repro.truss import edge_support

from conftest import print_table


def burst(maintainer, rng, new_nodes=3, new_edges=10):
    nodes = sorted(maintainer.network.nodes())
    next_id = max(nodes) + 1
    added_nodes = [(next_id + i, "person") for i in range(new_nodes)]
    added_edges = [(next_id + i, rng.choice(nodes), "")
                   for i in range(new_nodes)]
    guard = 0
    while len(added_edges) < new_nodes + new_edges and guard < 200:
        guard += 1
        u, v = rng.sample(nodes, 2)
        if (not maintainer.network.has_edge(u, v)
                and (u, v, "") not in added_edges
                and (v, u, "") not in added_edges):
            added_edges.append((u, v, ""))
    return NetworkUpdate(added_nodes=added_nodes,
                         added_edges=added_edges)


def test_e11_incremental_support_speed(benchmark):
    network = generate_network(NetworkConfig(nodes=800), seed=23)
    budget = PatternBudget(5, min_size=4, max_size=8)
    maintainer = NetworkMaintainer(
        network, budget, NetworkMaintenanceConfig(drift_threshold=1.0))
    rng = random.Random(1)
    updates = [burst(maintainer, rng) for _ in range(1)]

    def apply_and_verify():
        start = time.perf_counter()
        maintainer.apply_update(updates[0])
        incremental = time.perf_counter() - start
        start = time.perf_counter()
        oracle = edge_support(maintainer.network)
        full = time.perf_counter() - start
        return incremental, full, oracle

    incremental, full, oracle = benchmark.pedantic(apply_and_verify,
                                                   rounds=1,
                                                   iterations=1)
    print_table("E11: incremental support vs full recomputation "
                "(one 13-edge burst on an 800-node network)",
                ("incremental (s)", "full recompute (s)", "correct"),
                [(f"{incremental:.4f}", f"{full:.4f}",
                  maintainer.support_snapshot() == oracle)])
    assert maintainer.support_snapshot() == oracle
    assert incremental < full, \
        "incremental bookkeeping must beat recomputation"


def test_e11_localized_vs_full_rerun(benchmark):
    def scenario():
        network = generate_network(NetworkConfig(nodes=600), seed=24)
        budget = PatternBudget(6, min_size=4, max_size=8)
        maintainer = NetworkMaintainer(
            network, budget,
            NetworkMaintenanceConfig(drift_threshold=0.02))
        rng = random.Random(2)
        rows = []
        totals = [0.0, 0.0]
        for i in range(4):
            update = burst(maintainer, rng, new_nodes=4, new_edges=14)
            report = maintainer.apply_update(update)
            start = time.perf_counter()
            select_network_patterns(maintainer.network, budget,
                                    TattooConfig(seed=1))
            rerun = time.perf_counter() - start
            totals[0] += report.duration
            totals[1] += rerun
            rows.append((report.update_index, report.kind,
                         f"{report.drift:.4f}",
                         f"{report.duration:.2f}", f"{rerun:.2f}",
                         f"{report.score_after:.3f}"))
        return rows, totals

    rows, totals = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table("E11b: localized maintenance vs full TATTOO re-run",
                ("burst", "kind", "drift", "maintain(s)", "rerun(s)",
                 "score"),
                rows)
    print(f"totals: maintain {totals[0]:.2f}s, rerun {totals[1]:.2f}s, "
          f"speedup {totals[1] / max(totals[0], 1e-9):.1f}x")
    assert totals[0] < totals[1]
