"""Matching-kernel micro-benchmark: pruning power, measured not asserted.

Runs the same embedding enumerations through the legacy kernel
(label-only pools, first-neighbor anchoring) and the indexed kernel
(signature-filtered candidate pools, smallest-anchor intersection) and
records the kernel counters for each; runs truss decomposition through
the bucket-queue peeler and the legacy per-level-rescan peeler and
checks they agree edge-for-edge.  The JSON report gates on:

* byte-identical embedding sets across kernels on every case;
* >= 3x reduction in ``feasibility_checks`` (indexed vs legacy);
* identical trussness maps from both peelers;
* with ``--baseline``, the indexed kernel's ``feasibility_checks``
  not regressing above the recorded baseline (the committed
  ``BENCH_kernel.json``) — the suite is deterministic, so any
  increase is a real pruning regression, not noise.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py --smoke \
        --out BENCH_kernel.json [--baseline BENCH_kernel.json]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.datasets import (
    NetworkConfig,
    generate_chemical_repository,
    generate_network,
)
from repro.graph import Graph, gnm_random_graph
from repro.graph.generators import planted_partition_graph
from repro.graph.operations import induced_subgraph, sample_connected_node_set
from repro.matching.isomorphism import (
    WILDCARD,
    SubgraphMatcher,
    kernel_stats,
    reset_kernel_stats,
)
from repro.truss import truss_decomposition, truss_decomposition_rescan

KERNELS = ("legacy", "indexed")
MIN_REDUCTION = 3.0
COUNTER_KEYS = ("feasibility_checks", "recursive_calls",
                "candidates_pruned")

MatchCase = Tuple[str, Graph, Graph, bool]


def _extract_pattern(target: Graph, size: int,
                     rng: random.Random) -> Optional[Graph]:
    """Connected induced subgraph of ``target``, renumbered 0..n-1."""
    if target.order() < size:
        return None
    nodes = sample_connected_node_set(target, size, rng)
    if nodes is None:
        return None
    return induced_subgraph(target, nodes).normalized()


def build_matching_cases(smoke: bool) -> List[MatchCase]:
    """(name, pattern, target, induced) enumeration cases.

    Mixes guaranteed-hit cases (patterns cut out of their own target),
    cross-target cases, induced semantics, and wildcard node/edge
    labels, over chemical molecules, a synthetic network, and random
    labeled graphs.
    """
    cases: List[MatchCase] = []
    rng = random.Random(17)

    repo = generate_chemical_repository(8 if smoke else 24, seed=11)
    for i, target in enumerate(repo[:3 if smoke else 10]):
        pattern = _extract_pattern(target, min(5, target.order()), rng)
        if pattern is not None:
            cases.append((f"chem{i}", pattern, target, False))

    network = generate_network(
        NetworkConfig(nodes=100 if smoke else 350, cliques=3,
                      petals=2, flowers=2), seed=5)
    for j in range(2 if smoke else 6):
        pattern = _extract_pattern(network, 4, rng)
        if pattern is not None:
            cases.append((f"net{j}", pattern, network, False))

    for s in range(3 if smoke else 8):
        r = random.Random(100 + s)
        target = gnm_random_graph(18 if smoke else 30,
                                  40 if smoke else 75, r,
                                  labels=["A", "B", "C"])
        pattern = gnm_random_graph(4, 4, r, labels=["A", "B", "C"])
        cases.append((f"rand{s}", pattern, target, s % 2 == 1))
        if s == 0:
            # wildcard variant: one wildcard node, one wildcard edge
            wild = pattern.copy()
            wild.set_node_label(next(iter(wild.nodes())), WILDCARD)
            first_edge = next(iter(wild.edges()))
            wild.set_edge_label(*first_edge, label=WILDCARD)
            cases.append((f"wild{s}", wild, target, False))
    return cases


def embedding_digest(matcher: SubgraphMatcher) -> Tuple[int, str]:
    """(count, canonical JSON) of the full embedding set."""
    embeddings = sorted(
        tuple(sorted(m.items()))
        for m in matcher.iter_embeddings(max_results=None))
    return len(embeddings), json.dumps(embeddings,
                                       separators=(",", ":"))


def run_matching(cases: List[MatchCase]) -> Dict[str, object]:
    totals = {kernel: {key: 0 for key in COUNTER_KEYS} | {"wall_seconds": 0.0}
              for kernel in KERNELS}
    case_rows = []
    all_identical = True
    for name, pattern, target, induced in cases:
        row: Dict[str, object] = {
            "name": name,
            "induced": induced,
            "pattern_nodes": pattern.order(),
            "target_nodes": target.order(),
        }
        digests = {}
        for kernel in KERNELS:
            reset_kernel_stats()
            matcher = SubgraphMatcher(pattern, target, induced=induced,
                                      kernel=kernel)
            start = time.perf_counter()
            count, digest = embedding_digest(matcher)
            wall = time.perf_counter() - start
            counters = kernel_stats()
            digests[kernel] = digest
            row[kernel] = {key: counters[key] for key in COUNTER_KEYS}
            row[kernel]["wall_seconds"] = wall
            row["embeddings"] = count
            for key in COUNTER_KEYS:
                totals[kernel][key] += counters[key]
            totals[kernel]["wall_seconds"] += wall
        identical = digests["legacy"] == digests["indexed"]
        row["embeddings_identical"] = identical
        all_identical = all_identical and identical
        case_rows.append(row)
    legacy_checks = totals["legacy"]["feasibility_checks"]
    indexed_checks = totals["indexed"]["feasibility_checks"]
    reduction = (legacy_checks / indexed_checks
                 if indexed_checks else float(legacy_checks))
    return {
        "cases": case_rows,
        "totals": totals,
        "embeddings_identical": all_identical,
        "reduction_feasibility_checks": reduction,
    }


def build_truss_graphs(smoke: bool) -> List[Tuple[str, Graph]]:
    graphs: List[Tuple[str, Graph]] = []
    graphs.append(("network", generate_network(
        NetworkConfig(nodes=150 if smoke else 600, cliques=4,
                      petals=3, flowers=3), seed=2)))
    graphs.append(("planted", planted_partition_graph(
        3 if smoke else 5, 12 if smoke else 25, 0.6, 0.03,
        random.Random(3))))
    graphs.append(("random", gnm_random_graph(
        40 if smoke else 120, 120 if smoke else 480, random.Random(9))))
    return graphs


def run_truss(graphs: List[Tuple[str, Graph]]) -> Dict[str, object]:
    rows = []
    all_agree = True
    for name, graph in graphs:
        start = time.perf_counter()
        bucketed = truss_decomposition(graph)
        wall_bucket = time.perf_counter() - start
        start = time.perf_counter()
        rescanned = truss_decomposition_rescan(graph)
        wall_rescan = time.perf_counter() - start
        agrees = bucketed == rescanned
        all_agree = all_agree and agrees
        rows.append({
            "name": name,
            "edges": graph.size(),
            "max_trussness": max(bucketed.values()) if bucketed else 0,
            "wall_seconds_bucket": wall_bucket,
            "wall_seconds_rescan": wall_rescan,
            "agrees_with_rescan": agrees,
        })
    return {"cases": rows, "agrees": all_agree}


def check_baseline(report: Dict[str, object],
                   baseline_path: str) -> List[str]:
    """Failures if indexed feasibility_checks regressed above baseline."""
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    recorded = (baseline.get("matching", {}).get("totals", {})
                .get("indexed", {}).get("feasibility_checks"))
    if recorded is None:
        return [f"baseline {baseline_path} lacks indexed "
                "feasibility_checks"]
    current = (report["matching"]["totals"]["indexed"]
               ["feasibility_checks"])
    if current > recorded:
        return [f"indexed feasibility_checks regressed: {current} > "
                f"baseline {recorded}"]
    return []


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_kernel.json",
                        help="output JSON path")
    parser.add_argument("--smoke", action="store_true",
                        help="small inputs for CI (seconds, not minutes)")
    parser.add_argument("--baseline", default=None,
                        help="recorded BENCH_kernel.json to gate "
                             "feasibility_checks against")
    args = parser.parse_args(argv)

    matching = run_matching(build_matching_cases(args.smoke))
    truss = run_truss(build_truss_graphs(args.smoke))
    report = {
        "smoke": args.smoke,
        "min_reduction_gate": MIN_REDUCTION,
        "matching": matching,
        "truss": truss,
    }

    failures: List[str] = []
    if not matching["embeddings_identical"]:
        failures.append("embedding sets differ across kernels")
    if matching["reduction_feasibility_checks"] < MIN_REDUCTION:
        failures.append(
            f"feasibility_checks reduction "
            f"x{matching['reduction_feasibility_checks']:.2f} "
            f"below the x{MIN_REDUCTION:.0f} gate")
    if not truss["agrees"]:
        failures.append("bucket-queue truss peeler disagrees with the "
                        "rescan peeler")
    if args.baseline:
        failures.extend(check_baseline(report, args.baseline))

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    totals = matching["totals"]
    print(f"matching: {len(matching['cases'])} cases, "
          f"feasibility_checks legacy={totals['legacy']['feasibility_checks']} "
          f"indexed={totals['indexed']['feasibility_checks']} "
          f"(x{matching['reduction_feasibility_checks']:.2f} reduction), "
          f"embeddings identical: {matching['embeddings_identical']}")
    print(f"truss: {len(truss['cases'])} graphs, "
          f"bucket==rescan: {truss['agrees']}")
    print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
