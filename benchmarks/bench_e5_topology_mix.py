"""E5 — topology classes: candidates match real query-log structure.

Tutorial claim (§2.3): TATTOO sidesteps missing query logs by
extracting candidates in the topology classes real SPARQL logs
exhibit (chains/stars/trees dominate; triangles, cycles, petals,
flowers form the tail), with triangle-like classes coming from the
truss-infested region.
"""

from __future__ import annotations

import pytest

from repro.datasets import generate_network_workload
from repro.patterns import (
    QUERY_LOG_TOPOLOGY_MIX,
    PatternBudget,
    TopologyClass,
    classify_topology,
    non_triangle_classes,
    triangle_like_classes,
)
from repro.tattoo import TattooConfig, extract_candidates
from repro.truss import split_by_truss, truss_statistics

from conftest import print_table


def test_e5_truss_split_statistics(benchmark, medium_network):
    stats = benchmark.pedantic(
        lambda: truss_statistics(medium_network), rounds=1, iterations=1)
    g_t, g_o = split_by_truss(medium_network)
    print_table("E5: truss decomposition of the 1000-node network",
                ("edges", "max trussness", "infested fraction",
                 "G_T edges", "G_O edges"),
                [(int(stats["edges"]), int(stats["max_trussness"]),
                  f"{stats['infested_fraction']:.2%}",
                  g_t.size(), g_o.size())])
    assert g_t.size() + g_o.size() == medium_network.size()
    assert stats["max_trussness"] >= 4  # planted cliques exist


def test_e5_candidate_class_mix(benchmark, medium_network):
    budget = PatternBudget(8, min_size=4, max_size=8)
    by_class = benchmark.pedantic(
        lambda: extract_candidates(medium_network, budget,
                                   TattooConfig(seed=1)),
        rounds=1, iterations=1)
    rows = []
    for cls, patterns in by_class.items():
        expected_region = ("G_T (truss-infested)"
                           if cls in triangle_like_classes()
                           else "G_O (oblivious)")
        rows.append((cls.value, len(patterns), expected_region))
    print_table("E5b: TATTOO candidates per topology class",
                ("class", "candidates", "extracted from"), rows)
    # triangle-like and non-triangle-like classes are both populated
    assert any(by_class.get(c) for c in triangle_like_classes()
               if c in by_class)
    assert any(by_class.get(c) for c in non_triangle_classes()
               if c in by_class)
    # every candidate matches its class
    for cls, patterns in by_class.items():
        for pattern in patterns:
            got = classify_topology(pattern.graph)
            if cls == TopologyClass.CLIQUE:
                assert got in (TopologyClass.CLIQUE,
                               TopologyClass.TRIANGLE)
            elif cls == TopologyClass.TREE:
                assert got.is_acyclic()
            else:
                assert got == cls


def test_e5_workload_mix_follows_log_statistics(benchmark,
                                                medium_network):
    workload = benchmark.pedantic(
        lambda: generate_network_workload(medium_network, 60, seed=5),
        rounds=1, iterations=1)
    mix = workload.topology_mix()
    rows = []
    for cls, share in sorted(QUERY_LOG_TOPOLOGY_MIX.items(),
                             key=lambda kv: -kv[1]):
        rows.append((cls.value, f"{share:.2f}",
                     f"{mix.get(cls, 0.0):.2f}"))
    print_table("E5c: workload topology mix vs published log mix",
                ("class", "log share", "generated share"), rows)
    acyclic = sum(share for cls, share in mix.items()
                  if cls.is_acyclic())
    assert acyclic > 0.5, "acyclic queries dominate, as in real logs"
