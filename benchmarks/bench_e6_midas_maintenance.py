"""E6 — MIDAS maintenance vs re-running CATAPULT.

Tutorial claims (§2.4): re-selecting patterns from scratch on every
batch is extremely inefficient; MIDAS maintains the set much faster
and guarantees the maintained quality is at least the original.
Includes the swapping-strategy ablation (multi- vs single-scan,
pruning on/off).
"""

from __future__ import annotations

import time

import pytest

from repro.catapult import CatapultConfig, select_canned_patterns
from repro.datasets import (
    EvolvingRepository,
    generate_chemical_repository,
    generate_update_stream,
)
from repro.midas import Midas, MidasConfig, multi_scan_swap
from repro.patterns import PatternBudget

from conftest import print_table

BATCHES = 5
BATCH_SIZE = 15


def drive(midas_config, seed=31, initial=100):
    """Run one maintenance session; returns reports + rerun times."""
    repo = generate_chemical_repository(initial, seed=seed)
    budget = PatternBudget(6, min_size=4, max_size=8)
    midas = Midas(repo, budget, midas_config)
    evolving = EvolvingRepository([g.copy() for g in repo])
    stream = generate_update_stream(
        evolving, batches=BATCHES, batch_size=BATCH_SIZE, seed=seed + 1,
        drift_after=1, drift_weights=(0.05, 0.05, 0.05, 6.0))
    reports = []
    rerun_times = []
    for batch in stream:
        evolving.apply(batch)
        reports.append(midas.apply_batch(batch))
        start = time.perf_counter()
        select_canned_patterns(evolving.graphs(), budget,
                               CatapultConfig(seed=2))
        rerun_times.append(time.perf_counter() - start)
    return reports, rerun_times


def test_e6_maintenance_vs_rerun(benchmark):
    reports, rerun_times = benchmark.pedantic(
        lambda: drive(MidasConfig(seed=2)), rounds=1, iterations=1)
    rows = []
    for report, rerun in zip(reports, rerun_times):
        rows.append((report.batch_index, report.kind,
                     f"{report.drift:.4f}",
                     f"{report.duration:.2f}", f"{rerun:.2f}",
                     f"{rerun / max(report.duration, 1e-9):.1f}x",
                     f"{report.score_after:.3f}"))
    print_table("E6: per-batch maintenance vs CATAPULT re-run",
                ("batch", "kind", "drift", "midas(s)", "rerun(s)",
                 "speedup", "score"),
                rows)
    total_midas = sum(r.duration for r in reports)
    total_rerun = sum(rerun_times)
    print(f"totals: midas {total_midas:.2f}s, rerun {total_rerun:.2f}s, "
          f"speedup {total_rerun / total_midas:.1f}x")

    # reproduced claims
    assert total_midas < total_rerun, "maintenance beats re-running"
    for report in reports:
        assert report.score_after >= report.score_before - 1e-9, \
            "maintained quality never degrades"


def test_e6_swapping_ablation(benchmark, chem_repo):
    """Multi-scan vs single-scan, pruning on vs off."""
    from repro.patterns import CoverageIndex, Pattern, SetScorer
    from repro.catapult import CatapultConfig, select_canned_patterns

    budget = PatternBudget(6, min_size=4, max_size=8)
    base = select_canned_patterns(chem_repo[:60], budget,
                                  CatapultConfig(seed=3))
    fresh = select_canned_patterns(chem_repo[60:], budget,
                                   CatapultConfig(seed=4))
    current = list(base.patterns)
    candidates = fresh.candidates
    scorer = SetScorer(CoverageIndex(chem_repo[60:],
                                     max_embeddings=20,
                                     size_utility=True))

    def run_all():
        out = {}
        for name, scans, prune in (("multi+prune", 3, True),
                                   ("multi", 3, False),
                                   ("single+prune", 1, True),
                                   ("single", 1, False)):
            start = time.perf_counter()
            _, stats = multi_scan_swap(current, candidates, scorer,
                                       max_scans=scans, prune=prune)
            out[name] = (stats, time.perf_counter() - start)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name, (stats, elapsed) in results.items():
        rows.append((name, stats.scans, stats.swaps, stats.pruned,
                     f"{stats.score_after:.3f}", f"{elapsed:.2f}"))
    print_table("E6b: swapping-strategy ablation",
                ("variant", "scans", "swaps", "pruned", "final score",
                 "time(s)"),
                rows)
    # invariants: no variant ever loses quality; multi >= single
    for stats, _ in results.values():
        assert stats.score_after >= stats.score_before - 1e-9
    assert (results["multi+prune"][0].score_after
            >= results["single+prune"][0].score_after - 1e-9)
