"""E2 — CATAPULT selection-time scaling in repository size.

Tutorial claim (§2.3): CATAPULT is a clustering-based approach; its
cost is dominated by the clustering/feature stage and grows with the
number of data graphs — the very property that makes it unusable on
large networks (motivating TATTOO, E4).
"""

from __future__ import annotations

import time

import pytest

from repro.catapult import CatapultConfig, select_canned_patterns
from repro.datasets import generate_chemical_repository
from repro.patterns import PatternBudget

from conftest import print_table

SIZES = [50, 100, 200, 400]


def run_once(size):
    repo = generate_chemical_repository(size, seed=7)
    budget = PatternBudget(6, min_size=4, max_size=8)
    start = time.perf_counter()
    result = select_canned_patterns(repo, budget, CatapultConfig(seed=1))
    total = time.perf_counter() - start
    return total, result.timings


def test_e2_scaling_curve(benchmark):
    rows = []
    totals = {}

    def sweep():
        out = {}
        for size in SIZES:
            out[size] = run_once(size)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for size in SIZES:
        total, timings = results[size]
        totals[size] = total
        cluster_share = timings["cluster"] / total if total else 0.0
        rows.append((size, f"{total:.2f}",
                     f"{timings['cluster']:.2f}",
                     f"{timings['candidates']:.2f}",
                     f"{timings['select']:.2f}",
                     f"{cluster_share:.0%}"))
    print_table("E2: CATAPULT time vs |D|",
                ("|D|", "total(s)", "cluster(s)", "candidates(s)",
                 "select(s)", "cluster share"),
                rows)
    # the reproduced shape: superlinear growth dominated by clustering
    assert totals[400] > totals[50]
    _, timings_400 = results[400]
    assert timings_400["cluster"] == max(timings_400.values())


def test_e2_single_point_benchmark(benchmark):
    """A stable single-point timing for regression tracking."""
    repo = generate_chemical_repository(100, seed=7)
    budget = PatternBudget(6, min_size=4, max_size=8)
    result = benchmark.pedantic(
        lambda: select_canned_patterns(repo, budget,
                                       CatapultConfig(seed=1)),
        rounds=2, iterations=1)
    assert len(result.patterns) > 0
