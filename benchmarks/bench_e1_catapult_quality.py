"""E1 — CATAPULT pattern quality vs baselines, across budgets.

Tutorial claim (§2.3): data-driven selection produces canned pattern
sets with high coverage, high diversity, and low cognitive load; a
score ablation shows every term matters.

Baselines:
* ``random``   — uniformly random budget-compliant subgraphs of the data;
* ``frequent`` — the most frequent subtrees (support-ranked), the
  classic frequent-pattern strawman the CATAPULT paper compares to.
"""

from __future__ import annotations

import random

import pytest

from repro.catapult import CatapultConfig, select_canned_patterns
from repro.datasets import sample_connected_subgraph
from repro.clustering import mine_frequent_trees
from repro.patterns import (
    Pattern,
    PatternBudget,
    PatternSet,
    ScoreWeights,
    set_cognitive_load,
    set_diversity,
    set_repository_coverage,
)

from conftest import print_table


def random_baseline(repo, budget, count, seed):
    rng = random.Random(seed)
    patterns = PatternSet()
    guard = 0
    while len(patterns) < count and guard < 50 * count:
        guard += 1
        source = rng.choice(repo)
        if source.order() < budget.min_size:
            continue
        size = rng.randint(budget.min_size,
                           min(budget.max_size, source.order()))
        sample = sample_connected_subgraph(source, size, rng)
        if sample is not None:
            patterns.add(Pattern(sample, source="random"))
    return list(patterns)


def frequent_baseline(repo, budget, count):
    """Top frequent subgraphs (proper FSG mining, not just trees)."""
    from repro.mining import top_frequent_subgraphs
    mined = top_frequent_subgraphs(repo, count * 3,
                                   min_nodes=budget.min_size,
                                   max_nodes=budget.max_size,
                                   min_support=2, max_edges=5)
    patterns = PatternSet()
    for subgraph in mined:
        patterns.add(Pattern(subgraph.graph, source="frequent"))
        if len(patterns) >= count:
            break
    return list(patterns)


def quality_row(name, patterns, repo):
    return (name, len(patterns),
            f"{set_repository_coverage(patterns, repo):.3f}",
            f"{set_diversity(patterns):.3f}",
            f"{set_cognitive_load(patterns):.3f}")


@pytest.mark.parametrize("budget_size", [5, 10])
def test_e1_quality_vs_baselines(benchmark, chem_repo, budget_size):
    budget = PatternBudget(budget_size, min_size=4, max_size=8)

    result = benchmark.pedantic(
        lambda: select_canned_patterns(chem_repo, budget,
                                       CatapultConfig(seed=1)),
        rounds=1, iterations=1)
    catapult_patterns = list(result.patterns)
    rows = [
        quality_row("catapult", catapult_patterns, chem_repo),
        quality_row("random",
                    random_baseline(chem_repo, budget, budget_size, 2),
                    chem_repo),
        quality_row("frequent",
                    frequent_baseline(chem_repo, budget, budget_size),
                    chem_repo),
    ]
    print_table(f"E1: pattern quality, budget b={budget_size}",
                ("selector", "k", "coverage", "diversity", "cog.load"),
                rows)
    # the reproduced claim: CATAPULT's combined quality beats random
    cov_c = set_repository_coverage(catapult_patterns, chem_repo)
    div_c = set_diversity(catapult_patterns)
    rnd = random_baseline(chem_repo, budget, budget_size, 2)
    cov_r = set_repository_coverage(rnd, chem_repo)
    div_r = set_diversity(rnd)
    load_c = set_cognitive_load(catapult_patterns)
    load_r = set_cognitive_load(rnd)
    assert (cov_c + div_c + (1 - load_c)) > (cov_r + div_r
                                             + (1 - load_r)) - 0.05


def test_e1_score_ablation(benchmark, chem_repo):
    """Dropping a score term degrades that term's measure."""
    budget = PatternBudget(8, min_size=4, max_size=8)
    variants = {
        "full": ScoreWeights(1.0, 1.0, 0.5),
        "no-diversity": ScoreWeights(1.0, 0.0, 0.5),
        "no-cog-load": ScoreWeights(1.0, 1.0, 0.0),
        "coverage-only": ScoreWeights(1.0, 0.0, 0.0),
    }

    def run_all():
        return {
            name: select_canned_patterns(
                chem_repo, budget,
                CatapultConfig(seed=1, weights=weights))
            for name, weights in variants.items()
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    measured = {}
    for name, result in results.items():
        patterns = list(result.patterns)
        measured[name] = (set_repository_coverage(patterns, chem_repo),
                          set_diversity(patterns),
                          set_cognitive_load(patterns))
        rows.append(quality_row(name, patterns, chem_repo))
    print_table("E1 ablation: score-term knockout",
                ("variant", "k", "coverage", "diversity", "cog.load"),
                rows)
    # knocking out diversity should not *increase* diversity
    assert measured["no-diversity"][1] <= measured["full"][1] + 0.05
