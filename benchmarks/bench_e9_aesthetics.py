"""E9 — aesthetics: Berlyne's inverted U and layout quality.

Tutorial claims (§2.1, §2.5): satisfaction follows an inverted-U in
visual complexity (moderate complexity is most pleasant), and layout
choice moves the aesthetic metrics — the yet-unexplored lever the
tutorial's future-work section calls out.
"""

from __future__ import annotations

import pytest

from repro.graph import complete_graph, cycle_graph, path_graph
from repro.patterns import Pattern
from repro.vqi import (
    berlyne_satisfaction,
    circular_layout,
    edge_crossings,
    layout_quality,
    panel_aesthetics,
    spring_layout,
    visual_complexity,
)

from conftest import print_table

#: pattern sets of strictly increasing structural complexity
COMPLEXITY_LADDER = [
    ("edges", [path_graph(2, label="A")] * 3),
    ("paths", [path_graph(4, label="A"), path_graph(5, label="A")]),
    ("cycles", [cycle_graph(5, label="A"), cycle_graph(6, label="A")]),
    ("cycles+cliques", [cycle_graph(6, label="A"),
                        complete_graph(4, label="A")]),
    ("cliques", [complete_graph(5, label="A"),
                 complete_graph(6, label="A")]),
    ("dense cliques", [complete_graph(7, label="A"),
                       complete_graph(8, label="A")]),
]


def test_e9_inverted_u(benchmark):
    def sweep():
        return [(name, panel_aesthetics(graphs, seed=1))
                for name, graphs in COMPLEXITY_LADDER]

    measured = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(name, f"{m['visual_complexity']:.3f}",
             f"{m['satisfaction']:.3f}", f"{m['layout_quality']:.3f}")
            for name, m in measured]
    print_table("E9: visual complexity vs satisfaction (Berlyne)",
                ("panel", "complexity", "satisfaction", "layout q."),
                rows)

    complexities = [m["visual_complexity"] for _, m in measured]
    satisfactions = [m["satisfaction"] for _, m in measured]
    # complexity ladder is monotone
    assert complexities == sorted(complexities)
    # inverted U: the peak is interior, both extremes are lower
    peak = max(range(len(satisfactions)), key=satisfactions.__getitem__)
    assert 0 < peak < len(satisfactions) - 1
    assert satisfactions[0] < satisfactions[peak]
    assert satisfactions[-1] < satisfactions[peak]


def test_e9_model_curve(benchmark):
    """The satisfaction model itself is an inverted U."""
    xs = [i / 20 for i in range(21)]

    def curve():
        return [berlyne_satisfaction(x) for x in xs]

    ys = benchmark.pedantic(curve, rounds=1, iterations=1)
    peak = max(range(len(ys)), key=ys.__getitem__)
    assert 0 < peak < len(ys) - 1
    assert all(ys[i] <= ys[i + 1] + 1e-12 for i in range(peak))
    assert all(ys[i] >= ys[i + 1] - 1e-12 for i in range(peak, len(ys) - 1))


def test_e9_layout_choice_matters(benchmark):
    """Spring layout beats the circular fallback on crossings for
    planar-ish patterns — layout is an aesthetics lever."""
    graphs = [path_graph(8, label="A"), cycle_graph(8, label="A")]
    from repro.graph import petal_graph
    graphs.append(petal_graph(2, 3, label="A"))

    def run():
        rows = []
        wins = 0
        for g in graphs:
            spring = spring_layout(g, seed=2)
            circle = circular_layout(g)
            crossings_spring = edge_crossings(g, spring)
            crossings_circle = edge_crossings(g, circle)
            quality_spring = layout_quality(g, spring)
            quality_circle = layout_quality(g, circle)
            if (crossings_spring, -quality_spring) <= (crossings_circle,
                                                       -quality_circle):
                wins += 1
            rows.append((g.name, crossings_spring, crossings_circle,
                         f"{quality_spring:.3f}",
                         f"{quality_circle:.3f}"))
        return rows, wins

    rows, wins = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("E9b: spring vs circular layout",
                ("graph", "crossings (spring)", "crossings (circle)",
                 "quality (spring)", "quality (circle)"),
                rows)
    assert wins >= 2, "spring layout should win on most shapes"
