"""E4 — TATTOO on large networks: scaling and coverage-vs-budget.

Tutorial claim (§2.3): clustering-based selection (CATAPULT) is
prohibitively expensive on large networks; TATTOO's truss-split +
topology-driven extraction handles them, with coverage growing in the
display budget.

The "prohibitive" baseline here is exhaustive connected-subgraph
enumeration (what candidate generation without the truss/topology
guidance degenerates to): its candidate count explodes immediately,
so we cap and report the cap being hit.
"""

from __future__ import annotations

import time

import pytest

from repro.datasets import NetworkConfig, generate_network
from repro.patterns import PatternBudget
from repro.tattoo import TattooConfig, select_network_patterns

from conftest import print_table

NETWORK_SIZES = [400, 800, 1600]
ENUM_CAP = 30_000


def naive_candidate_count(network, max_nodes, cap=ENUM_CAP):
    """Count connected subgraphs up to ``max_nodes`` nodes (capped)."""
    count = 0
    for seed_node in sorted(network.nodes()):
        stack = [(frozenset([seed_node]),)]
        seen = set()
        while stack:
            (current,) = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            count += 1
            if count >= cap:
                return count
            if len(current) >= max_nodes:
                continue
            frontier = set()
            for u in current:
                frontier.update(network.neighbors(u))
            for nxt in frontier - current:
                stack.append((current | {nxt},))
    return count


def test_e4_scaling_curve(benchmark):
    budget = PatternBudget(8, min_size=4, max_size=8)
    rows = []

    def sweep():
        out = {}
        for size in NETWORK_SIZES:
            network = generate_network(
                NetworkConfig(nodes=size, cliques=max(size // 50, 4),
                              petals=size // 80, flowers=size // 100),
                seed=13)
            start = time.perf_counter()
            result = select_network_patterns(network, budget,
                                             TattooConfig(seed=1))
            elapsed = time.perf_counter() - start
            out[size] = (network, result, elapsed)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for size, (network, result, elapsed) in results.items():
        rows.append((size, network.size(), f"{elapsed:.2f}",
                     f"{result.timings['decompose']:.2f}",
                     f"{result.timings['extract']:.2f}",
                     f"{result.timings['select']:.2f}",
                     len(result.patterns)))
    print_table("E4: TATTOO time vs network size",
                ("nodes", "edges", "total(s)", "truss(s)",
                 "extract(s)", "select(s)", "k"),
                rows)
    # pipeline completes at every size and selects a full panel
    for size, (_, result, _) in results.items():
        assert len(result.patterns) > 0


def test_e4_naive_enumeration_explodes(benchmark, medium_network):
    """Without topology guidance, the candidate space is hopeless."""
    count = benchmark.pedantic(
        lambda: naive_candidate_count(medium_network, max_nodes=5),
        rounds=1, iterations=1)
    print(f"\nE4b: naive connected-subgraph enumeration on "
          f"{medium_network.order()} nodes hit the "
          f"{ENUM_CAP} cap: {count >= ENUM_CAP} (count={count})")
    assert count >= ENUM_CAP


def test_e4_coverage_vs_budget(benchmark, medium_network):
    rows = []

    def sweep():
        out = {}
        for k in (2, 4, 8, 12):
            budget = PatternBudget(k, min_size=4, max_size=8)
            result = select_network_patterns(medium_network, budget,
                                             TattooConfig(seed=1))
            out[k] = result
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    coverages = {}
    for k, result in results.items():
        # plain (unweighted) edge coverage over the network
        from repro.patterns import CoverageIndex
        index = CoverageIndex([medium_network], max_embeddings=30)
        cov = index.set_coverage(list(result.patterns))
        coverages[k] = cov
        rows.append((k, len(result.patterns), f"{cov:.3f}",
                     f"{result.selection.score:.3f}"))
    print_table("E4c: coverage vs pattern budget (1000-node network)",
                ("budget", "k", "edge coverage", "set score"), rows)
    assert coverages[12] >= coverages[2] - 1e-9
