"""E8 — modular architecture: stage-swap ablation.

Tutorial claim (§2.3, Tzanikos et al.): decomposing selection into
independent similarity / clustering / merging / extraction stages
lets each be substituted, trading quality for cost per deployment.
This bench runs every assembly and reports quality/time per choice.
"""

from __future__ import annotations

import time

import pytest

from repro.modular import (
    CLUSTERING_STAGES,
    EXTRACTION_STAGES,
    MERGING_STAGES,
    SIMILARITY_STAGES,
    ModularPipeline,
)
from repro.patterns import (
    PatternBudget,
    set_diversity,
    set_repository_coverage,
)

from conftest import print_table


def test_e8_all_assemblies(benchmark, small_chem_repo):
    budget = PatternBudget(5, min_size=4, max_size=8)

    def sweep():
        results = {}
        for similarity in SIMILARITY_STAGES:
            for clustering in CLUSTERING_STAGES:
                for merging in MERGING_STAGES:
                    for extraction in EXTRACTION_STAGES:
                        pipeline = ModularPipeline(
                            similarity=similarity,
                            clustering=clustering,
                            merging=merging, extraction=extraction,
                            seed=5)
                        start = time.perf_counter()
                        result = pipeline.run(small_chem_repo, budget)
                        elapsed = time.perf_counter() - start
                        results[pipeline.describe()] = (result, elapsed)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for description, (result, elapsed) in sorted(
            results.items(), key=lambda kv: -kv[1][0].score):
        patterns = list(result.patterns)
        rows.append((description, len(patterns),
                     f"{set_repository_coverage(patterns, small_chem_repo):.3f}",
                     f"{set_diversity(patterns):.3f}",
                     f"{result.score:.3f}", f"{elapsed:.2f}"))
    print_table("E8: all 16 stage assemblies (sorted by set score)",
                ("similarity | clustering | merging | extraction",
                 "k", "coverage", "diversity", "score", "time(s)"),
                rows)

    # reproduced claims: every assembly is runnable, and stage choice
    # matters (scores/times are not all identical)
    assert len(results) == 16
    scores = [r.score for r, _ in results.values()]
    assert max(scores) - min(scores) > 0.005


def test_e8_stage_cost_attribution(benchmark, small_chem_repo):
    """Where the time goes for the reference (CATAPULT-like) assembly."""
    budget = PatternBudget(5, min_size=4, max_size=8)
    result = benchmark.pedantic(
        lambda: ModularPipeline(seed=5).run(small_chem_repo, budget),
        rounds=1, iterations=1)
    rows = [(stage, f"{seconds:.3f}")
            for stage, seconds in result.timings.items()]
    print_table("E8b: per-stage cost (reference assembly)",
                ("stage", "time(s)"), rows)
    assert set(result.timings) == {"similarity", "clustering",
                                   "merging", "extraction", "selection"}
