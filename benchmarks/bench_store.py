"""Durable-store micro-benchmark: fsync cost, measured not guessed.

Times the three durable paths the store's recovery contract leans on
— segment appends (fsync per record), WAL appends (fsync per batch
record), and a full cold recovery (manifest + segment scan + WAL
tail) — over a seeded repository, and gates on the properties the
durability suite asserts:

* every recovered graph re-encodes **byte-identically** to what was
  appended (lossless round trip through the framed segment tier);
* a WAL scan returns every appended batch, in sequence order;
* a ``DiskBackend`` commit → ``load`` cycle reconstructs the
  repository and pattern set bitwise.

The numbers (records/s, ms/fsync'd append, recovery ms) are recorded
for trend-watching, not gated — fsync latency is hardware, not code.

Usage::

    PYTHONPATH=src python benchmarks/bench_store.py --smoke \
        --out BENCH_store.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.datasets import UpdateBatch, generate_chemical_repository
from repro.patterns.base import Pattern, PatternSet
from repro.store import (
    DiskBackend,
    SegmentStore,
    WriteAheadLog,
    encode_graph_record,
    encode_pattern_blob,
)


def bench_segments(graphs, root: str, report: Dict) -> None:
    store = SegmentStore(os.path.join(root, "segments"))
    os.makedirs(store.root, exist_ok=True)
    start = time.perf_counter()
    written = store.append(graphs)
    elapsed = time.perf_counter() - start
    sealed = [dict(entry) for entry in store.entries]
    store.close()

    start = time.perf_counter()
    recovered, quarantined, repaired = SegmentStore(
        store.root).load(sealed)
    load_s = time.perf_counter() - start

    originals = {encode_graph_record(g) for g in graphs}
    round_tripped = {encode_graph_record(g)
                     for g in recovered.values()}
    report["timings"]["segment_append_records_per_s"] = round(
        written / elapsed, 1)
    report["timings"]["segment_load_ms"] = round(load_s * 1e3, 2)
    report["gates"]["segment_round_trip_lossless"] = \
        originals == round_tripped
    report["gates"]["segment_load_clean"] = \
        not quarantined and not repaired


def bench_wal(graphs, root: str, batches: int,
              report: Dict) -> None:
    wal = WriteAheadLog(os.path.join(root, "wal.log"))
    per_batch = max(1, len(graphs) // batches)
    start = time.perf_counter()
    for seq in range(1, batches + 1):
        added = graphs[(seq - 1) * per_batch:seq * per_batch]
        wal.append(seq, UpdateBatch(added=added, removed=[]))
    elapsed = time.perf_counter() - start
    pending, truncated = wal.scan(watermark=0)
    wal.close()
    report["timings"]["wal_append_ms_per_record"] = round(
        elapsed * 1e3 / batches, 3)
    report["gates"]["wal_scan_complete"] = \
        [seq for seq, _ in pending] == list(range(1, batches + 1)) \
        and truncated == 0


def bench_backend(graphs, root: str, report: Dict) -> None:
    store_dir = os.path.join(root, "backend")
    backend = DiskBackend(store_dir)
    patterns = PatternSet(Pattern(g, source="bench")
                          for g in graphs[:8])
    start = time.perf_counter()
    backend.commit(graphs, None, patterns, "catapult", wal_seq=0)
    commit_s = time.perf_counter() - start
    backend.close()

    start = time.perf_counter()
    recovered = DiskBackend(store_dir).load()
    recover_s = time.perf_counter() - start
    report["timings"]["backend_commit_ms"] = round(commit_s * 1e3, 2)
    report["timings"]["backend_recover_ms"] = round(recover_s * 1e3, 2)
    report["gates"]["backend_repository_bitwise"] = \
        [encode_graph_record(g) for g in recovered.repository] \
        == [encode_graph_record(g) for g in graphs]
    report["gates"]["backend_patterns_bitwise"] = \
        encode_pattern_blob(recovered.patterns) \
        == encode_pattern_blob(patterns)
    report["gates"]["backend_recovery_clean"] = \
        not recovered.report.degraded \
        and recovered.report.pending_batches == 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI")
    parser.add_argument("--out", default="BENCH_store.json",
                        help="JSON report path")
    args = parser.parse_args()

    size = 60 if args.smoke else 400
    batches = 10 if args.smoke else 50
    graphs = generate_chemical_repository(size, seed=7)
    report: Dict[str, Dict] = {
        "schema": "repro-bench-store/v1",
        "config": {"graphs": size, "wal_batches": batches,
                   "smoke": bool(args.smoke)},
        "timings": {}, "gates": {},
    }
    with tempfile.TemporaryDirectory() as tmp:
        bench_segments(graphs, tmp, report)
        bench_wal(graphs, tmp, batches, report)
        bench_backend(graphs, tmp, report)

    failed: List[str] = [name for name, ok in report["gates"].items()
                         if not ok]
    report["ok"] = not failed
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
    for name, value in sorted(report["timings"].items()):
        print(f"{name}: {value}")
    if failed:
        print(f"bench-store: FAILED gates: {', '.join(failed)}")
        return 1
    print(f"bench-store: {len(report['gates'])} gates ok -> "
          f"{args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
