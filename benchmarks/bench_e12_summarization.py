"""E12 (extension) — pattern-based graph summarization.

The tutorial's "Beyond VQIs" claim (§2.5): canned patterns — high
coverage, diverse, low cognitive load — make visualization-friendly
graph summaries, more palatable than classical topological/attribute
summaries.  This bench compares pattern-based summarization against
the label-grouping baseline on structure retention and readability.
"""

from __future__ import annotations

import pytest

from repro.datasets import NetworkConfig, generate_network
from repro.patterns import PatternBudget, cognitive_load
from repro.summary import label_grouping_summary, summarize_with_patterns
from repro.tattoo import TattooConfig, select_network_patterns
from repro.vqi import visual_complexity

from conftest import print_table


def test_e12_pattern_vs_label_summary(benchmark):
    def scenario():
        network = generate_network(
            NetworkConfig(nodes=250, cliques=10, petals=6, flowers=5),
            seed=31)
        budget = PatternBudget(6, min_size=4, max_size=8)
        selection = select_network_patterns(network, budget,
                                            TattooConfig(seed=1))
        pattern_based = summarize_with_patterns(
            network, list(selection.patterns), max_instances=40)
        label_based = label_grouping_summary(network)
        return network, pattern_based, label_based

    network, pattern_based, label_based = benchmark.pedantic(
        scenario, rounds=1, iterations=1)

    def row(name, result):
        return (name, result.summary.order(), result.summary.size(),
                f"{result.node_compression():.3f}",
                f"{result.coverage():.3f}",
                len(result.instances))

    print_table(f"E12: summarizing a {network.order()}-node network",
                ("method", "supernodes", "superedges",
                 "node compression", "structure coverage",
                 "instances"),
                [row("pattern-based", pattern_based),
                 row("label-grouping", label_based)])

    # reproduced claims: pattern-based summaries collapse real
    # substructure (instances exist, edges get folded), while label
    # grouping destroys all topology (zero structure coverage)
    assert pattern_based.instances
    assert pattern_based.coverage() > 0.0
    assert label_based.coverage() == 0.0
    assert pattern_based.node_compression() < 1.0

    # readability: supernode labels of the pattern summary name
    # topology classes a user recognises
    labels = {pattern_based.summary.node_label(v)
              for v in pattern_based.summary.nodes()}
    recognisable = {"chain", "star", "tree", "cycle", "triangle",
                    "petal", "flower", "clique", "general"}
    assert labels & recognisable


def test_e12_summary_readability_scaling(benchmark):
    """Summaries must be less visually complex than their input."""
    from repro.graph import complete_graph, disjoint_union
    from repro.patterns import Pattern

    def scenario():
        rows = []
        for copies in (3, 6, 9):
            g = disjoint_union([complete_graph(5, label="A")] * copies)
            # chain the cliques together
            for i in range(copies - 1):
                g.add_edge(5 * i, 5 * (i + 1))
            result = summarize_with_patterns(
                g, [Pattern(complete_graph(5, label="A"))])
            rows.append((copies, g.order(), result.summary.order(),
                         f"{cognitive_load(g):.3f}",
                         f"{cognitive_load(result.summary):.3f}",
                         f"{result.load_reduction(g):.3f}"))
        return rows

    rows = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table("E12b: cognitive load, original vs summary",
                ("cliques", "original n", "summary n",
                 "load(original)", "load(summary)", "reduction"),
                rows)
    for row in rows:
        assert float(row[5]) > 0.0, "summary must reduce load"
