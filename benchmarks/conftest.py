"""Shared fixtures for the experiment benchmarks (E1-E10).

Each bench file regenerates one quantitative claim from the tutorial
(see DESIGN.md's experiment index and EXPERIMENTS.md for the
paper-vs-measured record).  Rows are printed so that
``pytest benchmarks/ --benchmark-only`` output doubles as the
experiment report.
"""

from __future__ import annotations

import pytest

from repro.datasets import (
    NetworkConfig,
    generate_chemical_repository,
    generate_network,
    generate_workload,
)
from repro.patterns import PatternBudget


@pytest.fixture(scope="session")
def chem_repo():
    """Medium chemical repository shared by the E1/E3/E6/E7 benches."""
    return generate_chemical_repository(120, seed=101)


@pytest.fixture(scope="session")
def small_chem_repo():
    return generate_chemical_repository(50, seed=102)


@pytest.fixture(scope="session")
def medium_network():
    return generate_network(NetworkConfig(nodes=1000, cliques=20,
                                          petals=15, flowers=10),
                            seed=103)


@pytest.fixture(scope="session")
def default_budget():
    return PatternBudget(8, min_size=4, max_size=8)


@pytest.fixture(scope="session")
def chem_workload(chem_repo):
    return list(generate_workload(chem_repo, 30, seed=104))


def print_table(title, header, rows):
    """Uniform experiment-report table printer."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), max((len(str(r[i])) for r in rows),
                                   default=0))
              for i, h in enumerate(header)]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
