"""The middleware chain every service request passes through.

Order (outermost first), the contract DESIGN.md documents:

1. **request-id** — mint a deterministic id (``r-1``, ``r-2``, ...),
   time the request, and stamp total request/status/latency counters.
2. **request-log** — append the finished exchange to the JSONL
   request log (after the response exists, so the logged status is
   the mapped one and the logged body is the enveloped one).
3. **envelope** — stamp the ``repro/v1`` schema tag, the request id,
   and the ``X-Repro-Request`` header onto the response; sits inside
   the log layer so logged bodies equal served bodies.
4. **error-map** — translate the typed :class:`repro.errors.
   ReproError` taxonomy into HTTP statuses with structured bodies;
   anything else becomes a structured 500 and bumps
   ``service.errors.unhandled``.
5. **rate-limit** — the shared token bucket; empty bucket raises
   :class:`repro.errors.RateLimited` (→ 429 + ``Retry-After``).
6. **route-resolve** — match the router table; no match raises
   :class:`repro.errors.RouteNotFound` (→ 404).
7. **admission** — load-shedding for routes marked ``heavy``: an
   already-expired request deadline (``X-Repro-Deadline`` header) or
   a full build slot raises :class:`repro.errors.Overloaded` (→ 503
   with a :class:`repro.resilience.CompletionReport` body showing
   zero work done).
8. **metrics** — per-route request counters and latency timers in
   the :mod:`repro.obs` registry, then the handler itself.

Rate limiting and admission are *policy* layers: a request-log
replay runs with ``policed=False`` and skips both, because a replay
verifies handler determinism, not load behaviour.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Mapping, Optional

from repro.errors import Overloaded, RateLimited, ReproError
from repro.obs import metrics as obs_metrics
from repro.resilience.deadline import CompletionReport, Deadline
from repro.service import wire

#: Request header carrying the client's wall-clock budget in seconds.
DEADLINE_HEADER = "x-repro-deadline"

#: Response header carrying the request id.
REQUEST_ID_HEADER = "X-Repro-Request"


class Request:
    """One in-flight request as the middleware chain sees it."""

    __slots__ = ("method", "path", "body", "headers", "request_id",
                 "deadline", "route", "params", "policed")

    def __init__(self, method: str, path: str,
                 body: Optional[Dict[str, object]] = None,
                 headers: Optional[Mapping[str, str]] = None,
                 policed: bool = True) -> None:
        self.method = method.upper()
        self.path = path
        self.body = body if body is not None else {}
        self.headers = {key.lower(): value
                        for key, value in (headers or {}).items()}
        self.request_id = ""
        raw = self.headers.get(DEADLINE_HEADER)
        try:
            seconds = float(raw) if raw is not None else None
        except ValueError:
            seconds = None
        self.deadline = Deadline.start(seconds)
        self.route = None
        self.params: Dict[str, str] = {}
        self.policed = policed

    def __repr__(self) -> str:
        return f"<Request {self.method} {self.path}>"


class Response:
    """Status, JSON body, and extra headers of one exchange."""

    __slots__ = ("status", "body", "headers")

    def __init__(self, status: int, body: Dict[str, object],
                 headers: Optional[Dict[str, str]] = None) -> None:
        self.status = status
        self.body = body
        self.headers = headers or {}

    def __repr__(self) -> str:
        return f"<Response {self.status}>"


Next = Callable[[Request], Response]


def request_id_middleware(service, call_next: Next) -> Next:
    def middleware(request: Request) -> Response:
        request.request_id = service.next_request_id()
        started = time.perf_counter()
        response = call_next(request)
        elapsed = time.perf_counter() - started
        obs_metrics.inc("service.requests")
        obs_metrics.inc(f"service.status.{response.status}")
        obs_metrics.observe("service.latency", elapsed)
        return response
    return middleware


def envelope_middleware(service, call_next: Next) -> Next:
    def middleware(request: Request) -> Response:
        response = call_next(request)
        response.body.setdefault("schema", wire.WIRE_SCHEMA)
        response.body.setdefault("request_id", request.request_id)
        response.headers.setdefault(REQUEST_ID_HEADER,
                                    request.request_id)
        return response
    return middleware


def request_log_middleware(service, call_next: Next) -> Next:
    def middleware(request: Request) -> Response:
        response = call_next(request)
        if service.request_log is not None:
            service.request_log.append(request, response)
        return response
    return middleware


def error_map_middleware(service, call_next: Next) -> Next:
    def middleware(request: Request) -> Response:
        try:
            return call_next(request)
        except ReproError as error:
            status = status_for(error)
            obs_metrics.inc("service.errors.typed")
            obs_metrics.inc(f"service.errors.{type(error).__name__}")
            headers: Dict[str, str] = {}
            retry_after = getattr(error, "retry_after_s", None)
            if retry_after is not None:
                headers["Retry-After"] = f"{retry_after:.3f}"
            return Response(status,
                            wire.error_body(error, status,
                                            request.request_id),
                            headers)
        except Exception as error:  # noqa: BLE001 - the last resort
            obs_metrics.inc("service.errors.unhandled")
            return Response(500,
                            wire.error_body(error, 500,
                                            request.request_id))
    return middleware


def rate_limit_middleware(service, call_next: Next) -> Next:
    def middleware(request: Request) -> Response:
        if request.policed:
            retry_after = service.bucket.acquire()
            if retry_after is not None:
                obs_metrics.inc("service.rate_limited")
                raise RateLimited(retry_after)
        return call_next(request)
    return middleware


def route_resolve_middleware(service, call_next: Next) -> Next:
    def middleware(request: Request) -> Response:
        request.route, request.params = service.router.resolve(
            request.method, request.path)
        return call_next(request)
    return middleware


def admission_middleware(service, call_next: Next) -> Next:
    def middleware(request: Request) -> Response:
        route = request.route
        if not request.policed or route is None or not route.heavy:
            return call_next(request)
        if request.deadline.check(f"service.{route.name}"):
            obs_metrics.inc("service.shed.deadline")
            raise Overloaded(
                "request deadline expired before work began",
                _shed_report(route.name, "deadline expired"))
        if not service.heavy_slots.acquire(blocking=False):
            obs_metrics.inc("service.shed.load")
            raise Overloaded(
                f"all {service.config.max_inflight} build slot(s) "
                "are busy",
                _shed_report(route.name, "no free build slot"))
        try:
            return call_next(request)
        finally:
            service.heavy_slots.release()
    return middleware


def metrics_middleware(service, call_next: Next) -> Next:
    def middleware(request: Request) -> Response:
        route = request.route
        name = route.name if route is not None else "unrouted"
        obs_metrics.inc(f"service.requests.{name}")
        started = time.perf_counter()
        try:
            return call_next(request)
        finally:
            obs_metrics.observe(f"service.latency.{name}",
                                time.perf_counter() - started)
    return middleware


#: The documented chain, outermost first.
MIDDLEWARE_CHAIN = (
    request_id_middleware,
    request_log_middleware,
    envelope_middleware,
    error_map_middleware,
    rate_limit_middleware,
    route_resolve_middleware,
    admission_middleware,
    metrics_middleware,
)


def build_chain(service, terminal: Next) -> Next:
    """Compose the documented middleware order around ``terminal``."""
    chain = terminal
    for factory in reversed(MIDDLEWARE_CHAIN):
        chain = factory(service, chain)
    return chain


def status_for(error: ReproError) -> int:
    """The HTTP status a typed library error maps to.

    Service errors carry their own ``status``; the library taxonomy
    maps by meaning: malformed input and invalid options are 400,
    missing things are 404, state conflicts are 409, exhausted
    budgets are 503, and worker crashes surface as 502 (the engine
    acted as a gateway to a failing worker pool).
    """
    from repro.errors import (
        BudgetExceeded,
        FormatError,
        GraphError,
        MaintenanceError,
        OptionError,
        PipelineError,
        ServiceError,
        UnknownNameError,
        WorkerFailure,
    )

    if isinstance(error, ServiceError):
        return error.status
    if isinstance(error, UnknownNameError):
        return 404
    if isinstance(error, MaintenanceError):
        return 409
    if isinstance(error, BudgetExceeded):
        return 503
    if isinstance(error, WorkerFailure):
        return 502
    if isinstance(error, (FormatError, GraphError, OptionError,
                          PipelineError)):
        return 400
    return 500


def _shed_report(stage: str, note: str) -> Dict[str, object]:
    report = CompletionReport()
    report.record(stage, 0, 1, complete=False, note=note)
    return report.as_dict()
