"""Route handlers, one section per concern.

Handlers are free functions ``(service, request) -> body dict``; the
terminal middleware wraps the dict in a 200 response and every
failure path raises a typed :class:`repro.errors.ReproError` that
the error-mapping middleware translates.  Handlers never touch the
HTTP layer and never format JSON — :mod:`repro.service.wire` owns
the shapes — so the same functions serve live traffic, the request-
log replay, and direct in-process calls from tests.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.core.pipeline import run_catapult, run_tattoo
from repro.datasets.evolving import UpdateBatch
from repro.errors import OptionError, PipelineError
from repro.graph.graph import Graph
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.obs import snapshot as obs_snapshot
from repro.service import wire
from repro.service.middleware import Request

# ---------------------------------------------------------------- health


def handle_health(service, request: Request) -> Dict[str, object]:
    snapshot = service.snapshots.current()
    return {
        "status": "ok",
        "snapshot": snapshot.snapshot_id,
        "generator": snapshot.generator,
        "patterns": len(snapshot.patterns),
        "graphs": len(snapshot.repository),
        "sessions": service.sessions.count(),
        "snapshots": service.snapshots.ids(),
        "pinned": snapshot.verify_pinned(),
        "uptime_s": service.uptime_s(),
    }


# --------------------------------------------------------------- metrics


def handle_metrics(service, request: Request) -> Dict[str, object]:
    """The one documented stats surface, served over the wire:
    :func:`repro.obs.snapshot` (registry + matching stack)."""
    return {"metrics": obs_snapshot()}


# -------------------------------------------------------------- patterns


def handle_patterns(service, request: Request) -> Dict[str, object]:
    snapshot = service.snapshots.resolve(
        _optional_str(request.body, "snapshot"))
    return {
        "snapshot": snapshot.snapshot_id,
        "generator": snapshot.generator,
        "budget": wire.budget_to_dict(service.pipeline.budget),
        "patterns": wire.patterns_to_list(snapshot.patterns),
    }


def handle_maintain(service, request: Request) -> Dict[str, object]:
    """Apply one MIDAS :class:`UpdateBatch`, then publish a new
    snapshot.  Reads keep serving the old snapshot throughout.

    On a durable backend the batch is write-ahead-logged (fsync'd)
    before it is applied and the published snapshot is committed
    after — :meth:`repro.service.app.PatternService.
    apply_maintenance` owns that ordering."""
    added = [graph_from_dict(item) for item in
             _list_of_dicts(request.body.get("add", []), "add")]
    removed = [str(name) for name
               in _string_list(request.body.get("remove", []),
                               "remove")]
    snapshot, report = service.apply_maintenance(
        UpdateBatch(added=added, removed=removed))
    return {
        "snapshot": snapshot.snapshot_id,
        "degraded": bool(report.degraded),
        "report": report.stats,
    }


# ----------------------------------------------------------------- build


def handle_build(service, request: Request) -> Dict[str, object]:
    """Run a selection pipeline and publish its pattern set.

    The response body is byte-identical (modulo
    :func:`repro.service.wire.strip_volatile`) to serializing the
    same :func:`run_catapult` / :func:`run_tattoo` call made
    directly against the library, because both go through
    :func:`wire.build_body`.
    """
    body = request.body
    config = wire.config_from_payload(body.get("config"))
    if config.budget is None:
        config = replace(config, budget=service.pipeline.budget)
    if config.deadline_s is None \
            and request.deadline.seconds is not None:
        # the client's admission deadline also bounds the pipeline:
        # whatever budget survived admission becomes the anytime
        # budget, so an accepted request always answers in time
        config = replace(config,
                         deadline_s=request.deadline.remaining())
    if "repository" in body and "network" in body:
        raise OptionError(
            "pass either repository or network, not both")
    if "repository" in body:
        data: object = wire.graphs_from_payload(body["repository"],
                                                "repository")
    elif "network" in body:
        if not isinstance(body["network"], dict):
            raise PipelineError("network must be a graph object")
        data = graph_from_dict(body["network"])
    else:
        snapshot = service.snapshots.current()
        data = snapshot.network if snapshot.is_network \
            else snapshot.repository
    if isinstance(data, Graph):
        result = run_tattoo(data, config)
        generator = "tattoo"
    else:
        result = run_catapult(list(data), config)
        generator = "catapult"
    published = service.publish_build(data, result.patterns,
                                      generator)
    response = wire.build_body(result)
    response["pipeline"] = generator
    response["snapshot"] = published.snapshot_id
    return response


# ----------------------------------------------------------------- query


def handle_query(service, request: Request) -> Dict[str, object]:
    body = request.body
    session = None
    if body.get("session") is not None:
        session = service.sessions.get(body["session"])
    explicit = _optional_str(body, "snapshot")
    if explicit is not None:
        snapshot = service.snapshots.resolve(explicit)
    elif session is not None:
        snapshot = session.snapshot
    else:
        snapshot = service.snapshots.current()
    if body.get("query") is not None:
        if not isinstance(body["query"], dict):
            raise OptionError("query must be a graph object")
        query = graph_from_dict(body["query"])
    elif session is not None:
        with session.lock:
            # private copy: the engine must not observe concurrent
            # session edits mid-match
            query = graph_from_dict(graph_to_dict(
                session.builder.query))
    else:
        raise OptionError("pass a query graph or a session id")
    max_embeddings = _int_field(body, "max_embeddings",
                                service.pipeline.max_embeddings)
    max_matches = body.get("max_matches")
    if max_matches is not None:
        max_matches = _int_field(body, "max_matches", 0)
    results = snapshot.engine.run(
        query, max_embeddings_per_graph=max_embeddings,
        max_matches=max_matches)
    return {
        "snapshot": snapshot.snapshot_id,
        "graphs_searched": results.graphs_searched,
        "graphs_pruned": results.graphs_pruned,
        "match_count": results.match_count(),
        "embedding_count": results.embedding_count(),
        "matches": [
            {
                "graph_index": match.graph_index,
                "graph_name": match.graph.name,
                "embeddings": wire.embeddings_to_list(
                    match.embeddings),
            }
            for match in results.matches
        ],
    }


# --------------------------------------------------------------- suggest


def handle_suggest(service, request: Request) -> Dict[str, object]:
    body = request.body
    top_k = _int_field(body, "top_k", 5)
    if body.get("session") is not None:
        session = service.sessions.get(body["session"])
        snapshot = session.snapshot
        node = _int_field(body, "node", -1)
        with session.lock:
            ranked = snapshot.suggester.suggest_for_query(
                session.builder, node, top_k=top_k,
                answerable_only=bool(body.get("answerable_only",
                                              False)))
    elif body.get("label") is not None:
        snapshot = service.snapshots.resolve(
            _optional_str(body, "snapshot"))
        ranked = snapshot.suggester.suggest_extensions(
            str(body["label"]), top_k=top_k)
    else:
        raise OptionError(
            "pass a session id and node, or a node label")
    return {
        "snapshot": snapshot.snapshot_id,
        "suggestions": [
            {"edge_label": edge_label, "node_label": node_label,
             "count": count}
            for edge_label, node_label, count in ranked
        ],
    }


# -------------------------------------------------------------- sessions


def handle_session_create(service,
                          request: Request) -> Dict[str, object]:
    snapshot = service.snapshots.resolve(
        _optional_str(request.body, "snapshot"))
    session = service.sessions.create(snapshot)
    return session.state()


def handle_session_get(service, request: Request) -> Dict[str, object]:
    return service.sessions.get(request.params["session_id"]).state()


def handle_session_actions(service,
                           request: Request) -> Dict[str, object]:
    session = service.sessions.get(request.params["session_id"])
    actions = request.body.get("actions")
    if not isinstance(actions, list) or not actions:
        raise OptionError("actions must be a non-empty list")
    results: List[object] = []
    with session.lock:
        for action in actions:
            results.append(session.apply_action(action))
    state = session.state()
    state["results"] = results
    return state


def handle_session_delete(service,
                          request: Request) -> Dict[str, object]:
    session_id = request.params["session_id"]
    service.sessions.remove(session_id)
    return {"session": session_id, "deleted": True}


# -------------------------------------------------------------- helpers


def _optional_str(body: Dict[str, object], key: str):
    value = body.get(key)
    return None if value is None else str(value)


def _int_field(body: Dict[str, object], key: str, default: int) -> int:
    value = body.get(key, default)
    try:
        return int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise OptionError(f"{key} must be an integer, "
                          f"got {value!r}") from exc


def _list_of_dicts(value: object, context: str) -> List[Dict[str, object]]:
    if not isinstance(value, list) \
            or any(not isinstance(item, dict) for item in value):
        raise OptionError(f"{context} must be a list of graph objects")
    return value


def _string_list(value: object, context: str) -> List[str]:
    if not isinstance(value, list) \
            or any(not isinstance(item, str) for item in value):
        raise OptionError(f"{context} must be a list of names")
    return value
