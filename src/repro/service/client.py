"""A minimal stdlib HTTP client for the pattern service.

Used by the test suite, ``make serve-smoke``, and anyone scripting
against a running ``repro-vqi serve``.  Every call returns
``(status, body)`` — non-2xx responses are returned, not raised,
because the service's structured error bodies are part of its
contract and callers assert on them.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, Mapping, Optional, Tuple

Reply = Tuple[int, Dict[str, object]]


class ServiceClient:
    """Talk ``repro/v1`` to a host:port."""

    def __init__(self, host: str, port: int,
                 timeout_s: float = 30.0) -> None:
        self.base_url = f"http://{host}:{port}"
        self.timeout_s = timeout_s

    def request(self, method: str, path: str,
                body: Optional[Mapping[str, object]] = None,
                headers: Optional[Mapping[str, str]] = None) -> Reply:
        data = None
        send_headers = dict(headers or {})
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            send_headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=send_headers,
            method=method.upper())
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout_s) as reply:
                return reply.status, json.loads(reply.read())
        except urllib.error.HTTPError as error:
            payload = error.read()
            try:
                parsed = json.loads(payload)
            except json.JSONDecodeError:
                parsed = {"error": {"type": "TransportError",
                                    "message": payload.decode(
                                        "utf-8", "replace"),
                                    "status": error.code}}
            return error.code, parsed

    # -- conveniences mirroring the route table ----------------------
    def get(self, path: str,
            headers: Optional[Mapping[str, str]] = None) -> Reply:
        return self.request("GET", path, headers=headers)

    def post(self, path: str, body: Mapping[str, object],
             headers: Optional[Mapping[str, str]] = None) -> Reply:
        return self.request("POST", path, body=body, headers=headers)

    def delete(self, path: str) -> Reply:
        return self.request("DELETE", path)

    def health(self) -> Reply:
        return self.get("/v1/health")

    def metrics(self) -> Reply:
        return self.get("/v1/metrics")

    def patterns(self, snapshot: Optional[str] = None) -> Reply:
        suffix = f"?snapshot={snapshot}" if snapshot else ""
        return self.get(f"/v1/patterns{suffix}")

    def build(self, body: Optional[Mapping[str, object]] = None,
              deadline_s: Optional[float] = None) -> Reply:
        headers = {"X-Repro-Deadline": str(deadline_s)} \
            if deadline_s is not None else None
        return self.post("/v1/build", body or {}, headers=headers)

    def query(self, body: Mapping[str, object]) -> Reply:
        return self.post("/v1/query", body)

    def suggest(self, body: Mapping[str, object]) -> Reply:
        return self.post("/v1/suggest", body)

    def create_session(self,
                       snapshot: Optional[str] = None) -> Reply:
        body: Dict[str, object] = {}
        if snapshot is not None:
            body["snapshot"] = snapshot
        return self.post("/v1/sessions", body)

    def session_actions(self, session_id: str,
                        actions: list) -> Reply:
        return self.post(f"/v1/sessions/{session_id}/actions",
                         {"actions": actions})

    def maintain(self, body: Mapping[str, object]) -> Reply:
        return self.post("/v1/patterns/maintain", body)

    def __repr__(self) -> str:
        return f"<ServiceClient {self.base_url}>"
