"""Immutable engine snapshots: the service's read path.

The concurrency contract of :mod:`repro.service` is built here.  A
:class:`EngineSnapshot` freezes everything a read request needs — the
repository (or network), the selected pattern set, a
:class:`repro.query.engine.QueryEngine`, and a
:class:`repro.query.suggest.QuerySuggester` — and pins each data
graph's :meth:`repro.graph.graph.Graph.version` at freeze time.
Queries and suggestions serve from whichever snapshot they pinned;
builds and MIDAS maintenance construct a *new* snapshot and swap the
current pointer, so maintenance never blocks a read and an in-flight
read never observes a half-applied batch.

The :class:`SnapshotManager` keeps a bounded history of recent
snapshots addressable by id (``snap-3``), so a client — or the
request-log replay — can explicitly pin a query to the state it saw:
the snapshot-isolation test asserts a query pinned to ``snap-1`` is
byte-identical before and after a maintenance batch lands.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import MaintenanceError, UnknownNameError
from repro.graph.graph import Graph
from repro.patterns.base import Pattern, PatternSet
from repro.query.engine import QueryEngine
from repro.query.suggest import QuerySuggester

#: Snapshots retained for explicit pinning, beyond the current one.
DEFAULT_RETAIN = 4


class EngineSnapshot:
    """One frozen, read-only view of the service's engine state."""

    __slots__ = ("snapshot_id", "repository", "network", "patterns",
                 "engine", "suggester", "versions", "generator")

    def __init__(self, snapshot_id: str,
                 data: Union[Graph, Sequence[Graph]],
                 patterns: PatternSet, generator: str) -> None:
        self.snapshot_id = snapshot_id
        self.generator = generator
        if isinstance(data, Graph):
            self.network: Optional[Graph] = data
            self.repository: Tuple[Graph, ...] = (data,)
        else:
            self.network = None
            self.repository = tuple(data)
        self.patterns = patterns
        self.engine = QueryEngine(self.repository)
        self.suggester = QuerySuggester(self.repository)
        self.versions: Tuple[int, ...] = tuple(
            graph.version() for graph in self.repository)

    @property
    def is_network(self) -> bool:
        return self.network is not None

    def pattern_at(self, index: int) -> Pattern:
        panel = list(self.patterns)
        if not 0 <= index < len(panel):
            raise UnknownNameError(
                f"pattern index {index} out of range "
                f"(snapshot {self.snapshot_id} holds {len(panel)})")
        return panel[index]

    def verify_pinned(self) -> bool:
        """True while no pinned graph has been mutated since freeze.

        The data graphs a snapshot shares with its successors are
        never mutated in place (maintenance adds and removes whole
        graphs), so this stays True for the snapshot's lifetime; a
        False return means a caller broke the immutability contract
        and the snapshot's cached engine state may be stale.
        """
        return all(graph.version() == version
                   for graph, version
                   in zip(self.repository, self.versions))

    def require_pinned(self) -> None:
        if not self.verify_pinned():
            raise MaintenanceError(
                f"snapshot {self.snapshot_id} observed an in-place "
                "graph mutation; data graphs are immutable once "
                "published to a snapshot")

    def __repr__(self) -> str:
        kind = "network" if self.is_network else \
            f"repository[{len(self.repository)}]"
        return (f"<EngineSnapshot {self.snapshot_id} {kind} "
                f"patterns={len(self.patterns)}>")


class SnapshotManager:
    """The current snapshot plus a bounded pinnable history.

    ``swap`` is the only mutation and takes the manager lock; reads
    (``current`` / ``resolve``) are lock-free attribute loads, which
    is exactly why reads never wait on maintenance.  Snapshot ids are
    a deterministic counter (``snap-0``, ``snap-1``, ...) so a
    request-log replay regenerates the same ids in the same order.
    """

    def __init__(self, retain: int = DEFAULT_RETAIN) -> None:
        self._retain = max(1, retain)
        self._lock = threading.Lock()
        self._counter = 0
        self._current: Optional[EngineSnapshot] = None
        self._history: Dict[str, EngineSnapshot] = {}
        self._order: List[str] = []

    def swap(self, data: Union[Graph, Sequence[Graph]],
             patterns: PatternSet, generator: str) -> EngineSnapshot:
        """Freeze a new snapshot and make it current."""
        with self._lock:
            snapshot = EngineSnapshot(f"snap-{self._counter}", data,
                                      patterns, generator)
            self._counter += 1
            self._current = snapshot
            self._history[snapshot.snapshot_id] = snapshot
            self._order.append(snapshot.snapshot_id)
            while len(self._order) > self._retain:
                self._history.pop(self._order.pop(0))
            return snapshot

    def current(self) -> EngineSnapshot:
        snapshot = self._current
        if snapshot is None:
            raise MaintenanceError("the service has no snapshot yet")
        return snapshot

    def resolve(self, snapshot_id: Optional[str]) -> EngineSnapshot:
        """The pinned snapshot for an explicit id, else the current."""
        if snapshot_id is None:
            return self.current()
        snapshot = self._history.get(snapshot_id)
        if snapshot is None:
            raise UnknownNameError(
                f"snapshot {snapshot_id!r} is unknown or no longer "
                f"retained (the service keeps the last "
                f"{self._retain})")
        return snapshot

    def ids(self) -> List[str]:
        return list(self._order)

    def __repr__(self) -> str:
        return (f"<SnapshotManager retained={len(self._order)} "
                f"current={self._current and self._current.snapshot_id}>")
