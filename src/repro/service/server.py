"""HTTP glue: ``ThreadingHTTPServer`` around a PatternService.

Deliberately thin — the handler parses the request line, JSON-decodes
the body, hands everything to :meth:`repro.service.app.
PatternService.dispatch`, and writes the JSON response back.  All
routing, policy, and error mapping happens in the middleware chain;
the only errors handled here are transport-level (unreadable or
non-JSON bodies → 400 with the standard error shape).
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.errors import GraphInputError
from repro.service import wire
from repro.service.app import PatternService

#: Cap on accepted request bodies (a repository POST is bounded; a
#: gigabyte body is a mistake or an attack).
MAX_BODY_BYTES = 64 * 1024 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """One thread per request; requests share the PatternService."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 service: PatternService) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Transport adapter from HTTP to ``PatternService.dispatch``."""

    protocol_version = "HTTP/1.1"
    server: ServiceHTTPServer

    # -- verbs ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        self._serve()

    def do_POST(self) -> None:  # noqa: N802
        self._serve()

    def do_DELETE(self) -> None:  # noqa: N802
        self._serve()

    # -- plumbing ------------------------------------------------------
    def _serve(self) -> None:
        try:
            body = self._read_body()
        except GraphInputError as error:
            self._write(400, wire.error_body(error, 400))
            return
        split = urlsplit(self.path)
        if body is None:
            body = {}
        # query-string params become body defaults so GETs can pin
        # snapshots (?snapshot=snap-1) without carrying a body
        for key, value in parse_qsl(split.query):
            body.setdefault(key, value)
        response = self.server.service.dispatch(
            self.command, split.path, body=body,
            headers=dict(self.headers.items()))
        self._write(response.status, response.body, response.headers)

    def _read_body(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return None
        if length > MAX_BODY_BYTES:
            raise GraphInputError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte cap")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise GraphInputError(
                f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise GraphInputError(
                "request body must be a JSON object")
        return payload

    def _write(self, status: int, body: dict,
               headers: Optional[dict] = None) -> None:
        payload = wire.dumps(body)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: object) -> None:
        """Quiet by default; per-request metrics live in repro.obs."""


def create_server(service: PatternService, host: str = "127.0.0.1",
                  port: int = 0) -> ServiceHTTPServer:
    """A bound, not-yet-serving server (``port=0`` picks a free
    port; read it back from ``server.server_address``)."""
    return ServiceHTTPServer((host, port), service)


def serve_in_thread(service: PatternService, host: str = "127.0.0.1",
                    port: int = 0
                    ) -> Tuple[ServiceHTTPServer, threading.Thread]:
    """Start serving on a daemon thread; returns (server, thread).

    The test-and-tooling entry point: callers shut down with
    ``server.shutdown(); server.server_close()``.
    """
    server = create_server(service, host, port)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-service", daemon=True)
    thread.start()
    return server, thread


#: Bound on draining in-flight requests at shutdown; each request is
#: additionally bounded by its own admission deadline.
DRAIN_TIMEOUT_S = 10.0


def shutdown_gracefully(server: ServiceHTTPServer,
                        drain_timeout_s: float = DRAIN_TIMEOUT_S
                        ) -> bool:
    """Stop accepting, drain in-flight requests, flush and close.

    The shutdown half of the durability story: requests already
    dispatched run to completion (bounded by ``drain_timeout_s`` and
    their own deadlines), the request log is flushed + fsync'd by
    its last append, and the store backend's handles close cleanly.
    Returns the drain verdict (False when requests were abandoned to
    the timeout).
    """
    server.shutdown()
    drained = server.service.drain(drain_timeout_s)
    server.server_close()
    server.service.close()
    return drained


def serve(service: PatternService, host: str = "127.0.0.1",
          port: int = 8080) -> None:
    """Serve until interrupted (the ``repro-vqi serve`` loop).

    SIGTERM and KeyboardInterrupt both exit through
    :func:`shutdown_gracefully`: no new requests, in-flight ones
    drain, the request log and store are flushed before the process
    gives up the port.
    """
    server = create_server(service, host, port)

    def _on_sigterm(signum, frame) -> None:
        # break serve_forever's poll loop from the main thread's
        # signal context; the finally block does the orderly exit
        threading.Thread(target=server.shutdown,
                         name="repro-sigterm", daemon=True).start()

    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        server.serve_forever()
    finally:
        # reached on SIGTERM, KeyboardInterrupt (the interactive stop
        # signal), or any serve_forever failure: drain, then release
        # the port and the log
        signal.signal(signal.SIGTERM, previous)
        shutdown_gracefully(server)


__all__ = [
    "DRAIN_TIMEOUT_S",
    "MAX_BODY_BYTES",
    "ServiceHTTPServer",
    "ServiceRequestHandler",
    "create_server",
    "serve",
    "serve_in_thread",
    "shutdown_gracefully",
]
