"""JSONL request log: every exchange, replayable against the API.

Each served request appends one JSON line — the ``repro/v1`` wire
schema tag, the request (method, path, body), and the response
(status, body, route, replay eligibility) — in completion order
under a lock, so a log is a faithful serial witness of one service
lifetime even when traffic was concurrent.

:func:`replay` drives the log back through a service's
:meth:`~repro.service.app.PatternService.dispatch` (with policing
off) and compares responses after :func:`repro.service.wire.
strip_volatile` normalisation.  Routes marked non-replayable
(health, metrics — live process state) and responses produced by
load policy (429 rate limits, 503 sheds) are recorded but not
compared: a replay verifies *handler determinism*, and load
artifacts are properties of the original run's traffic, not of the
API.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from typing import Dict, List, Optional

from repro.errors import GraphInputError
from repro.obs.export import WIRE_SCHEMA
from repro.service import wire

#: Statuses produced by load policy rather than handler logic.
POLICY_STATUSES = frozenset({429, 503})


class RequestLog:
    """Append-only JSONL log of served requests."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._handle = open(path, "a", encoding="utf-8")
        self.entries_written = 0

    def append(self, request, response) -> None:
        route = request.route
        entry = {
            "schema": WIRE_SCHEMA,
            "request_id": request.request_id,
            "method": request.method,
            "path": request.path,
            "body": request.body,
            "status": response.status,
            "response": response.body,
            "route": route.name if route is not None else None,
            "replayable": route.replayable if route is not None
            else True,
        }
        line = json.dumps(entry, sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            # flush + fsync per record: the replay log is a durability
            # artifact, and a buffered tail lost to a crash would
            # silently shorten the serial witness it claims to be
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self.entries_written += 1

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


def read_log(path: str) -> List[Dict[str, object]]:
    """Parse a JSONL request log; malformed lines raise
    :class:`repro.errors.GraphInputError` with line context.

    One exception: a malformed *final* line that the file ends on
    without a newline is the signature of a crash mid-append — that
    record never finished becoming durable, so it is skipped with a
    warning instead of failing the whole replay.
    """
    entries: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    lines = text.split("\n")
    torn_tail = bool(lines) and lines[-1] != ""
    if not torn_tail:
        lines = lines[:-1]
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        truncated_last = torn_tail and number == len(lines)
        try:
            entry = json.loads(line)
            if not isinstance(entry, dict):
                raise GraphInputError(
                    "request-log line is not an object",
                    path=path, line=number)
        except (json.JSONDecodeError, GraphInputError) as exc:
            if truncated_last:
                warnings.warn(
                    f"{path}:{number}: skipping truncated final "
                    f"request-log line ({exc})", stacklevel=2)
                continue
            if isinstance(exc, GraphInputError):
                raise
            raise GraphInputError(
                f"malformed request-log line: {exc}",
                path=path, line=number) from exc
        entries.append(entry)
    return entries


class ReplayMismatch:
    """One divergence between a logged and a replayed response."""

    __slots__ = ("index", "path", "logged", "replayed")

    def __init__(self, index: int, path: str, logged: object,
                 replayed: object) -> None:
        self.index = index
        self.path = path
        self.logged = logged
        self.replayed = replayed

    def __repr__(self) -> str:
        return f"<ReplayMismatch #{self.index} {self.path}>"


class ReplayReport:
    """Outcome of one full log replay."""

    __slots__ = ("total", "compared", "skipped", "mismatches")

    def __init__(self) -> None:
        self.total = 0
        self.compared = 0
        self.skipped = 0
        self.mismatches: List[ReplayMismatch] = []

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def __repr__(self) -> str:
        state = "ok" if self.ok else \
            f"{len(self.mismatches)} mismatch(es)"
        return (f"<ReplayReport {self.compared}/{self.total} "
                f"compared, {self.skipped} skipped, {state}>")


def replay(path: str, service,
           entries: Optional[List[Dict[str, object]]] = None
           ) -> ReplayReport:
    """Re-drive a request log against ``service`` and diff responses.

    ``service`` should be a fresh instance constructed the same way
    as the one that wrote the log (same data, same configs, same
    seed): state-changing requests then regenerate the same snapshot
    ids in log order, and every replayable response must match its
    logged counterpart after volatile-field stripping.
    """
    report = ReplayReport()
    for index, entry in enumerate(entries if entries is not None
                                  else read_log(path)):
        report.total += 1
        if not entry.get("replayable", True) \
                or entry.get("status") in POLICY_STATUSES:
            report.skipped += 1
            continue
        body = entry.get("body")
        response = service.dispatch(
            str(entry.get("method", "GET")),
            str(entry.get("path", "/")),
            body=dict(body) if isinstance(body, dict) else {},
            policed=False)
        logged = wire.strip_volatile(entry.get("response"))
        replayed = wire.strip_volatile(response.body)
        report.compared += 1
        if logged != replayed \
                or entry.get("status") != response.status:
            report.mismatches.append(ReplayMismatch(
                index, str(entry.get("path")),
                {"status": entry.get("status"), "body": logged},
                {"status": response.status, "body": replayed}))
    return report
