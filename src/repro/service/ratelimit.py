"""Token-bucket rate limiting for the pattern service.

One bucket guards the whole server (the service is a single shared
engine; per-client fairness is a deployment concern, not a library
one).  Refill is computed lazily from ``time.monotonic`` deltas under
a lock, so the bucket is exact under the threading server's
concurrency and costs one lock acquisition per request.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.errors import OptionError


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` cap.

    ``acquire()`` returns ``None`` when a token was taken and the
    positive seconds-until-a-token-exists otherwise — the caller
    turns that into a 429 with ``Retry-After``.  ``rate=None``
    disables limiting entirely (every acquire succeeds), which is the
    replay path's mode: a request log replays at full speed.
    """

    __slots__ = ("rate", "burst", "_tokens", "_updated", "_lock")

    def __init__(self, rate: Optional[float], burst: int = 1) -> None:
        if rate is not None and rate <= 0:
            raise OptionError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise OptionError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._tokens = float(burst)
        self._updated = time.monotonic()
        self._lock = threading.Lock()

    def acquire(self) -> Optional[float]:
        """Take one token; ``None`` on success, retry-after seconds
        when the bucket is empty."""
        if self.rate is None:
            return None
        with self._lock:
            now = time.monotonic()
            self._tokens = min(float(self.burst),
                               self._tokens
                               + (now - self._updated) * self.rate)
            self._updated = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return None
            return (1.0 - self._tokens) / self.rate

    def __repr__(self) -> str:
        if self.rate is None:
            return "<TokenBucket unlimited>"
        return (f"<TokenBucket rate={self.rate}/s burst={self.burst} "
                f"tokens={self._tokens:.2f}>")
