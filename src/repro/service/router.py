"""Route table: (method, path template) → handler, one per concern.

Templates are literal segments plus ``{name}`` captures
(``/v1/sessions/{session_id}/actions``).  Matching is exact on
segment count, captures are returned as string params, and a path
that matches no route raises :class:`repro.errors.RouteNotFound`
(→ 404 through the error-mapping middleware).

Each route carries two service-policy flags the middleware chain
reads: ``heavy`` marks state-changing work subject to admission
control (builds, maintenance), and ``replayable`` marks routes whose
responses are deterministic functions of service state, which is the
set the request-log replay verifies (health and metrics report live
process state and are excluded).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import RouteNotFound

Handler = Callable[..., Dict[str, object]]


class Route:
    """One routing-table entry."""

    __slots__ = ("method", "template", "segments", "handler", "name",
                 "heavy", "replayable")

    def __init__(self, method: str, template: str, handler: Handler,
                 name: str, heavy: bool = False,
                 replayable: bool = True) -> None:
        self.method = method.upper()
        self.template = template
        self.segments = [segment for segment
                         in template.strip("/").split("/") if segment]
        self.handler = handler
        self.name = name
        self.heavy = heavy
        self.replayable = replayable

    def match(self, method: str,
              parts: List[str]) -> Optional[Dict[str, str]]:
        """Captured params on a match, ``None`` otherwise."""
        if method.upper() != self.method \
                or len(parts) != len(self.segments):
            return None
        params: Dict[str, str] = {}
        for expected, actual in zip(self.segments, parts):
            if expected.startswith("{") and expected.endswith("}"):
                params[expected[1:-1]] = actual
            elif expected != actual:
                return None
        return params

    def __repr__(self) -> str:
        return f"<Route {self.method} {self.template} -> {self.name}>"


class Router:
    """Ordered route table with first-match dispatch."""

    def __init__(self) -> None:
        self.routes: List[Route] = []

    def add(self, method: str, template: str, handler: Handler,
            name: str, heavy: bool = False,
            replayable: bool = True) -> None:
        self.routes.append(Route(method, template, handler, name,
                                 heavy=heavy, replayable=replayable))

    def resolve(self, method: str,
                path: str) -> Tuple[Route, Dict[str, str]]:
        parts = [segment for segment
                 in path.split("?", 1)[0].strip("/").split("/")
                 if segment]
        for route in self.routes:
            params = route.match(method, parts)
            if params is not None:
                return route, params
        raise RouteNotFound(method, path)

    def __repr__(self) -> str:
        return f"<Router routes={len(self.routes)}>"
