"""Per-session query-builder state.

Each interactive client session owns a :class:`repro.query.builder.
QueryBuilder` (the Query Panel model) pinned to the engine snapshot
that was current when the session opened — mid-session maintenance
never changes what a user's suggestions or pattern drops mean.
Actions arrive over the wire as JSON objects mirroring
:mod:`repro.query.actions` and are applied under the session's lock,
so concurrent requests against one session serialize while distinct
sessions proceed in parallel.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.errors import OptionError, UnknownNameError
from repro.graph.io import graph_to_dict
from repro.query.builder import QueryBuilder
from repro.service.snapshot import EngineSnapshot


class Session:
    """One client's query-building state."""

    __slots__ = ("session_id", "builder", "snapshot", "lock")

    def __init__(self, session_id: str,
                 snapshot: EngineSnapshot) -> None:
        self.session_id = session_id
        self.builder = QueryBuilder()
        self.snapshot = snapshot
        self.lock = threading.Lock()

    def apply_action(self, action: Dict[str, object]) -> object:
        """Apply one wire action; returns the action-specific result.

        The ``op`` field selects the action; arguments mirror the
        :class:`QueryBuilder` convenience methods.  ``add_pattern``
        takes ``index`` into the session snapshot's canned panel —
        the wire never ships pattern graphs it already published.
        """
        if not isinstance(action, dict):
            raise OptionError("each action must be a JSON object")
        op = action.get("op")
        if op == "add_node":
            return self.builder.add_node(str(action.get("label", "")))
        if op == "add_edge":
            self.builder.add_edge(int(action["u"]), int(action["v"]),
                                  str(action.get("label", "")))
            return None
        if op == "add_pattern":
            pattern = self.snapshot.pattern_at(int(action["index"]))
            mapping = self.builder.add_pattern(pattern)
            # pattern-node -> query-node pairs; JSON objects cannot
            # key on ints, so ship the same pair-list shape
            # embeddings use
            return [[u, v] for u, v in sorted(mapping.items())]
        if op == "set_node_label":
            self.builder.query.set_node_label(
                int(action["node"]), str(action.get("label", "")))
            return None
        if op == "set_edge_label":
            self.builder.query.set_edge_label(
                int(action["u"]), int(action["v"]),
                str(action.get("label", "")))
            return None
        if op == "merge_nodes":
            self.builder.merge_nodes(int(action["keep"]),
                                     int(action["remove"]))
            return None
        if op == "delete_node":
            self.builder.query.remove_node(int(action["node"]))
            return None
        if op == "delete_edge":
            self.builder.query.remove_edge(int(action["u"]),
                                           int(action["v"]))
            return None
        raise OptionError(f"unknown action op {op!r}")

    def state(self) -> Dict[str, object]:
        """The session's wire-visible state."""
        return {
            "session": self.session_id,
            "snapshot": self.snapshot.snapshot_id,
            "query": graph_to_dict(self.builder.query),
            "steps": self.builder.step_count(),
            "actions": self.builder.action_counts(),
        }

    def __repr__(self) -> str:
        return (f"<Session {self.session_id} "
                f"snapshot={self.snapshot.snapshot_id} "
                f"steps={self.builder.step_count()}>")


class SessionStore:
    """Sessions keyed by deterministic ids (``s-1``, ``s-2``, ...)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counter = 0
        self._sessions: Dict[str, Session] = {}

    def create(self, snapshot: EngineSnapshot) -> Session:
        with self._lock:
            self._counter += 1
            session = Session(f"s-{self._counter}", snapshot)
            self._sessions[session.session_id] = session
            return session

    def get(self, session_id: object) -> Session:
        session = self._sessions.get(str(session_id))
        if session is None:
            raise UnknownNameError(
                f"session {session_id!r} does not exist")
        return session

    def remove(self, session_id: object) -> None:
        with self._lock:
            if self._sessions.pop(str(session_id), None) is None:
                raise UnknownNameError(
                    f"session {session_id!r} does not exist")

    def count(self) -> int:
        return len(self._sessions)

    def ids(self) -> List[str]:
        return sorted(self._sessions,
                      key=lambda sid: int(sid.split("-", 1)[1]))

    def __repr__(self) -> str:
        return f"<SessionStore sessions={self.count()}>"
