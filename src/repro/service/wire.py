"""Wire format of the pattern service: ``repro/v1`` JSON bodies.

Every response body the service emits is stamped with the same
``schema: "repro/v1"`` tag the :mod:`repro.obs.export` trace envelope
carries, so a traced service request and a traced library run are the
same schema to consumers.  This module is the *only* place request
and response dicts are shaped: handlers build results with the
functions here, and the byte-identity contract the service makes —
a ``/v1/build`` body equals the serialization of the corresponding
direct :func:`repro.core.pipeline.run_catapult` /
:func:`~repro.core.pipeline.run_tattoo` call — holds because both
sides go through :func:`build_body`.

:func:`strip_volatile` is the comparison normaliser: it removes the
per-request and wall-clock fields (request id, snapshot id, stage
timings, span durations) so deterministic replays and
workers-1-vs-4 runs compare byte-identical, mirroring
:func:`repro.obs.strip_wall_clock` for trace records.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core.pipeline import PipelineConfig
from repro.errors import GraphInputError, OptionError
from repro.graph.graph import Graph
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.obs.export import WIRE_SCHEMA, trace_envelope
from repro.patterns.base import Pattern, PatternBudget, PatternSet
from repro.patterns.topologies import classify_topology

#: Keys stripped by :func:`strip_volatile` — everything that varies
#: between two byte-identical *logical* responses: identifiers minted
#: per request or per state change, and wall-clock measurements.
VOLATILE_KEYS = frozenset({
    "request_id", "snapshot", "timings", "duration", "elapsed_s",
    "retry_after_s", "uptime_s", "latency_s", "session",
})


def envelope(body: Mapping[str, object],
             request_id: Optional[str] = None) -> Dict[str, object]:
    """A response body in the versioned wire shape."""
    data: Dict[str, object] = {"schema": WIRE_SCHEMA}
    if request_id is not None:
        data["request_id"] = request_id
    data.update(body)
    return data


def error_body(error: BaseException, status: int,
               request_id: Optional[str] = None) -> Dict[str, object]:
    """The structured body every non-2xx response carries."""
    detail: Dict[str, object] = {
        "type": type(error).__name__,
        "message": str(error),
        "status": status,
    }
    retry_after = getattr(error, "retry_after_s", None)
    if retry_after is not None:
        detail["retry_after_s"] = retry_after
    completion = getattr(error, "completion", None)
    if completion is not None:
        detail["completion"] = completion
    return envelope({"error": detail}, request_id)


def pattern_to_dict(pattern: Pattern) -> Dict[str, object]:
    """One canned pattern: its graph, provenance, and identity code."""
    return {
        "graph": graph_to_dict(pattern.graph),
        "source": pattern.source,
        "code": pattern.code,
        "topology": classify_topology(pattern.graph).value,
    }


def patterns_to_list(patterns: PatternSet) -> List[Dict[str, object]]:
    return [pattern_to_dict(pattern) for pattern in patterns]


def build_body(result: Any) -> Dict[str, object]:
    """The ``/v1/build`` response payload for a pipeline result.

    A pure function of the :class:`repro.core.pipeline.
    PipelineResult` — the service and a direct library call produce
    identical payloads from identical results (`strip_volatile`
    handles the wall-clock ``timings`` inside ``stats``).
    """
    body: Dict[str, object] = {
        "degraded": bool(result.degraded),
        "stats": result.stats,
        "patterns": patterns_to_list(result.patterns),
    }
    if result.trace is not None:
        # the same versioned envelope ``repro-vqi build --trace``
        # writes, so a traced service response and a traced library
        # run validate against one schema (tests/trace_schema.py)
        body["trace"] = trace_envelope([result.trace])
    return body


def graphs_from_payload(payload: object,
                        context: str) -> List[Graph]:
    """Parse a list of graph dicts from a request body field."""
    if not isinstance(payload, list) or not payload:
        raise GraphInputError(
            f"{context} must be a non-empty list of graph objects")
    graphs = []
    for index, item in enumerate(payload):
        if not isinstance(item, dict):
            raise GraphInputError(
                f"{context}[{index}] is not a graph object")
        graphs.append(graph_from_dict(item))
    return graphs


def config_from_payload(payload: object) -> PipelineConfig:
    """A :class:`PipelineConfig` from the request body's ``config``.

    The wire shape mirrors the dataclass: ``budget`` is
    ``{"max_patterns": k, "min_size": n, "max_size": m}``, everything
    else maps 1:1 (``options`` stays a plain mapping).  Unknown keys
    raise :class:`repro.errors.OptionError` → HTTP 400, the same
    validation contract ``from_pipeline`` applies to options.
    """
    if payload is None:
        payload = {}
    if not isinstance(payload, dict):
        raise OptionError("config must be a JSON object")
    data = dict(payload)
    budget_data = data.pop("budget", None)
    budget = None
    if budget_data is not None:
        if not isinstance(budget_data, dict):
            raise OptionError("config.budget must be a JSON object")
        try:
            budget = PatternBudget(
                int(budget_data["max_patterns"]),
                min_size=int(budget_data.get("min_size", 4)),
                max_size=int(budget_data.get("max_size", 8)))
        except (KeyError, TypeError, ValueError) as exc:
            raise OptionError(
                f"malformed config.budget: {exc}") from exc
    allowed = {"seed", "workers", "use_cache", "trace",
               "max_embeddings", "deadline_s", "max_retries",
               "options"}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise OptionError(
            "unknown config key(s): " + ", ".join(unknown))
    options = data.pop("options", {})
    if not isinstance(options, dict):
        raise OptionError("config.options must be a JSON object")
    try:
        return PipelineConfig(budget=budget, options=options, **data)
    except TypeError as exc:
        raise OptionError(f"malformed config: {exc}") from exc


def budget_to_dict(budget: PatternBudget) -> Dict[str, int]:
    return {"max_patterns": budget.max_patterns,
            "min_size": budget.min_size,
            "max_size": budget.max_size}


def embeddings_to_list(embeddings: Sequence[Mapping[int, int]]
                       ) -> List[List[List[int]]]:
    """Embeddings as sorted ``[query_node, data_node]`` pair lists
    (JSON objects cannot key on ints)."""
    return [[[q, t] for q, t in sorted(embedding.items())]
            for embedding in embeddings]


def strip_volatile(value: object) -> object:
    """Recursively drop per-request and wall-clock fields.

    The response-body counterpart of :func:`repro.obs.
    strip_wall_clock`: two logically identical responses — the same
    build at workers 1 and 4, a live request and its log replay —
    compare equal after stripping.  Dict keys in :data:`VOLATILE_KEYS`
    are removed at any depth; list structure is preserved.
    """
    if isinstance(value, dict):
        return {key: strip_volatile(item)
                for key, item in value.items()
                if key not in VOLATILE_KEYS}
    if isinstance(value, list):
        return [strip_volatile(item) for item in value]
    return value


def dumps(body: Mapping[str, object]) -> bytes:
    """Canonical response encoding: sorted keys, compact separators."""
    return (json.dumps(body, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")
