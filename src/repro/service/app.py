"""The pattern service: one long-lived engine, many concurrent users.

:class:`PatternService` is the HTTP-agnostic application object — it
owns a repository (or network), the selected pattern set, the
session store, and the snapshot history, and exposes exactly one
entry point, :meth:`PatternService.dispatch`, which the
:mod:`repro.service.server` glue, the request-log replay, and the
tests all drive.  The concurrency contract:

* **Reads never block.**  Queries, suggestions, pattern listings and
  session reads serve from an immutable :class:`repro.service.
  snapshot.EngineSnapshot` pinned by ``Graph.version()``; picking a
  snapshot is a lock-free pointer load.
* **Writes publish, never mutate.**  Builds and MIDAS maintenance
  construct their state off to the side and publish it with one
  atomic snapshot swap; concurrent reads keep the snapshot they
  started with.
* **Load sheds, work degrades.**  Admission control (middleware)
  sheds heavy requests with 503 + a zero-work
  :class:`~repro.resilience.CompletionReport` when slots are full or
  the client deadline already expired; *accepted* builds run under
  ``PipelineConfig.deadline_s`` and return 200 with
  ``degraded: true`` plus a per-stage report when the anytime
  pipelines stop early.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Union

from repro.core.pipeline import PipelineConfig, run_selection
from repro.datasets.evolving import UpdateBatch
from repro.errors import MaintenanceError
from repro.graph.graph import Graph
from repro.midas.maintenance import MaintenanceReport, Midas
from repro.patterns.base import PatternBudget
from repro.service.handlers import (
    handle_build,
    handle_health,
    handle_maintain,
    handle_metrics,
    handle_patterns,
    handle_query,
    handle_session_actions,
    handle_session_create,
    handle_session_delete,
    handle_session_get,
    handle_suggest,
)
from repro.service.middleware import (
    Request,
    Response,
    build_chain,
)
from repro.service.ratelimit import TokenBucket
from repro.service.requestlog import RequestLog
from repro.service.router import Router
from repro.service.snapshot import (
    DEFAULT_RETAIN,
    EngineSnapshot,
    SnapshotManager,
)
from repro.service.sessions import SessionStore
from repro.store.backends import (
    MemoryBackend,
    RecoveryReport,
    RepositoryBackend,
)

#: The budget a service built without one selects under.
DEFAULT_BUDGET = PatternBudget(8, min_size=4, max_size=8)


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level (not pipeline-level) tunables.

    ``rate``/``burst`` parameterize the shared token bucket
    (``rate=None`` disables limiting); ``max_inflight`` caps
    concurrently admitted heavy requests (builds, maintenance) —
    excess load sheds with 503 instead of queueing; ``request_log``
    is the JSONL replay log path (``None`` logs nothing);
    ``retain_snapshots`` bounds the pinnable snapshot history.
    """

    rate: Optional[float] = None
    burst: int = 64
    max_inflight: int = 1
    request_log: Optional[str] = None
    retain_snapshots: int = DEFAULT_RETAIN


def build_router() -> Router:
    """The ``/v1`` route table, one router entry per concern."""
    router = Router()
    router.add("GET", "/v1/health", handle_health, "health",
               replayable=False)
    router.add("GET", "/v1/metrics", handle_metrics, "metrics",
               replayable=False)
    router.add("GET", "/v1/patterns", handle_patterns, "patterns")
    router.add("POST", "/v1/patterns/maintain", handle_maintain,
               "maintain", heavy=True)
    router.add("POST", "/v1/build", handle_build, "build", heavy=True)
    router.add("POST", "/v1/query", handle_query, "query")
    router.add("POST", "/v1/suggest", handle_suggest, "suggest")
    router.add("POST", "/v1/sessions", handle_session_create,
               "session_create")
    router.add("GET", "/v1/sessions/{session_id}", handle_session_get,
               "session_get")
    router.add("POST", "/v1/sessions/{session_id}/actions",
               handle_session_actions, "session_actions")
    router.add("DELETE", "/v1/sessions/{session_id}",
               handle_session_delete, "session_delete")
    return router


class PatternService:
    """The application object behind every ``repro.service`` server."""

    def __init__(self, data: Union[Graph, Sequence[Graph]],
                 pipeline: Optional[PipelineConfig] = None,
                 config: Optional[ServiceConfig] = None,
                 backend: Optional[RepositoryBackend] = None) -> None:
        self.pipeline = pipeline or PipelineConfig(
            budget=DEFAULT_BUDGET)
        if self.pipeline.budget is None:
            raise MaintenanceError(
                "the service pipeline config needs a budget")
        self.config = config or ServiceConfig()
        self.backend = backend if backend is not None \
            else MemoryBackend()
        self.recovery: Optional[RecoveryReport] = None
        self.router = build_router()
        self.bucket = TokenBucket(self.config.rate, self.config.burst)
        self.heavy_slots = threading.BoundedSemaphore(
            max(1, self.config.max_inflight))
        self.sessions = SessionStore()
        self.snapshots = SnapshotManager(self.config.retain_snapshots)
        self.request_log = RequestLog(self.config.request_log) \
            if self.config.request_log else None
        self.engine_lock = threading.Lock()
        self._midas: Optional[Midas] = None
        self._midas_snapshot: Optional[str] = None
        self._id_lock = threading.Lock()
        self._request_counter = 0
        self._inflight = 0
        self._idle = threading.Event()
        self._idle.set()
        self._started = time.monotonic()
        self._chain = build_chain(self, self._terminal)
        self._boot(data)

    # ------------------------------------------------------- dispatch

    def dispatch(self, method: str, path: str,
                 body: Optional[Dict[str, object]] = None,
                 headers: Optional[Mapping[str, str]] = None,
                 policed: bool = True) -> Response:
        """Run one request through the full middleware chain.

        ``policed=False`` (the replay path) skips rate limiting and
        admission control but keeps everything else — ids, logging,
        error mapping, metrics — so a replayed request exercises the
        same handler code as the live one it reproduces.
        """
        request = Request(method, path, body=body, headers=headers,
                          policed=policed)
        with self._id_lock:
            self._inflight += 1
            self._idle.clear()
        try:
            return self._chain(request)
        finally:
            with self._id_lock:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.set()

    def _terminal(self, request: Request) -> Response:
        assert request.route is not None  # set by route_resolve
        return Response(200, request.route.handler(self, request))

    def next_request_id(self) -> str:
        with self._id_lock:
            self._request_counter += 1
            return f"r-{self._request_counter}"

    def uptime_s(self) -> float:
        return time.monotonic() - self._started

    # ---------------------------------------------------- state swaps

    def _boot(self, data: Union[Graph, Sequence[Graph]]) -> None:
        """Recover from the backend when it has state, else run the
        initial build and persist it.

        Recovery publishes the stored snapshot exactly as committed,
        then replays the WAL batches past the manifest watermark
        through the same apply path live maintenance uses — MIDAS
        quarantine semantics make re-application idempotent, so a
        batch that was half-committed lands in its post-batch state
        and one that never reached the WAL stays pre-batch.
        """
        recovered = self.backend.load()
        if recovered is None:
            self._initial_build(data)
            return
        self.recovery = recovered.report
        self.snapshots.swap(recovered.data, recovered.patterns,
                            recovered.generator)
        for seq, batch in recovered.pending:
            with self.engine_lock:
                self._apply_batch_locked(batch, wal_seq=seq)
            recovered.report.replayed_batches += 1

    def _initial_build(self, data: Union[Graph, Sequence[Graph]]
                       ) -> None:
        result = run_selection(data, self.pipeline)
        generator = "tattoo" if isinstance(data, Graph) else "catapult"
        self.publish_build(data, result.patterns, generator)

    def publish_build(self, data: Union[Graph, Sequence[Graph]],
                      patterns, generator: str) -> EngineSnapshot:
        """Publish a freshly built pattern set as the new snapshot
        (and persist it on a durable backend)."""
        snapshot = self.snapshots.swap(data, patterns, generator)
        self._commit_snapshot(snapshot)
        return snapshot

    def apply_maintenance(self, batch: UpdateBatch
                          ) -> "tuple[EngineSnapshot, MaintenanceReport]":
        """Write-ahead-log one MIDAS batch, apply it, publish, and
        persist — the one durable maintenance entry point.

        Ordering is the recovery contract: the batch is fsync'd to
        the WAL *before* any in-memory state changes, and the
        snapshot is published *before* the commit, so whether a
        crash (or commit failure) lands before or after any given
        step, the live state and the recovered state agree — both
        pre-batch, or both post-batch.
        """
        with self.engine_lock:
            wal_seq = self.backend.log_batch(batch)
            return self._apply_batch_locked(batch, wal_seq=wal_seq)

    def _apply_batch_locked(self, batch: UpdateBatch,
                            wal_seq: Optional[int] = None
                            ) -> "tuple[EngineSnapshot, MaintenanceReport]":
        """Apply an already-logged batch; callers hold
        ``engine_lock``."""
        try:
            engine = self.ensure_midas()
            report = engine.apply_batch(batch)
            snapshot = self.publish_midas()
            self._commit_snapshot(snapshot, wal_seq=wal_seq)
        finally:
            if self.backend.durable:
                # a durable service recreates the engine from the
                # repository on every batch, so live maintenance and
                # crash-recovery replay compute the identical
                # fresh-engine function of (repository, batch)
                self._midas = None
                self._midas_snapshot = None
        return snapshot, report

    def _commit_snapshot(self, snapshot: EngineSnapshot,
                         wal_seq: Optional[int] = None) -> None:
        self.backend.commit(snapshot.repository, snapshot.network,
                            snapshot.patterns, snapshot.generator,
                            wal_seq=wal_seq)

    def ensure_midas(self) -> Midas:
        """The maintenance engine over the *current* repository.

        Created lazily on first use and recreated whenever a build
        has republished the repository since (the engine's state
        describes graphs the service no longer serves).  Callers
        hold ``engine_lock``.
        """
        current = self.snapshots.current()
        if current.is_network:
            raise MaintenanceError(
                "maintenance needs a repository service; this "
                "service serves a single network")
        if self._midas is None \
                or self._midas_snapshot != current.snapshot_id:
            self._midas = Midas(list(current.repository),
                                self.pipeline)
            self._midas_snapshot = current.snapshot_id
        return self._midas

    def publish_midas(self) -> EngineSnapshot:
        """Publish the maintenance engine's state as the new
        snapshot.  Callers hold ``engine_lock``."""
        assert self._midas is not None
        snapshot = self.snapshots.swap(self._midas.graphs(),
                                       self._midas.patterns, "midas")
        self._midas_snapshot = snapshot.snapshot_id
        return snapshot

    def drain(self, timeout_s: float = 5.0) -> bool:
        """Wait until no request is mid-dispatch (bounded).

        The graceful-shutdown half of the deadline machinery: every
        in-flight request is already bounded by its own admission
        deadline, so a finite wait here suffices.  Returns False if
        requests were still running when the timeout expired.
        """
        return self._idle.wait(timeout_s)

    def close(self) -> None:
        if self.request_log is not None:
            self.request_log.close()
        self.backend.close()

    def __repr__(self) -> str:
        current = self.snapshots._current
        return (f"<PatternService snapshot="
                f"{current.snapshot_id if current else None} "
                f"sessions={self.sessions.count()}>")
