"""repro.service: pattern-as-a-service over the unified pipeline API.

The paper's thesis is that data-driven VQIs are *interactive
services*: a long-lived engine maintains a pattern set and answers
concurrent build/query/suggest requests from many users.  This
package is that layer — a stdlib-only
(:class:`http.server.ThreadingHTTPServer`) HTTP front end over the
library's public API, with:

* **router-per-concern handlers** — ``/v1/build``, ``/v1/query``,
  ``/v1/suggest``, ``/v1/patterns`` (+ ``/maintain``),
  ``/v1/sessions``, ``/v1/health``, ``/v1/metrics``;
* **a middleware chain** — request-id injection, token-bucket rate
  limiting, deadline-based admission control, typed-error→HTTP
  mapping from :mod:`repro.errors`, per-route metrics feeding
  :mod:`repro.obs`;
* **snapshot-isolated reads** — queries serve from immutable
  :class:`EngineSnapshot` views pinned by ``Graph.version()``, so
  MIDAS maintenance never blocks a read;
* **anytime writes** — builds run under
  ``PipelineConfig.deadline_s`` and degrade instead of failing;
  admission sheds excess load with 503 + a
  :class:`repro.resilience.CompletionReport`;
* **a replayable request log** — every exchange appends to JSONL in
  the ``repro/v1`` wire schema and replays through the same
  dispatch path.

Quickstart::

    from repro.core.pipeline import PipelineConfig
    from repro.patterns.base import PatternBudget
    from repro.service import PatternService, serve_in_thread

    service = PatternService(repository,
                             PipelineConfig(budget=PatternBudget(8)))
    server, thread = serve_in_thread(service, port=8080)

or from the command line: ``repro-vqi serve repo.lg --port 8080``.
"""

from repro.service.app import (
    DEFAULT_BUDGET,
    PatternService,
    ServiceConfig,
    build_router,
)
from repro.service.client import ServiceClient
from repro.service.middleware import (
    DEADLINE_HEADER,
    MIDDLEWARE_CHAIN,
    REQUEST_ID_HEADER,
    Request,
    Response,
    status_for,
)
from repro.service.ratelimit import TokenBucket
from repro.service.requestlog import (
    ReplayReport,
    RequestLog,
    read_log,
    replay,
)
from repro.service.router import Route, Router
from repro.service.server import (
    DRAIN_TIMEOUT_S,
    ServiceHTTPServer,
    create_server,
    serve,
    serve_in_thread,
    shutdown_gracefully,
)
from repro.service.sessions import Session, SessionStore
from repro.service.snapshot import EngineSnapshot, SnapshotManager
from repro.service.wire import (
    VOLATILE_KEYS,
    WIRE_SCHEMA,
    build_body,
    strip_volatile,
)

__all__ = [
    "DEADLINE_HEADER",
    "DEFAULT_BUDGET",
    "DRAIN_TIMEOUT_S",
    "EngineSnapshot",
    "MIDDLEWARE_CHAIN",
    "PatternService",
    "REQUEST_ID_HEADER",
    "ReplayReport",
    "Request",
    "RequestLog",
    "Response",
    "Route",
    "Router",
    "ServiceClient",
    "ServiceConfig",
    "ServiceHTTPServer",
    "Session",
    "SessionStore",
    "SnapshotManager",
    "TokenBucket",
    "VOLATILE_KEYS",
    "WIRE_SCHEMA",
    "build_body",
    "build_router",
    "create_server",
    "read_log",
    "replay",
    "serve",
    "serve_in_thread",
    "shutdown_gracefully",
    "status_for",
    "strip_volatile",
]
