"""Command-line interface: build, query, and render data-driven VQIs.

Usage (after ``pip install -e .``)::

    repro-vqi build repo.lg --spec out.json --svg panel.svg -k 8
    repro-vqi query repo.lg --pattern 0 --spec out.json
    repro-vqi inspect out.json
    repro-vqi summarize network.lg --spec out.json
    repro-vqi serve repo.lg --port 8080 --rate 50

The ``.lg`` input holds either a repository (many graphs) or a single
network (one graph); CATAPULT or TATTOO is dispatched accordingly,
mirroring :func:`repro.vqi.build_vqi`.  The pipeline flags
(``--workers``/``--deadline``/``--max-retries``/``--trace``/
``--seed``) come from one shared parent parser
(:func:`shared_pipeline_parser`) and behave identically on every
pipeline-running subcommand.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.graph.io import read_lg, read_repository_json


def _load_data(path: str):
    """Load graphs from .lg or .json; single graph => network."""
    file_path = Path(path)
    if not file_path.exists():
        raise ReproError(f"input file {path!r} does not exist")
    if file_path.suffix == ".json":
        graphs = read_repository_json(file_path)
    else:
        graphs = read_lg(file_path)
    if not graphs:
        raise ReproError(f"{path!r} contains no graphs")
    if len(graphs) == 1:
        return graphs[0]
    return graphs


def _budget_from_args(args: argparse.Namespace):
    from repro.patterns.base import PatternBudget
    return PatternBudget(args.max_patterns, min_size=args.min_size,
                         max_size=args.max_size)


def _pipeline_configs(args: argparse.Namespace):
    """CATAPULT/TATTOO configs from the shared pipeline flags.

    The shared parent parser guarantees ``--workers``, ``--deadline``,
    ``--max-retries``, ``--trace``, and ``--seed`` exist and mean the
    same thing on every pipeline-running subcommand.  ``--deadline``
    turns the selection pipelines into anytime runs (best-so-far
    patterns at expiry); ``--max-retries`` enables fault-tolerant
    parallel execution.  With every flag at its default the library
    defaults apply and ``(None, None)`` is returned.
    """
    deadline = args.deadline
    retries = args.max_retries
    workers = args.workers
    seed = args.seed
    trace = bool(args.trace)
    if deadline is None and not retries and not trace \
            and workers is None and not seed:
        return None, None
    from repro.catapult.pipeline import CatapultConfig
    from repro.tattoo.pipeline import TattooConfig
    catapult_config = CatapultConfig(seed=seed, workers=workers,
                                     trace=trace, deadline_s=deadline,
                                     max_retries=retries)
    tattoo_config = TattooConfig(seed=seed, workers=workers,
                                 trace=trace, deadline_s=deadline,
                                 max_retries=retries)
    return catapult_config, tattoo_config


def _build_vqi_reporting(args: argparse.Namespace, data):
    """Build a VQI honoring the shared flags; one code path for every
    subcommand, so degraded warnings and ``--trace`` output behave
    identically across ``build``/``query``/``summarize``/``report``."""
    from repro.vqi.builder import build_vqi_with_report
    catapult_config, tattoo_config = _pipeline_configs(args)
    vqi, report = build_vqi_with_report(data, _budget_from_args(args),
                                        catapult_config=catapult_config,
                                        tattoo_config=tattoo_config)
    if report.degraded:
        incomplete = sorted(
            stage for stage, entry in report.completion.items()
            if not entry.get("complete", True))
        detail = f" (incomplete: {', '.join(incomplete)})" \
            if incomplete else ""
        print(f"warning: degraded result — the pipeline hit its "
              f"deadline or skipped faulty work{detail}")
    if args.trace:
        from repro.obs import write_trace
        if report.trace is None:
            raise ReproError("the selection pipeline produced no trace")
        write_trace([report.trace], args.trace)
        print(f"trace written to {args.trace}")
    return vqi, report


def _cmd_build(args: argparse.Namespace) -> int:
    data = _load_data(args.data)
    vqi, report = _build_vqi_reporting(args, data)
    print(f"generator: {report.generator} "
          f"({report.duration:.2f}s)")
    print(f"attribute panel: "
          f"{', '.join(vqi.attribute_panel.node_alphabet())}")
    for pattern in vqi.pattern_panel.canned:
        from repro.patterns.topologies import classify_topology
        print(f"  canned: {classify_topology(pattern.graph).value:<9} "
              f"n={pattern.order()} m={pattern.size()}")
    if args.spec:
        Path(args.spec).write_text(vqi.spec.to_json(indent=2),
                                   encoding="utf-8")
        print(f"spec written to {args.spec}")
    if args.svg:
        Path(args.svg).write_text(vqi.render_pattern_panel(),
                                  encoding="utf-8")
        print(f"pattern panel rendered to {args.svg}")
    if args.trace and report.trace is not None:
        from repro.obs import format_trace
        print(format_trace(report.trace))
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.vqi.spec import VQISpec
    spec = VQISpec.from_json(Path(args.spec).read_text(encoding="utf-8"))
    print(f"source: {spec.source}")
    print(f"generator: {spec.generator}")
    print(f"node labels: {len(spec.attribute_panel.node_labels)}")
    print(f"edge labels: {len(spec.attribute_panel.edge_labels)}")
    budget = spec.pattern_panel.budget
    print(f"budget: {budget.max_patterns} patterns, sizes "
          f"[{budget.min_size}, {budget.max_size}]")
    print(f"basic patterns: {len(spec.pattern_panel.basic)}")
    print(f"canned patterns: {len(spec.pattern_panel.canned)}")
    for pattern in spec.pattern_panel.canned:
        from repro.patterns.topologies import classify_topology
        print(f"  {classify_topology(pattern.graph).value:<9} "
              f"n={pattern.order()} m={pattern.size()} "
              f"source={pattern.source}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.vqi.spec import VQISpec
    data = _load_data(args.data)
    if args.spec:
        spec = VQISpec.from_json(Path(args.spec).read_text(
            encoding="utf-8"))
        from repro.vqi.builder import VisualQueryInterface
        from repro.graph.graph import Graph
        if isinstance(data, Graph):
            vqi = VisualQueryInterface(spec, network=data)
        else:
            vqi = VisualQueryInterface(spec, repository=data)
    else:
        vqi, _ = _build_vqi_reporting(args, data)
    panel = vqi.pattern_panel.canned
    if not 0 <= args.pattern < len(panel):
        raise ReproError(
            f"pattern index {args.pattern} out of range "
            f"(panel has {len(panel)} canned patterns)")
    vqi.query_panel.builder.add_pattern(panel[args.pattern])
    results = vqi.execute(max_embeddings=args.limit)
    print(f"query: canned pattern #{args.pattern} "
          f"(n={panel[args.pattern].order()}, "
          f"m={panel[args.pattern].size()})")
    print(f"matches: {results.match_count()} graphs, "
          f"{results.embedding_count()} embeddings "
          f"({results.graphs_pruned} pruned by the label index)")
    for match in results.matches[:args.limit]:
        print(f"  {match.graph.name or match.graph_index}: "
              f"{len(match.embeddings)} embeddings")
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    from repro.graph.graph import Graph
    from repro.summary.pattern_summary import summarize_with_patterns
    data = _load_data(args.data)
    if not isinstance(data, Graph):
        raise ReproError("summarize expects a single-network input")
    vqi, _ = _build_vqi_reporting(args, data)
    result = summarize_with_patterns(data,
                                     list(vqi.pattern_panel.canned),
                                     max_instances=args.instances)
    print(f"original: {data.order()} nodes, {data.size()} edges")
    print(f"summary : {result.summary.order()} nodes, "
          f"{result.summary.size()} edges "
          f"({len(result.instances)} pattern instances, "
          f"coverage {result.coverage():.1%})")
    if args.output:
        from repro.graph.io import graph_to_json
        Path(args.output).write_text(graph_to_json(result.summary,
                                                   indent=2),
                                     encoding="utf-8")
        print(f"summary graph written to {args.output}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.datasets import generate_workload
    from repro.graph.graph import Graph
    from repro.usability.report import usability_report
    data = _load_data(args.data)
    repository = [data] if isinstance(data, Graph) else data
    vqi, _ = _build_vqi_reporting(args, data)
    workload = list(generate_workload(repository, args.queries,
                                      seed=args.seed))
    report = usability_report(workload,
                              list(vqi.pattern_panel.canned),
                              title=f"Usability evaluation: "
                                    f"{args.data}",
                              seed=args.seed)
    if args.output:
        report.save(args.output)
        print(f"report written to {args.output}")
    else:
        print(report.markdown)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.pipeline import PipelineConfig
    from repro.service import PatternService, ServiceConfig, serve
    from repro.store import DiskBackend
    data = _load_data(args.data)
    pipeline = PipelineConfig(budget=_budget_from_args(args),
                              seed=args.seed, workers=args.workers,
                              trace=bool(args.trace),
                              deadline_s=args.deadline,
                              max_retries=args.max_retries)
    backend = DiskBackend(args.store) if args.store else None
    service = PatternService(
        data, pipeline,
        ServiceConfig(rate=args.rate, burst=args.burst,
                      max_inflight=args.max_inflight,
                      request_log=args.request_log),
        backend=backend)
    snapshot = service.snapshots.current()
    state = "built"
    if service.recovery is not None:
        replayed = service.recovery.replayed_batches
        state = f"recovered (+{replayed} WAL batch(es))" \
            if replayed else "recovered"
    print(f"{state} {len(snapshot.patterns)} patterns "
          f"({snapshot.generator}); serving {args.data} on "
          f"http://{args.host}:{args.port}")
    serve(service, host=args.host, port=args.port)
    return 0


def shared_pipeline_parser() -> argparse.ArgumentParser:
    """The one definition of the cross-cutting pipeline flags.

    Used as an argparse *parent* by every subcommand that runs a
    selection pipeline (``build``/``query``/``summarize``/``report``/
    ``serve``), so ``--workers``, ``--deadline``, ``--max-retries``,
    ``--trace``, and ``--seed`` are spelled, defaulted, and documented
    identically everywhere.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("pipeline options")
    group.add_argument("--workers", type=int, default=None,
                       metavar="N",
                       help="worker processes for parallel stages "
                            "(default: $REPRO_WORKERS, else serial); "
                            "results are identical at every count")
    group.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock budget for pattern selection; "
                            "on expiry the pipeline returns its "
                            "best-so-far patterns flagged as degraded "
                            "instead of failing")
    group.add_argument("--max-retries", type=int, default=0,
                       metavar="N",
                       help="per-item retries for parallel stages "
                            "before a faulty item is skipped "
                            "(default 0: any fault is fatal)")
    group.add_argument("--trace", metavar="PATH", default=None,
                       help="record a per-stage trace of the "
                            "selection pipeline and write it here as "
                            "JSON (serve: trace envelopes ride on "
                            "/v1/build responses instead)")
    group.add_argument("--seed", type=int, default=0,
                       help="RNG seed for every seeded stage "
                            "(default 0)")
    return parent


def _add_budget_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("-k", "--max-patterns", type=int, default=8,
                   help="canned patterns to display (default 8)")
    p.add_argument("--min-size", type=int, default=4,
                   help="minimum pattern size in nodes (default 4)")
    p.add_argument("--max-size", type=int, default=8,
                   help="maximum pattern size in nodes (default 8)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-vqi",
        description="Data-driven visual query interfaces for graphs")
    sub = parser.add_subparsers(dest="command", required=True)
    shared = [shared_pipeline_parser()]

    p_build = sub.add_parser("build", parents=shared,
                             help="build a VQI spec from graph data")
    p_build.add_argument("data", help=".lg or .json graph data")
    p_build.add_argument("--spec", help="write the VQI spec JSON here")
    p_build.add_argument("--svg",
                         help="render the pattern panel SVG here")
    _add_budget_args(p_build)
    p_build.set_defaults(func=_cmd_build)

    p_inspect = sub.add_parser("inspect",
                               help="describe a VQI spec JSON")
    p_inspect.add_argument("spec", help="VQI spec JSON file")
    p_inspect.set_defaults(func=_cmd_inspect)

    p_query = sub.add_parser("query", parents=shared,
                             help="run a canned pattern as a query")
    p_query.add_argument("data", help=".lg or .json graph data")
    p_query.add_argument("--spec",
                         help="use a previously built spec "
                              "(skips selection)")
    p_query.add_argument("--pattern", type=int, default=0,
                         help="canned pattern index to run (default 0)")
    p_query.add_argument("--limit", type=int, default=10,
                         help="embeddings/matches to report")
    _add_budget_args(p_query)
    p_query.set_defaults(func=_cmd_query)

    p_summ = sub.add_parser("summarize", parents=shared,
                            help="pattern-based network summary")
    p_summ.add_argument("data", help=".lg or .json single network")
    p_summ.add_argument("--instances", type=int, default=50,
                        help="max pattern instances to collapse")
    p_summ.add_argument("--output",
                        help="write the summary graph JSON here")
    _add_budget_args(p_summ)
    p_summ.set_defaults(func=_cmd_summarize)

    p_report = sub.add_parser(
        "report", parents=shared,
        help="run the usability battery and emit Markdown")
    p_report.add_argument("data", help=".lg or .json graph data")
    p_report.add_argument("--queries", type=int, default=20,
                          help="workload size (default 20)")
    p_report.add_argument("--output",
                          help="write the Markdown report here")
    _add_budget_args(p_report)
    p_report.set_defaults(func=_cmd_report)

    p_serve = sub.add_parser(
        "serve", parents=shared,
        help="serve patterns over HTTP (repro/v1 wire schema)")
    p_serve.add_argument("data", help=".lg or .json graph data")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8080,
                         help="bind port (default 8080)")
    p_serve.add_argument("--rate", type=float, default=None,
                         help="token-bucket refill rate in "
                              "requests/second (default: unlimited)")
    p_serve.add_argument("--burst", type=int, default=64,
                         help="token-bucket burst size (default 64)")
    p_serve.add_argument("--max-inflight", type=int, default=1,
                         help="concurrently admitted heavy requests; "
                              "excess builds/maintenance shed with "
                              "503 (default 1)")
    p_serve.add_argument("--store", metavar="DIR", default=None,
                         help="durable store directory (WAL + "
                              "segments + manifest): maintenance "
                              "batches persist and the pattern set "
                              "recovers bitwise after a crash; "
                              "created on first use, recovered on "
                              "every boot")
    p_serve.add_argument("--request-log", metavar="PATH",
                         help="append every exchange to this JSONL "
                              "log, replayable with "
                              "repro.service.replay")
    _add_budget_args(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
