"""Hierarchical trace spans with zero overhead when disabled.

A *span* is one timed region of a pipeline run — ``span("catapult.
cluster")`` — recording wall time, parent/child structure, and
arbitrary counters.  Spans nest through a process-local stack, so the
call tree of an instrumented run falls out of ordinary ``with``
nesting; :func:`capture` bounds one run and hands back the finished
root record.

The whole module is stdlib-only and costs nothing when tracing is off:
``span()`` then returns one shared no-op context manager, and every
other entry point bails on a single flag test.  Tracing is switched on
by the ``REPRO_TRACE`` environment variable (read once at import), by
:func:`enable`, or per-run by ``capture(..., force=True)`` (which is
how ``config.trace=True`` works without touching global state).

Span records are plain dicts — ``{"name", "duration", "counters",
"children"}`` — deliberately, so they pickle across
:func:`repro.perf.pmap` worker boundaries: a worker captures its
item's subtree, ships the record back with the result, and the parent
re-attaches it with :func:`attach_record` in input order.  A merged
trace is therefore identical at every worker count up to the
wall-clock fields.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Union

#: Environment variable that switches tracing on at import time.
TRACE_ENV = "REPRO_TRACE"

#: Counter values are numbers (tallies) or strings (annotations).
CounterValue = Union[int, float, str]

#: A finished span: name, duration (seconds), counters, children.
SpanRecord = Dict[str, object]

#: Record keys that depend on the clock; structural comparisons (for
#: example workers=1 vs workers=4 merged traces) strip these.
WALL_CLOCK_FIELDS = ("duration",)


def _env_truthy(raw: Optional[str]) -> bool:
    return (raw or "").strip().lower() in ("1", "true", "yes", "on")


_state = {"enabled": _env_truthy(os.environ.get(TRACE_ENV))}

#: Open spans, innermost last.  Process-local by design: worker
#: processes trace their own stacks and ship records back by value.
_stack: List[SpanRecord] = []

#: Finished root spans not owned by a :func:`capture` (drained with
#: :func:`take_roots`).
_roots: List[SpanRecord] = []


def tracing_enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _state["enabled"]


def enable(on: bool = True) -> None:
    """Turn tracing on (or off) for this process."""
    _state["enabled"] = bool(on)


def disable() -> None:
    """Turn tracing off for this process."""
    _state["enabled"] = False


def reset_tracing() -> None:
    """Drop all open and finished spans (test isolation)."""
    _stack.clear()
    _roots.clear()


def new_record(name: str,
               counters: Optional[Dict[str, CounterValue]] = None
               ) -> SpanRecord:
    """A fresh, unfinished span record."""
    return {"name": name, "duration": 0.0,
            "counters": dict(counters or {}), "children": []}


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add(self, key: str, value: CounterValue = 1) -> None:
        """No-op counter update."""

    def annotate(self, **counters: CounterValue) -> None:
        """No-op annotation."""


NULL_SPAN = _NullSpan()


class Span:
    """A live span; use via :func:`span`, not directly."""

    __slots__ = ("node", "_start")

    def __init__(self, name: str,
                 counters: Optional[Dict[str, CounterValue]] = None
                 ) -> None:
        self.node = new_record(name, counters)
        self._start = 0.0

    def __enter__(self) -> "Span":
        _stack.append(self.node)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.node["duration"] = time.perf_counter() - self._start
        popped = _stack.pop()
        # stack discipline: a span must close in the frame it opened
        while popped is not self.node and _stack:
            popped = _stack.pop()
        if _stack:
            _stack[-1]["children"].append(self.node)
        else:
            _roots.append(self.node)
        return False

    def add(self, key: str, value: CounterValue = 1) -> None:
        """Accumulate a numeric counter (or set a string annotation)."""
        counters = self.node["counters"]
        if isinstance(value, str):
            counters[key] = value
        else:
            counters[key] = counters.get(key, 0) + value

    def annotate(self, **counters: CounterValue) -> None:
        for key, value in counters.items():
            self.add(key, value)


def span(name: str, **counters: CounterValue):
    """Context manager recording one timed region of a pipeline.

    With tracing disabled this returns a shared no-op object — the
    instrumentation's only cost is this flag test.
    """
    if not _state["enabled"]:
        return NULL_SPAN
    return Span(name, counters)


def add(key: str, value: CounterValue = 1) -> None:
    """Bump a counter on the innermost open span, if any."""
    if _state["enabled"] and _stack:
        counters = _stack[-1]["counters"]
        if isinstance(value, str):
            counters[key] = value
        else:
            counters[key] = counters.get(key, 0) + value


def current_span_name() -> Optional[str]:
    """Name of the innermost open span (None outside any span)."""
    if not _stack:
        return None
    return str(_stack[-1]["name"])


def attach_record(record: SpanRecord) -> None:
    """Merge a serialized span record (for example one shipped back
    from a :func:`repro.perf.pmap` worker) into the current trace.

    The record becomes a child of the innermost open span, preserving
    call order; with no span open it is kept as a finished root.
    No-op while tracing is disabled.
    """
    if not _state["enabled"]:
        return
    if _stack:
        _stack[-1]["children"].append(record)
    else:
        _roots.append(record)


def take_roots() -> List[SpanRecord]:
    """Drain and return finished root spans not owned by a capture."""
    roots = list(_roots)
    _roots.clear()
    return roots


class Capture:
    """Bounds one traced run; ``.record`` holds the finished tree.

    Inside an already-open span this degrades to a plain child span
    (the outer capture still owns the full tree) while ``.record``
    still points at this run's subtree — so nested pipelines compose.
    """

    __slots__ = ("record", "_name", "_counters", "_force", "_span",
                 "_prev_enabled", "_active")

    def __init__(self, name: str, force: bool = False,
                 counters: Optional[Dict[str, CounterValue]] = None
                 ) -> None:
        self.record: Optional[SpanRecord] = None
        self._name = name
        self._counters = counters
        self._force = force
        self._span: Optional[Span] = None
        self._prev_enabled = False
        self._active = False

    def __enter__(self) -> "Capture":
        self._active = self._force or _state["enabled"]
        if not self._active:
            return self
        self._prev_enabled = _state["enabled"]
        _state["enabled"] = True
        self._span = Span(self._name, self._counters)
        self._span.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._active:
            return False
        assert self._span is not None
        self._span.__exit__(exc_type, exc, tb)
        self.record = self._span.node
        # a root-level capture owns its record; do not double-report
        # it through take_roots()
        if not _stack and _roots and _roots[-1] is self.record:
            _roots.pop()
        _state["enabled"] = self._prev_enabled
        return False

    def add(self, key: str, value: CounterValue = 1) -> None:
        """Counter update on the run's root span (no-op when idle)."""
        if self._span is not None:
            self._span.add(key, value)

    def annotate(self, **counters: CounterValue) -> None:
        for key, value in counters.items():
            self.add(key, value)


def capture(name: str, force: bool = False,
            **counters: CounterValue) -> Capture:
    """Record one run as a trace tree rooted at ``name``.

    ``force=True`` traces this run even when tracing is globally off
    (the per-run ``config.trace`` switch); otherwise the capture is a
    no-op with ``record=None`` unless tracing is enabled.
    """
    return Capture(name, force=force, counters=counters)


def strip_wall_clock(record: SpanRecord) -> SpanRecord:
    """Copy of a record with wall-clock fields removed, recursively.

    Two traces of the same deterministic run — for example at
    different ``workers`` counts — compare equal after stripping.
    """
    return {
        "name": record["name"],
        "counters": dict(record["counters"]),
        "children": [strip_wall_clock(child)
                     for child in record["children"]],
    }
