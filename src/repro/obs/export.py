"""Trace export: JSON for tooling, an indented tree for humans.

The JSON shape is the span record itself (``name`` / ``duration`` /
``counters`` / ``children``), wrapped in a small envelope when several
runs are written together — ``{"traces": [...]}`` — which is what
``benchmarks/bench_runner.py --trace`` and ``repro-vqi build --trace``
emit and what ``tests/trace_schema.py`` validates.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.obs.tracing import SpanRecord

#: Envelope version for exported trace files.
TRACE_FORMAT_VERSION = 1

#: The public wire-schema tag stamped into every exported JSON body
#: this library emits — trace envelopes here and every
#: :mod:`repro.service` response.  A traced service request and a
#: traced library run carry the same envelope, and consumers key
#: compatibility off this one string.
WIRE_SCHEMA = "repro/v1"


def trace_envelope(records: Sequence[SpanRecord]) -> Dict[str, object]:
    """Wrap finished span records for file export."""
    return {"schema": WIRE_SCHEMA, "version": TRACE_FORMAT_VERSION,
            "traces": list(records)}


def trace_to_json(record: SpanRecord, indent: Optional[int] = 2) -> str:
    """One span record as a JSON document."""
    return json.dumps(record, indent=indent, sort_keys=True)


def write_trace(records: Sequence[SpanRecord], path: str) -> None:
    """Write records to ``path`` in the envelope format."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace_envelope(records), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")


def read_trace(path: str) -> List[SpanRecord]:
    """Read records back from an envelope (or bare-record) file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict) and "traces" in payload:
        return list(payload["traces"])
    return [payload]


def _format_counters(counters: Dict[str, object]) -> str:
    if not counters:
        return ""
    parts = [f"{key}={counters[key]}" for key in sorted(counters)]
    return "  [" + " ".join(parts) + "]"


def _format_node(record: SpanRecord, depth: int,
                 total: float, lines: List[str]) -> None:
    duration = float(record["duration"])
    share = f" {duration / total:5.1%}" if total > 0 else ""
    lines.append(f"{'  ' * depth}{record['name']}: "
                 f"{duration * 1000:.1f}ms{share}"
                 f"{_format_counters(record['counters'])}")
    for child in record["children"]:
        _format_node(child, depth + 1, total, lines)


def format_trace(record: SpanRecord) -> str:
    """Human-readable indented tree with ms and %-of-root times."""
    lines: List[str] = []
    _format_node(record, 0, float(record["duration"]), lines)
    return "\n".join(lines)


def stage_breakdown(record: SpanRecord) -> Dict[str, float]:
    """Direct children's wall seconds keyed by span name — the
    per-stage breakdown E2/E4/E6 report from a traced run."""
    breakdown: Dict[str, float] = {}
    for child in record["children"]:
        name = str(child["name"])
        breakdown[name] = breakdown.get(name, 0.0) \
            + float(child["duration"])
    return breakdown
