"""Process-local metrics registry: counters, gauges, timers.

One registry per process accumulates named metrics from every
subsystem — pipeline stages, :func:`repro.perf.pmap` dispatch, the
coverage index, swap scans — and :func:`snapshot` folds in the live
matching-stack counters (match cache, VF2 kernel, canonical-code
memo) so a single call observes the whole library.  This supersedes
the four scattered stats endpoints (``repro.perf.cache_stats``,
``repro.matching.kernel_stats``, ``CoverageIndex.cache_stats``,
``Midas.cache_stats``); the old entry points survive as thin aliases.

Metric names are dotted, lowercase, subsystem-first:
``perf.pmap.calls``, ``patterns.coverage.patterns_indexed``,
``midas.swap.scans``.  All operations are dict updates — cheap enough
to stay always-on (the match cache has always counted hits this way);
the zero-overhead-when-disabled contract applies to *tracing*, which
is the per-span cost.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

Number = Union[int, float]


class MetricsRegistry:
    """Named counters (monotonic), gauges (last value), and timers
    (count/total/min/max of observed durations)."""

    __slots__ = ("counters", "gauges", "timers")

    def __init__(self) -> None:
        self.counters: Dict[str, Number] = {}
        self.gauges: Dict[str, Number] = {}
        self.timers: Dict[str, Dict[str, Number]] = {}

    def inc(self, name: str, value: Number = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: Number) -> None:
        self.gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        timer = self.timers.get(name)
        if timer is None:
            self.timers[name] = {"count": 1, "total": seconds,
                                 "min": seconds, "max": seconds}
            return
        timer["count"] += 1
        timer["total"] += seconds
        timer["min"] = min(timer["min"], seconds)
        timer["max"] = max(timer["max"], seconds)

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.timers.clear()

    def snapshot(self) -> Dict[str, object]:
        """Deterministically-ordered copy of every registered metric."""
        return {
            "counters": {k: self.counters[k]
                         for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "timers": {k: dict(self.timers[k])
                       for k in sorted(self.timers)},
        }

    def __repr__(self) -> str:
        return (f"<MetricsRegistry counters={len(self.counters)} "
                f"gauges={len(self.gauges)} timers={len(self.timers)}>")


_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry most call sites share."""
    return _registry


def inc(name: str, value: Number = 1) -> None:
    """Increment a global counter."""
    _registry.inc(name, value)


def set_gauge(name: str, value: Number) -> None:
    """Set a global gauge to its latest value."""
    _registry.set_gauge(name, value)


def observe(name: str, seconds: float) -> None:
    """Record one duration under a global timer."""
    _registry.observe(name, seconds)


def matching_snapshot() -> Dict[str, float]:
    """Live counters of the whole matching stack, in the flat shape
    the deprecated ``repro.perf.cache_stats()`` has always returned:
    match-cache occupancy and hit/miss/eviction counts, real VF2
    invocations, kernel feasibility/recursion/pruning counters, the
    canonical-code memo's hits/misses, and — as ``pairs_pruned`` —
    the (pattern, graph) pairs coverage indexing skipped outright on
    the compact label tables (the VF2-call delta those prunes bought).

    Imports lazily so ``repro.obs`` itself stays dependency-free.
    """
    from repro.matching.canonical import _memo_snapshot
    from repro.matching.isomorphism import _kernel_snapshot
    from repro.perf.cache import get_match_cache, vf2_calls

    stats: Dict[str, float] = get_match_cache().stats()
    stats["vf2_calls"] = vf2_calls()
    stats.update(_kernel_snapshot())
    memo = _memo_snapshot()
    stats["canonical_memo_hits"] = memo["hits"]
    stats["canonical_memo_misses"] = memo["misses"]
    stats["pairs_pruned"] = _registry.counters.get(
        "patterns.coverage.pairs_pruned", 0)
    return stats


def snapshot() -> Dict[str, object]:
    """One view of every observable counter in the process: the
    metrics registry plus the matching stack under ``"matching"``."""
    data = _registry.snapshot()
    data["matching"] = matching_snapshot()
    return data


def reset(clear_cache_entries: bool = False) -> None:
    """Zero the registry and every matching-stack counter.

    Cached match *entries* survive by default (they stay valid);
    ``clear_cache_entries=True`` evicts them too, matching
    :func:`repro.perf.clear_match_cache`.
    """
    from repro.matching.canonical import reset_canonical_memo_stats
    from repro.matching.isomorphism import reset_kernel_stats
    from repro.perf.cache import get_match_cache, reset_vf2_calls

    _registry.reset()
    cache = get_match_cache()
    if clear_cache_entries:
        cache.clear()
    cache.reset_stats()
    reset_vf2_calls()
    reset_kernel_stats()
    reset_canonical_memo_stats()
