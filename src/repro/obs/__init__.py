"""repro.obs: structured tracing and metrics for every pipeline.

The observability layer the selection systems report through — the
one place to ask *where time and work go* inside a run:

* :func:`span` — hierarchical trace spans (``span("catapult.
  cluster")``) recording wall time, parent/child structure, and
  arbitrary counters; zero overhead while tracing is disabled
  (``REPRO_TRACE`` env or :func:`enable`).
* :func:`capture` — bound one run and collect its finished trace
  tree; ``force=True`` implements the per-run ``config.trace``
  switch.
* :func:`attach_record` — merge serializable span records shipped
  back from :func:`repro.perf.pmap` workers, so a parallel run's
  trace is identical to the serial one up to wall-clock fields.
* :func:`snapshot` / :func:`reset` — the process-local metrics
  registry plus the live matching-stack counters, superseding the
  scattered ``cache_stats``/``kernel_stats`` endpoints.
* :func:`format_trace` / :func:`write_trace` — human-readable and
  JSON export (``repro-vqi build --trace out.json``).

Stdlib-only; heavier repro modules are imported lazily inside
:func:`snapshot`/:func:`reset` so this package sits below everything
else in the import graph.
"""

from repro.obs.export import (
    TRACE_FORMAT_VERSION,
    WIRE_SCHEMA,
    format_trace,
    read_trace,
    stage_breakdown,
    trace_envelope,
    trace_to_json,
    write_trace,
)
from repro.obs.metrics import (
    MetricsRegistry,
    inc,
    matching_snapshot,
    observe,
    registry,
    reset,
    set_gauge,
    snapshot,
)
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    SpanRecord,
    TRACE_ENV,
    WALL_CLOCK_FIELDS,
    add,
    attach_record,
    capture,
    current_span_name,
    disable,
    enable,
    new_record,
    reset_tracing,
    span,
    strip_wall_clock,
    take_roots,
    tracing_enabled,
)

__all__ = [
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "SpanRecord",
    "TRACE_ENV",
    "TRACE_FORMAT_VERSION",
    "WALL_CLOCK_FIELDS",
    "WIRE_SCHEMA",
    "add",
    "attach_record",
    "capture",
    "current_span_name",
    "disable",
    "enable",
    "format_trace",
    "inc",
    "matching_snapshot",
    "new_record",
    "observe",
    "read_trace",
    "registry",
    "reset",
    "reset_tracing",
    "set_gauge",
    "snapshot",
    "span",
    "stage_breakdown",
    "strip_wall_clock",
    "take_roots",
    "trace_envelope",
    "trace_to_json",
    "tracing_enabled",
    "write_trace",
]
