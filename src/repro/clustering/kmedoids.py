"""k-medoids clustering (PAM-style) over precomputed distances.

Medoid-based clustering is the natural choice for graph repositories:
distances come from arbitrary graph similarity functions, and every
cluster centre is a real data graph.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.errors import PipelineError


class ClusteringResult:
    """Labels, medoid indices, and total cost of a clustering."""

    __slots__ = ("labels", "medoids", "cost")

    def __init__(self, labels: List[int], medoids: List[int],
                 cost: float) -> None:
        self.labels = labels
        self.medoids = medoids
        self.cost = cost

    def clusters(self) -> List[List[int]]:
        """Member indices per cluster, in medoid order."""
        groups: List[List[int]] = [[] for _ in self.medoids]
        for item, label in enumerate(self.labels):
            groups[label].append(item)
        return groups

    def __repr__(self) -> str:
        return (f"<ClusteringResult k={len(self.medoids)} "
                f"cost={self.cost:.3f}>")


def _assignment_cost(distances: Sequence[Sequence[float]],
                     medoids: List[int]) -> float:
    return sum(min(distances[i][m] for m in medoids)
               for i in range(len(distances)))


def _assign(distances: Sequence[Sequence[float]],
            medoids: List[int]) -> List[int]:
    labels: List[int] = []
    for i in range(len(distances)):
        best = min(range(len(medoids)), key=lambda j: distances[i][medoids[j]])
        labels.append(best)
    return labels


def _init_medoids(distances: Sequence[Sequence[float]], k: int,
                  rng: random.Random) -> List[int]:
    """k-medoids++ style init: spread seeds by distance."""
    n = len(distances)
    medoids = [rng.randrange(n)]
    while len(medoids) < k:
        weights = [min(distances[i][m] for m in medoids) for i in range(n)]
        total = sum(weights)
        if total == 0:
            # all remaining points coincide with a medoid; pick any new
            remaining = [i for i in range(n) if i not in medoids]
            medoids.append(rng.choice(remaining))
            continue
        pick = rng.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if acc >= pick and i not in medoids:
                medoids.append(i)
                break
        else:
            remaining = [i for i in range(n) if i not in medoids]
            medoids.append(rng.choice(remaining))
    return medoids


def kmedoids(distances: Sequence[Sequence[float]], k: int,
             seed: int = 0, max_iter: int = 50) -> ClusteringResult:
    """Cluster items given a symmetric distance matrix.

    Alternates assignment with per-cluster medoid updates until the
    cost stops improving (Voronoi-iteration PAM variant).
    """
    n = len(distances)
    if k < 1:
        raise PipelineError("k must be >= 1")
    if n == 0:
        raise PipelineError("cannot cluster an empty repository")
    if k > n:
        raise PipelineError(f"k={k} exceeds the number of items ({n})")
    rng = random.Random(seed)
    medoids = _init_medoids(distances, k, rng)
    cost = _assignment_cost(distances, medoids)
    for _ in range(max_iter):
        labels = _assign(distances, medoids)
        improved = False
        for j in range(k):
            members = [i for i, lab in enumerate(labels) if lab == j]
            if not members:
                continue
            best_medoid = min(
                members,
                key=lambda c: sum(distances[i][c] for i in members))
            if best_medoid != medoids[j]:
                medoids[j] = best_medoid
                improved = True
        new_cost = _assignment_cost(distances, medoids)
        if not improved or new_cost >= cost:
            cost = min(cost, new_cost)
            break
        cost = new_cost
    labels = _assign(distances, medoids)
    return ClusteringResult(labels, medoids, _assignment_cost(
        distances, medoids))


def silhouette_score(distances: Sequence[Sequence[float]],
                     labels: Sequence[int]) -> float:
    """Mean silhouette coefficient; 0.0 when undefined (k=1 or n<=k)."""
    n = len(labels)
    k = max(labels) + 1 if labels else 0
    if k < 2 or n <= k:
        return 0.0
    clusters: List[List[int]] = [[] for _ in range(k)]
    for i, lab in enumerate(labels):
        clusters[lab].append(i)
    total = 0.0
    counted = 0
    for i in range(n):
        own = clusters[labels[i]]
        if len(own) <= 1:
            continue
        a = sum(distances[i][j] for j in own if j != i) / (len(own) - 1)
        b = min(
            sum(distances[i][j] for j in other) / len(other)
            for lab, other in enumerate(clusters)
            if lab != labels[i] and other)
        denom = max(a, b)
        total += 0.0 if denom == 0 else (b - a) / denom
        counted += 1
    return total / counted if counted else 0.0
