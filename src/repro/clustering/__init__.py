"""Clustering substrate: subtree features, similarity, k-medoids."""

from repro.clustering.features import (
    DEFAULT_TREE_EDGES,
    MinedTree,
    closed_frequent_trees,
    connected_tree_subgraphs,
    feature_vector_from_vocabulary,
    mine_frequent_trees,
    repository_feature_matrix,
    tree_feature_counts,
)
from repro.clustering.kmedoids import (
    ClusteringResult,
    kmedoids,
    silhouette_score,
)
from repro.clustering.similarity import (
    distance_matrix_from_graphs,
    distance_matrix_from_vectors,
    structural_distance,
    structural_similarity,
    vector_cosine_distance,
    vector_euclidean,
)

__all__ = [
    "DEFAULT_TREE_EDGES",
    "MinedTree",
    "closed_frequent_trees",
    "connected_tree_subgraphs",
    "feature_vector_from_vocabulary",
    "mine_frequent_trees",
    "repository_feature_matrix",
    "tree_feature_counts",
    "ClusteringResult",
    "kmedoids",
    "silhouette_score",
    "distance_matrix_from_graphs",
    "distance_matrix_from_vectors",
    "structural_distance",
    "structural_similarity",
    "vector_cosine_distance",
    "vector_euclidean",
]
