"""Graph-to-graph similarity and distance matrices for clustering.

The pairwise matrices are the O(|D|^2) wall every clustering-based
selector hits first (the tutorial's own argument against CATAPULT on
large inputs), so both matrix builders precompute per-item norms once
and split their row blocks across :func:`repro.perf.pmap` workers.
Every pair is computed by the same pure function either way, so the
matrix is identical at any worker count.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.graph import Graph
from repro.obs import span
from repro.patterns.scoring import cosine_similarity, feature_vector
from repro.perf.executor import pmap, resolve_workers
from repro.errors import OptionError


def structural_similarity(g1: Graph, g2: Graph) -> float:
    """Cosine similarity of structural feature vectors, in [0, 1]."""
    return cosine_similarity(feature_vector(g1), feature_vector(g2))


def structural_distance(g1: Graph, g2: Graph) -> float:
    """1 - structural similarity."""
    return 1.0 - structural_similarity(g1, g2)


def vector_euclidean(v1: Sequence[float], v2: Sequence[float]) -> float:
    """Euclidean distance between two dense feature vectors."""
    if len(v1) != len(v2):
        raise OptionError("feature vectors have different lengths")
    return math.sqrt(sum((a - b) ** 2 for a, b in zip(v1, v2)))


def _vector_norm(vector: Sequence[float]) -> float:
    return math.sqrt(sum(a * a for a in vector))


def _cosine_distance_with_norms(v1: Sequence[float], v2: Sequence[float],
                                n1: float, n2: float) -> float:
    if n1 == 0.0 or n2 == 0.0:
        return 1.0
    dot = sum(a * b for a, b in zip(v1, v2))
    return 1.0 - dot / (n1 * n2)


def vector_cosine_distance(v1: Sequence[float],
                           v2: Sequence[float]) -> float:
    """1 - cosine similarity of two dense vectors (1.0 for zero vectors)."""
    if len(v1) != len(v2):
        raise OptionError("feature vectors have different lengths")
    return _cosine_distance_with_norms(v1, v2, _vector_norm(v1),
                                       _vector_norm(v2))


#: Fixed block count for the row decomposition.  Deliberately *not*
#: derived from the worker count: the task list (and therefore the
#: merged trace tree and any per-task derived seed) must be identical
#: at every worker count.  16 blocks leave ~4 per worker on typical
#: 2-4 worker runs, enough for stragglers to rebalance.
_ROW_BLOCKS = 16


def _row_ranges(n: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous row blocks; ``workers`` kept for signature
    compatibility but no longer affects the decomposition."""
    del workers
    blocks = max(1, min(n, _ROW_BLOCKS))
    size = -(-n // blocks)
    return [(lo, min(lo + size, n)) for lo in range(0, n, size)]


def _upper_rows_from_vectors(task: Tuple) -> List[List[float]]:
    """Upper-triangle distance rows [lo, hi) for dense vectors."""
    lo, hi, vectors, norms, metric = task
    n = len(vectors)
    rows: List[List[float]] = []
    for i in range(lo, hi):
        if metric == "euclidean":
            row = [vector_euclidean(vectors[i], vectors[j])
                   for j in range(i + 1, n)]
        else:
            row = [_cosine_distance_with_norms(vectors[i], vectors[j],
                                               norms[i], norms[j])
                   for j in range(i + 1, n)]
        rows.append(row)
    return rows


def _sparse_cosine_rows(task: Tuple) -> List[List[float]]:
    """Upper-triangle cosine-distance rows for sparse feature dicts."""
    lo, hi, features, norms = task
    n = len(features)
    rows: List[List[float]] = []
    for i in range(lo, hi):
        fi = features[i]
        row: List[float] = []
        for j in range(i + 1, n):
            if norms[i] == 0.0 or norms[j] == 0.0:
                # matches cosine_similarity's 0-similarity convention
                row.append(1.0)
                continue
            fj = features[j]
            dot = sum(value * fj.get(key, 0.0)
                      for key, value in fi.items())
            row.append(1.0 - dot / (norms[i] * norms[j]))
        rows.append(row)
    return rows


def _assemble(n: int, upper_rows: List[List[float]]) -> List[List[float]]:
    """Symmetric zero-diagonal matrix from per-row upper triangles."""
    matrix = [[0.0] * n for _ in range(n)]
    for i, row in enumerate(upper_rows):
        for offset, d in enumerate(row):
            j = i + 1 + offset
            matrix[i][j] = d
            matrix[j][i] = d
    return matrix


def distance_matrix_from_graphs(repository: Sequence[Graph],
                                workers: Optional[int] = None
                                ) -> List[List[float]]:
    """Pairwise structural distances (symmetric, zero diagonal)."""
    with span("clustering.distance_matrix",
              items=len(repository)) as work:
        features: List[Dict[str, float]] = [feature_vector(g)
                                            for g in repository]
        norms = [math.sqrt(sum(v * v for v in f.values()))
                 for f in features]
        n = len(repository)
        workers = resolve_workers(workers)
        tasks = [(lo, hi, features, norms)
                 for lo, hi in _row_ranges(n, workers)]
        work.add("tasks", len(tasks))
        blocks = pmap(_sparse_cosine_rows, tasks, workers=workers)
        upper_rows = [row for block in blocks for row in block]
        return _assemble(n, upper_rows)


def distance_matrix_from_vectors(vectors: Sequence[Sequence[float]],
                                 metric: str = "euclidean",
                                 workers: Optional[int] = None
                                 ) -> List[List[float]]:
    """Pairwise distances between dense feature vectors.

    ``metric`` is ``"euclidean"`` or ``"cosine"``.  Cosine norms are
    computed once per vector, not per pair.
    """
    if metric not in ("euclidean", "cosine"):
        raise OptionError(f"unknown metric {metric!r}")
    with span("clustering.distance_matrix", items=len(vectors),
              metric=metric) as work:
        vectors = [list(v) for v in vectors]
        lengths = {len(v) for v in vectors}
        if len(lengths) > 1:
            raise OptionError("feature vectors have different lengths")
        norms = ([_vector_norm(v) for v in vectors]
                 if metric == "cosine" else [0.0] * len(vectors))
        n = len(vectors)
        workers = resolve_workers(workers)
        tasks = [(lo, hi, vectors, norms, metric)
                 for lo, hi in _row_ranges(n, workers)]
        work.add("tasks", len(tasks))
        blocks = pmap(_upper_rows_from_vectors, tasks, workers=workers)
        upper_rows = [row for block in blocks for row in block]
        return _assemble(n, upper_rows)
