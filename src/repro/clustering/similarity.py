"""Graph-to-graph similarity and distance matrices for clustering."""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.graph.graph import Graph
from repro.patterns.scoring import cosine_similarity, feature_vector


def structural_similarity(g1: Graph, g2: Graph) -> float:
    """Cosine similarity of structural feature vectors, in [0, 1]."""
    return cosine_similarity(feature_vector(g1), feature_vector(g2))


def structural_distance(g1: Graph, g2: Graph) -> float:
    """1 - structural similarity."""
    return 1.0 - structural_similarity(g1, g2)


def vector_euclidean(v1: Sequence[float], v2: Sequence[float]) -> float:
    """Euclidean distance between two dense feature vectors."""
    if len(v1) != len(v2):
        raise ValueError("feature vectors have different lengths")
    return math.sqrt(sum((a - b) ** 2 for a, b in zip(v1, v2)))


def vector_cosine_distance(v1: Sequence[float],
                           v2: Sequence[float]) -> float:
    """1 - cosine similarity of two dense vectors (1.0 for zero vectors)."""
    if len(v1) != len(v2):
        raise ValueError("feature vectors have different lengths")
    dot = sum(a * b for a, b in zip(v1, v2))
    n1 = math.sqrt(sum(a * a for a in v1))
    n2 = math.sqrt(sum(b * b for b in v2))
    if n1 == 0.0 or n2 == 0.0:
        return 1.0
    return 1.0 - dot / (n1 * n2)


def distance_matrix_from_graphs(repository: Sequence[Graph]
                                ) -> List[List[float]]:
    """Pairwise structural distances (symmetric, zero diagonal)."""
    features = [feature_vector(g) for g in repository]
    n = len(repository)
    matrix = [[0.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            d = 1.0 - cosine_similarity(features[i], features[j])
            matrix[i][j] = d
            matrix[j][i] = d
    return matrix


def distance_matrix_from_vectors(vectors: Sequence[Sequence[float]],
                                 metric: str = "euclidean"
                                 ) -> List[List[float]]:
    """Pairwise distances between dense feature vectors.

    ``metric`` is ``"euclidean"`` or ``"cosine"``.
    """
    if metric == "euclidean":
        dist = vector_euclidean
    elif metric == "cosine":
        dist = vector_cosine_distance
    else:
        raise ValueError(f"unknown metric {metric!r}")
    n = len(vectors)
    matrix = [[0.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            d = dist(vectors[i], vectors[j])
            matrix[i][j] = d
            matrix[j][i] = d
    return matrix
