"""Frequent-subtree features for clustering graph repositories.

CATAPULT clusters a repository using frequent-subtree feature vectors;
MIDAS replaces plain frequent subtrees with *frequent closed trees*
(FCT, Bifet & Gavalda 2011) because the closure property allows
incremental maintenance of the feature vocabulary under batch updates.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterator, List, Sequence, Set, Tuple

from repro.graph.graph import Graph, edge_key
from repro.graph.operations import edge_subgraph
from repro.matching.canonical import canonical_code
from repro.matching.isomorphism import is_subgraph

#: default maximum subtree size, in edges (4 nodes)
DEFAULT_TREE_EDGES = 3


def connected_tree_subgraphs(graph: Graph, max_edges: int = DEFAULT_TREE_EDGES
                             ) -> Iterator[Tuple[FrozenSet, Graph]]:
    """Yield (edge-subset, subtree) for every connected acyclic edge
    subgraph with 1..max_edges edges, each subset exactly once."""
    edges = [edge_key(u, v) for u, v in graph.edges()]
    adjacency: Dict[Tuple[int, int], Set[Tuple[int, int]]] = {
        e: set() for e in edges}
    for e1, e2 in combinations(edges, 2):
        if set(e1) & set(e2):
            adjacency[e1].add(e2)
            adjacency[e2].add(e1)

    def node_count(subset: FrozenSet) -> int:
        nodes: Set[int] = set()
        for u, v in subset:
            nodes.add(u)
            nodes.add(v)
        return len(nodes)

    frontier: Set[FrozenSet] = {frozenset([e]) for e in edges}
    size = 1
    seen: Set[FrozenSet] = set(frontier)
    while frontier and size <= max_edges:
        for subset in frontier:
            if node_count(subset) == size + 1:  # acyclic check
                yield subset, edge_subgraph(graph, subset)
        next_frontier: Set[FrozenSet] = set()
        for subset in frontier:
            reachable: Set[Tuple[int, int]] = set()
            for e in subset:
                reachable |= adjacency[e]
            for e in reachable - subset:
                grown = subset | {e}
                if grown not in seen:
                    seen.add(grown)
                    next_frontier.add(grown)
        frontier = next_frontier
        size += 1


def tree_feature_counts(graph: Graph,
                        max_edges: int = DEFAULT_TREE_EDGES
                        ) -> Dict[str, int]:
    """Occurrence counts of subtree isomorphism classes in one graph.

    Keys are canonical codes; values count distinct edge subsets
    realising that subtree.
    """
    counts: Dict[str, int] = {}
    for _, subtree in connected_tree_subgraphs(graph, max_edges):
        code = canonical_code(subtree)
        counts[code] = counts.get(code, 0) + 1
    return counts


class MinedTree:
    """A mined subtree: representative graph, code, and support."""

    __slots__ = ("code", "graph", "support")

    def __init__(self, code: str, graph: Graph, support: int) -> None:
        self.code = code
        self.graph = graph
        self.support = support

    def __repr__(self) -> str:
        return (f"<MinedTree m={self.graph.size()} "
                f"support={self.support}>")


def mine_frequent_trees(repository: Sequence[Graph], min_support: int = 2,
                        max_edges: int = DEFAULT_TREE_EDGES
                        ) -> List[MinedTree]:
    """Subtrees occurring in >= min_support repository graphs.

    Support is per-graph (document frequency), the convention of
    frequent-subgraph mining.
    """
    supports: Dict[str, int] = {}
    representatives: Dict[str, Graph] = {}
    for graph in repository:
        seen_here: Set[str] = set()
        for _, subtree in connected_tree_subgraphs(graph, max_edges):
            code = canonical_code(subtree)
            if code in seen_here:
                continue
            seen_here.add(code)
            supports[code] = supports.get(code, 0) + 1
            if code not in representatives:
                representatives[code] = subtree.normalized()
    return [MinedTree(code, representatives[code], support)
            for code, support in sorted(supports.items())
            if support >= min_support]


def closed_frequent_trees(mined: Sequence[MinedTree]) -> List[MinedTree]:
    """Filter to *closed* trees: no frequent supertree has equal support.

    Closedness makes the vocabulary compact and, because closure is
    preserved under the batch updates MIDAS applies, incrementally
    maintainable.
    """
    by_size: Dict[int, List[MinedTree]] = {}
    for tree in mined:
        by_size.setdefault(tree.graph.size(), []).append(tree)
    closed: List[MinedTree] = []
    for tree in mined:
        is_closed = True
        for bigger in by_size.get(tree.graph.size() + 1, []):
            if (bigger.support == tree.support
                    and is_subgraph(tree.graph, bigger.graph)):
                is_closed = False
                break
        if is_closed:
            closed.append(tree)
    return closed


def feature_vector_from_vocabulary(graph: Graph,
                                   vocabulary: Sequence[MinedTree],
                                   max_edges: int = DEFAULT_TREE_EDGES
                                   ) -> List[float]:
    """Dense feature vector of one graph over a mined vocabulary."""
    counts = tree_feature_counts(graph, max_edges)
    return [float(counts.get(tree.code, 0)) for tree in vocabulary]


def repository_feature_matrix(repository: Sequence[Graph],
                              vocabulary: Sequence[MinedTree],
                              max_edges: int = DEFAULT_TREE_EDGES
                              ) -> List[List[float]]:
    """Feature vectors for every repository graph (row-per-graph)."""
    return [feature_vector_from_vocabulary(g, vocabulary, max_edges)
            for g in repository]
