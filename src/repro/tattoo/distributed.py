"""Distributed canned-pattern selection for massive networks.

The tutorial's second open problem (§2.5): networks too large for one
machine need "a distributed framework and novel construction ...
algorithms built on top of it".  This module implements the natural
partition-extract-merge design and *simulates* its distribution on
one machine (see DESIGN.md's substitution rule — no cluster is
available, but the algorithm and its work decomposition are real):

1. **partition** the network into balanced node partitions by
   multi-source BFS region growing;
2. each worker extracts TATTOO candidates from its partition plus a
   one-hop *halo* (so boundary-straddling structures stay visible)
   and pre-selects a local shortlist against its own view, so only
   O(budget) candidates cross the wire per worker;
3. the coordinator merges the shortlists (canonical-code dedup) and
   runs the global greedy selection.

Per-worker wall times are recorded so the simulated parallel makespan
(max worker time + coordinator time) can be compared against the
single-machine pipeline, which is what experiment E14 reports.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Set

from repro.errors import PipelineError
from repro.graph.graph import Graph
from repro.graph.operations import induced_subgraph
from repro.obs import capture, span
from repro.patterns.base import Pattern, PatternBudget, PatternSet
from repro.patterns.index import CoverageIndex
from repro.patterns.selection import SelectionResult, SetScorer, greedy_select
from repro.tattoo.pipeline import TattooConfig, extract_candidates


def partition_network(network: Graph, parts: int,
                      seed: int = 0) -> List[Set[int]]:
    """Balanced node partitions by multi-source BFS region growing.

    Seeds are spread over the network; regions grow one frontier ring
    at a time, claiming unassigned nodes, so partitions are connected
    within each component and balanced to within a frontier ring.
    Unreached nodes (other components) are dealt round-robin.
    """
    if parts < 1:
        raise PipelineError("need at least one partition")
    nodes = sorted(network.nodes())
    if parts > len(nodes):
        raise PipelineError(
            f"cannot cut {len(nodes)} nodes into {parts} partitions")
    rng = random.Random(seed)
    seeds = rng.sample(nodes, parts)
    assignment: Dict[int, int] = {s: i for i, s in enumerate(seeds)}
    frontiers: List[Set[int]] = [{s} for s in seeds]
    while any(frontiers):
        for part in range(parts):
            next_frontier: Set[int] = set()
            for u in frontiers[part]:
                for v in network.neighbors(u):
                    if v not in assignment:
                        assignment[v] = part
                        next_frontier.add(v)
            frontiers[part] = next_frontier
    leftovers = [v for v in nodes if v not in assignment]
    for i, v in enumerate(leftovers):
        assignment[v] = i % parts
    partitions: List[Set[int]] = [set() for _ in range(parts)]
    for node, part in assignment.items():
        partitions[part].add(node)
    return partitions


def partition_with_halo(network: Graph, partition: Set[int],
                        hops: int = 1) -> Graph:
    """A worker's view: its partition plus a ``hops``-hop halo."""
    region = set(partition)
    frontier = set(partition)
    for _ in range(hops):
        grown: Set[int] = set()
        for u in frontier:
            grown.update(network.neighbors(u))
        frontier = grown - region
        region |= grown
    return induced_subgraph(network, region, name="worker-view")


class WorkerReport:
    """What one (simulated) worker did."""

    __slots__ = ("worker", "nodes", "halo_nodes", "candidates",
                 "duration")

    def __init__(self, worker: int, nodes: int, halo_nodes: int,
                 candidates: int, duration: float) -> None:
        self.worker = worker
        self.nodes = nodes
        self.halo_nodes = halo_nodes
        self.candidates = candidates
        self.duration = duration

    def __repr__(self) -> str:
        return (f"<WorkerReport #{self.worker} nodes={self.nodes} "
                f"candidates={self.candidates} "
                f"{self.duration:.2f}s>")


class DistributedResult:
    """Merged selection plus the simulated distribution profile.

    Satisfies :class:`repro.core.pipeline.PipelineResult`:
    ``.patterns``, ``.stats``, and ``.trace`` (the run's span record
    with one ``distributed.worker`` child per worker; ``None`` unless
    tracing was on).
    """

    __slots__ = ("patterns", "selection", "workers", "merge_duration",
                 "select_duration", "candidate_total",
                 "candidate_unique", "trace")

    def __init__(self, patterns: PatternSet, selection: SelectionResult,
                 workers: List[WorkerReport], merge_duration: float,
                 select_duration: float, candidate_total: int,
                 candidate_unique: int,
                 trace: Optional[Dict[str, object]] = None) -> None:
        self.patterns = patterns
        self.selection = selection
        self.workers = workers
        self.merge_duration = merge_duration
        self.select_duration = select_duration
        self.candidate_total = candidate_total
        self.candidate_unique = candidate_unique
        self.trace = trace

    @property
    def stats(self) -> Dict[str, object]:
        """Flat run statistics in the shared PipelineResult shape."""
        return {
            "pipeline": "tattoo-distributed",
            "patterns": len(self.patterns),
            "workers": len(self.workers),
            "candidates": self.candidate_total,
            "unique_candidates": self.candidate_unique,
            "considered": self.selection.considered,
            "score": self.selection.score,
            "timings": {
                "makespan": self.makespan(),
                "sequential_work": self.sequential_work(),
                "merge": self.merge_duration,
                "select": self.select_duration,
            },
        }

    def makespan(self) -> float:
        """Simulated parallel wall time: slowest worker + coordinator."""
        worker_time = max((w.duration for w in self.workers),
                          default=0.0)
        return worker_time + self.merge_duration + self.select_duration

    def sequential_work(self) -> float:
        """Total worker CPU time (what one machine would spend)."""
        return (sum(w.duration for w in self.workers)
                + self.merge_duration + self.select_duration)

    def __repr__(self) -> str:
        return (f"<DistributedResult k={len(self.patterns)} "
                f"workers={len(self.workers)} "
                f"makespan={self.makespan():.2f}s>")


def select_patterns_distributed(network: Graph, budget: PatternBudget,
                                parts: int,
                                config: Optional[TattooConfig] = None,
                                halo_hops: int = 1,
                                shortlist_factor: int = 2,
                                coverage_sample_nodes: int = 2000
                                ) -> DistributedResult:
    """Partition-extract-merge pattern selection (simulated workers).

    Each worker pre-selects ``shortlist_factor * budget.max_patterns``
    candidates against its own view, bounding both the communication
    volume and the coordinator's selection cost.  The coordinator's
    coverage evaluation runs on the full network up to
    ``coverage_sample_nodes`` nodes; beyond that a BFS sample of that
    size stands in (a coordinator of a truly massive network never
    holds the whole graph anyway).
    """
    if network.size() == 0:
        raise PipelineError("need a network with edges")
    if shortlist_factor < 1:
        raise PipelineError("shortlist_factor must be >= 1")
    config = config or TattooConfig()

    with capture("tattoo.distributed", force=config.trace,
                 parts=parts, nodes=network.order()) as run:
        partitions = partition_network(network, parts,
                                       seed=config.seed)
        shortlist_budget = PatternBudget(
            shortlist_factor * budget.max_patterns,
            min_size=budget.min_size, max_size=budget.max_size)

        workers: List[WorkerReport] = []
        pools: List[List[Pattern]] = []
        for worker_id, partition in enumerate(partitions):
            start = time.perf_counter()
            with span("distributed.worker", worker=worker_id) as unit:
                view = partition_with_halo(network, partition,
                                           hops=halo_hops)
                shortlist: List[Pattern] = []
                if view.size() > 0:
                    worker_config = TattooConfig(
                        truss_threshold=config.truss_threshold,
                        seed=config.seed + worker_id,
                        weights=config.weights,
                        samples_scale=config.samples_scale,
                        max_embeddings=config.max_embeddings,
                        classes=config.classes)
                    by_class = extract_candidates(view, budget,
                                                  worker_config)
                    candidates: List[Pattern] = []
                    local_seen: Set[str] = set()
                    for patterns in by_class.values():
                        for pattern in patterns:
                            if pattern.code not in local_seen:
                                local_seen.add(pattern.code)
                                candidates.append(pattern)
                    local_index = CoverageIndex(
                        [view], max_embeddings=config.max_embeddings,
                        size_utility=True)
                    local_scorer = SetScorer(local_index,
                                             weights=config.weights)
                    shortlist = list(greedy_select(
                        candidates, shortlist_budget,
                        local_scorer).patterns)
                unit.add("nodes", len(partition))
                unit.add("candidates", len(shortlist))
            duration = time.perf_counter() - start
            pools.append(shortlist)
            workers.append(WorkerReport(worker_id, len(partition),
                                        view.order() - len(partition),
                                        len(shortlist), duration))

        start = time.perf_counter()
        with span("distributed.merge") as stage:
            merged: List[Pattern] = []
            seen: Set[str] = set()
            total = 0
            for pool in pools:
                for pattern in pool:
                    total += 1
                    if pattern.code not in seen:
                        seen.add(pattern.code)
                        merged.append(pattern)
            stage.add("merged", len(merged))
        merge_duration = time.perf_counter() - start

        start = time.perf_counter()
        with span("distributed.select", candidates=len(merged)):
            evaluation = network
            if network.order() > coverage_sample_nodes:
                from repro.graph.operations import bfs_order
                rng = random.Random(config.seed)
                root = rng.choice(sorted(network.nodes()))
                sample_nodes = bfs_order(network,
                                         root)[:coverage_sample_nodes]
                evaluation = induced_subgraph(
                    network, sample_nodes, name="coordinator-sample")
            index = CoverageIndex([evaluation],
                                  max_embeddings=config.max_embeddings,
                                  size_utility=True)
            scorer = SetScorer(index, weights=config.weights)
            selection = greedy_select(merged, budget, scorer)
        select_duration = time.perf_counter() - start

    return DistributedResult(selection.patterns, selection, workers,
                             merge_duration, select_duration,
                             candidate_total=total,
                             candidate_unique=len(merged),
                             trace=run.record)
