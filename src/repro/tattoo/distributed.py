"""Distributed canned-pattern selection for massive networks.

The tutorial's second open problem (§2.5): networks too large for one
machine need "a distributed framework and novel construction ...
algorithms built on top of it".  This module implements the natural
partition-extract-merge design and *simulates* its distribution on
one machine (see DESIGN.md's substitution rule — no cluster is
available, but the algorithm and its work decomposition are real):

1. **partition** the network into balanced node partitions by
   multi-source BFS region growing;
2. each worker extracts TATTOO candidates from its partition plus a
   one-hop *halo* (so boundary-straddling structures stay visible)
   and pre-selects a local shortlist against its own view, so only
   O(budget) candidates cross the wire per worker;
3. the coordinator merges the shortlists (canonical-code dedup) and
   runs the global greedy selection.

Per-worker wall times are recorded so the simulated parallel makespan
(max worker time + coordinator time) can be compared against the
single-machine pipeline, which is what experiment E14 reports.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Set

from repro.errors import PipelineError, WorkerFailure
from repro.graph.graph import Graph
from repro.graph.operations import induced_subgraph
from repro.obs import capture, metrics, span
from repro.patterns.base import Pattern, PatternBudget, PatternSet
from repro.patterns.index import CoverageIndex
from repro.patterns.selection import SelectionResult, SetScorer, greedy_select
from repro.resilience.chaos import CORRUPTED, is_corrupt
from repro.resilience.chaos import site as chaos_site
from repro.resilience.deadline import CompletionReport, Deadline
from repro.tattoo.pipeline import TattooConfig, extract_candidates


def partition_network(network: Graph, parts: int,
                      seed: int = 0) -> List[Set[int]]:
    """Balanced node partitions by multi-source BFS region growing.

    Seeds are spread over the network; regions grow one frontier ring
    at a time, claiming unassigned nodes, so partitions are connected
    within each component and balanced to within a frontier ring.
    Unreached nodes (other components) are dealt round-robin.
    """
    if parts < 1:
        raise PipelineError("need at least one partition")
    nodes = sorted(network.nodes())
    if parts > len(nodes):
        raise PipelineError(
            f"cannot cut {len(nodes)} nodes into {parts} partitions")
    rng = random.Random(seed)
    seeds = rng.sample(nodes, parts)
    assignment: Dict[int, int] = {s: i for i, s in enumerate(seeds)}
    frontiers: List[Set[int]] = [{s} for s in seeds]
    while any(frontiers):
        for part in range(parts):
            next_frontier: Set[int] = set()
            for u in frontiers[part]:
                for v in network.neighbors(u):
                    if v not in assignment:
                        assignment[v] = part
                        next_frontier.add(v)
            frontiers[part] = next_frontier
    leftovers = [v for v in nodes if v not in assignment]
    for i, v in enumerate(leftovers):
        assignment[v] = i % parts
    partitions: List[Set[int]] = [set() for _ in range(parts)]
    for node, part in assignment.items():
        partitions[part].add(node)
    return partitions


def partition_with_halo(network: Graph, partition: Set[int],
                        hops: int = 1) -> Graph:
    """A worker's view: its partition plus a ``hops``-hop halo."""
    region = set(partition)
    frontier = set(partition)
    for _ in range(hops):
        grown: Set[int] = set()
        for u in frontier:
            grown.update(network.neighbors(u))
        frontier = grown - region
        region |= grown
    return induced_subgraph(network, region, name="worker-view")


class WorkerReport:
    """What one (simulated) worker did."""

    __slots__ = ("worker", "nodes", "halo_nodes", "candidates",
                 "duration", "failed")

    def __init__(self, worker: int, nodes: int, halo_nodes: int,
                 candidates: int, duration: float,
                 failed: bool = False) -> None:
        self.worker = worker
        self.nodes = nodes
        self.halo_nodes = halo_nodes
        self.candidates = candidates
        self.duration = duration
        self.failed = failed

    def __repr__(self) -> str:
        flag = " FAILED" if self.failed else ""
        return (f"<WorkerReport #{self.worker} nodes={self.nodes} "
                f"candidates={self.candidates} "
                f"{self.duration:.2f}s{flag}>")


class DistributedResult:
    """Merged selection plus the simulated distribution profile.

    Satisfies :class:`repro.core.pipeline.PipelineResult`:
    ``.patterns``, ``.stats``, and ``.trace`` (the run's span record
    with one ``distributed.worker`` child per worker; ``None`` unless
    tracing was on).
    """

    __slots__ = ("patterns", "selection", "workers", "merge_duration",
                 "select_duration", "candidate_total",
                 "candidate_unique", "completion", "trace")

    def __init__(self, patterns: PatternSet, selection: SelectionResult,
                 workers: List[WorkerReport], merge_duration: float,
                 select_duration: float, candidate_total: int,
                 candidate_unique: int,
                 completion: Optional[CompletionReport] = None,
                 trace: Optional[Dict[str, object]] = None) -> None:
        self.patterns = patterns
        self.selection = selection
        self.workers = workers
        self.merge_duration = merge_duration
        self.select_duration = select_duration
        self.candidate_total = candidate_total
        self.candidate_unique = candidate_unique
        self.completion = completion or CompletionReport()
        self.trace = trace

    @property
    def degraded(self) -> bool:
        """True when any worker failed, merge dropped a pool, or a
        deadline/fault cut a stage short."""
        return (any(w.failed for w in self.workers)
                or self.completion.degraded)

    @property
    def stats(self) -> Dict[str, object]:
        """Flat run statistics in the shared PipelineResult shape."""
        return {
            "pipeline": "tattoo-distributed",
            "patterns": len(self.patterns),
            "workers": len(self.workers),
            "failed_workers": sum(1 for w in self.workers if w.failed),
            "candidates": self.candidate_total,
            "unique_candidates": self.candidate_unique,
            "considered": self.selection.considered,
            "score": self.selection.score,
            "degraded": self.degraded,
            "completion": self.completion.as_dict(),
            "timings": {
                "makespan": self.makespan(),
                "sequential_work": self.sequential_work(),
                "merge": self.merge_duration,
                "select": self.select_duration,
            },
        }

    def makespan(self) -> float:
        """Simulated parallel wall time: slowest worker + coordinator."""
        worker_time = max((w.duration for w in self.workers),
                          default=0.0)
        return worker_time + self.merge_duration + self.select_duration

    def sequential_work(self) -> float:
        """Total worker CPU time (what one machine would spend)."""
        return (sum(w.duration for w in self.workers)
                + self.merge_duration + self.select_duration)

    def __repr__(self) -> str:
        return (f"<DistributedResult k={len(self.patterns)} "
                f"workers={len(self.workers)} "
                f"makespan={self.makespan():.2f}s>")


def select_patterns_distributed(network: Graph, budget: PatternBudget,
                                parts: int,
                                config: Optional[TattooConfig] = None,
                                halo_hops: int = 1,
                                shortlist_factor: int = 2,
                                coverage_sample_nodes: int = 2000
                                ) -> DistributedResult:
    """Partition-extract-merge pattern selection (simulated workers).

    Each worker pre-selects ``shortlist_factor * budget.max_patterns``
    candidates against its own view, bounding both the communication
    volume and the coordinator's selection cost.  The coordinator's
    coverage evaluation runs on the full network up to
    ``coverage_sample_nodes`` nodes; beyond that a BFS sample of that
    size stands in (a coordinator of a truly massive network never
    holds the whole graph anyway).
    """
    if network.size() == 0:
        raise PipelineError("need a network with edges")
    if shortlist_factor < 1:
        raise PipelineError("shortlist_factor must be >= 1")
    config = config or TattooConfig()
    deadline = Deadline.start(config.deadline_s)
    report = CompletionReport()

    with capture("tattoo.distributed", force=config.trace,
                 parts=parts, nodes=network.order()) as run:
        partitions = partition_network(network, parts,
                                       seed=config.seed)
        shortlist_budget = PatternBudget(
            shortlist_factor * budget.max_patterns,
            min_size=budget.min_size, max_size=budget.max_size)

        workers: List[WorkerReport] = []
        pools: List[object] = []
        failed_workers = 0
        for worker_id, partition in enumerate(partitions):
            if pools and deadline.check("distributed.worker"):
                break
            start = time.perf_counter()
            with span("distributed.worker", worker=worker_id) as unit:
                payload: object = []
                shortlist: List[Pattern] = []
                halo = 0
                worker_ok = True
                try:
                    corrupt = chaos_site("distributed.worker",
                                         key=worker_id)
                    view = partition_with_halo(network, partition,
                                               hops=halo_hops)
                    halo = view.order() - len(partition)
                    if view.size() > 0:
                        worker_config = TattooConfig(
                            truss_threshold=config.truss_threshold,
                            seed=config.seed + worker_id,
                            weights=config.weights,
                            samples_scale=config.samples_scale,
                            max_embeddings=config.max_embeddings,
                            classes=config.classes,
                            max_retries=config.max_retries)
                        by_class = extract_candidates(view, budget,
                                                      worker_config)
                        candidates: List[Pattern] = []
                        local_seen: Set[str] = set()
                        for patterns in by_class.values():
                            for pattern in patterns:
                                if pattern.code not in local_seen:
                                    local_seen.add(pattern.code)
                                    candidates.append(pattern)
                        local_index = CoverageIndex(
                            [view],
                            max_embeddings=config.max_embeddings,
                            size_utility=True)
                        local_scorer = SetScorer(
                            local_index, weights=config.weights)
                        shortlist = list(greedy_select(
                            candidates, shortlist_budget,
                            local_scorer).patterns)
                    payload = CORRUPTED if corrupt else shortlist
                except WorkerFailure:
                    shortlist = []
                    payload = []
                    worker_ok = False
                    failed_workers += 1
                    unit.add("failed", "true")
                    metrics.inc("distributed.worker.failures")
                unit.add("nodes", len(partition))
                unit.add("candidates", len(shortlist))
            duration = time.perf_counter() - start
            pools.append(payload)
            workers.append(WorkerReport(
                worker_id, len(partition), halo, len(shortlist),
                duration, failed=not worker_ok))
        report.record("workers", len(pools) - failed_workers,
                      len(partitions),
                      complete=(len(pools) == len(partitions)
                                and not failed_workers),
                      note=(f"{failed_workers} worker(s) failed"
                            if failed_workers else None))

        start = time.perf_counter()
        with span("distributed.merge") as stage:
            merged: List[Pattern] = []
            seen: Set[str] = set()
            total = 0
            dropped_pools = 0
            for pool_id, pool in enumerate(pools):
                try:
                    corrupt = chaos_site("distributed.merge",
                                         key=pool_id)
                    if corrupt or is_corrupt(pool):
                        raise WorkerFailure(
                            "distributed.merge", key=pool_id,
                            kind="corrupt",
                            cause="corrupted shortlist payload")
                    for pattern in pool:
                        total += 1
                        if pattern.code not in seen:
                            seen.add(pattern.code)
                            merged.append(pattern)
                except WorkerFailure:
                    dropped_pools += 1
                    workers[pool_id].failed = True
                    metrics.inc("distributed.merge.failures")
            stage.add("merged", len(merged))
            if dropped_pools:
                stage.add("dropped_pools", dropped_pools)
        merge_duration = time.perf_counter() - start
        report.record("merge", len(pools) - dropped_pools, len(pools),
                      note=(f"{dropped_pools} pool(s) dropped"
                            if dropped_pools else None))

        start = time.perf_counter()
        with span("distributed.select", candidates=len(merged)):
            evaluation = network
            if network.order() > coverage_sample_nodes:
                from repro.graph.operations import bfs_order
                rng = random.Random(config.seed)
                root = rng.choice(sorted(network.nodes()))
                sample_nodes = bfs_order(network,
                                         root)[:coverage_sample_nodes]
                evaluation = induced_subgraph(
                    network, sample_nodes, name="coordinator-sample")
            index = CoverageIndex([evaluation],
                                  max_embeddings=config.max_embeddings,
                                  size_utility=True)
            scorer = SetScorer(index, weights=config.weights)
            selection = greedy_select(merged, budget, scorer,
                                      deadline=deadline)
        select_duration = time.perf_counter() - start
        report.record("select", len(selection.patterns),
                      budget.max_patterns,
                      complete=selection.complete
                      and not selection.faults,
                      note=(f"{selection.faults} scorer fault(s)"
                            if selection.faults else None))
        if any(w.failed for w in workers) or report.degraded:
            run.add("degraded", "true")

    return DistributedResult(selection.patterns, selection, workers,
                             merge_duration, select_duration,
                             candidate_total=total,
                             candidate_unique=len(merged),
                             completion=report,
                             trace=run.record)
